// Linear-scan memory planner shared by the relay slot planner and the
// Neuron operand planner.
//
// The caller walks its program in execution order, announcing each step with
// BeginStep(step) (which returns regions whose lifetime ended before `step`
// to the free list) and allocating every value produced at that step with
// Allocate(bytes, last_use). Offsets are assigned greedy best-fit: the
// smallest free range that fits, splitting the remainder, with adjacent free
// ranges coalesced on release — so a 150 KiB feature map can later host two
// smaller ones. When nothing fits the arena grows at the end.
//
// A region expiring exactly at the current step is NOT reusable at that
// step: the instruction reads it while writing its output. Deliberate
// input/output aliasing instead keeps the input's region and extends its
// lifetime (ExtendLifetime).
#pragma once

#include <cstdint>
#include <vector>

namespace tnp {
namespace support {

class LinearMemoryPlanner {
 public:
  struct Region {
    std::int64_t offset = 0;
    std::int64_t bytes = 0;   ///< aligned size
    int last_use = 0;         ///< step after which the region is dead
    bool released = false;
  };

  explicit LinearMemoryPlanner(std::int64_t alignment = 64) : alignment_(alignment) {}

  /// Release regions with last_use < step. Steps must be non-decreasing.
  void BeginStep(int step);

  /// Assign a region for `bytes` live through step `last_use`; returns its id.
  int Allocate(std::int64_t bytes, int last_use);

  /// Extend a live region's lifetime (in-place aliasing).
  void ExtendLifetime(int region_id, int last_use);

  const Region& region(int region_id) const {
    return regions_[static_cast<std::size_t>(region_id)];
  }
  /// Total arena size covering every region ever allocated.
  std::int64_t arena_bytes() const { return arena_bytes_; }
  /// Sum of all aligned region sizes — the no-reuse footprint.
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  struct FreeRange {
    std::int64_t offset = 0;
    std::int64_t bytes = 0;
  };

  void Release(std::int64_t offset, std::int64_t bytes);

  std::int64_t alignment_;
  std::vector<Region> regions_;
  std::vector<FreeRange> free_;  ///< sorted by offset, coalesced
  std::int64_t arena_bytes_ = 0;
  std::int64_t total_bytes_ = 0;
};

}  // namespace support
}  // namespace tnp
