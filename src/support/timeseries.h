// Windowed time-series metrics: a fixed-size ring of per-second buckets over
// which "what happened in the last N seconds?" queries are answered by
// merging buckets on read — the live complement to metrics.h's cumulative
// since-process-start registry.
//
// Two series kinds:
//
//   - RateSeries: per-second event-count deltas of a monotonically growing
//     counter. Window queries answer rate (events/sec) and total delta.
//   - LatencySeries: per-second latency histograms over a fixed geometric
//     bucket grid (~25% spacing). Record() is O(1) — a binary search over
//     the compile-time grid plus a few adds into preallocated storage, no
//     heap allocation — and window queries merge bucket counts on read to
//     produce approximate p50/p95/p99 (error bounded by one grid step,
//     clamped to the window's observed min/max).
//
// The Collector owns the clock: Tick() advances every series to the current
// second (zeroing buckets that fell out of the ring) and pulls tracked
// registry metrics — counter deltas, and raw samples newly appended to
// tracked histograms — into the current bucket. The TelemetrySampler cadence
// thread calls Tick() each pass; tests drive Tick(now_sec) with synthetic
// time for determinism. Any metrics::Registry counter/histogram is trackable
// by name:
//
//   auto& lat = timeseries::Collector::Global().TrackHistogram("serve/request/us");
//   ... traffic ...
//   const timeseries::WindowStats w = lat.Summarize(10);   // last 10 seconds
//   // w.rate_per_sec, w.p50, w.p95, w.p99
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tnp {
namespace support {
namespace metrics {
class Registry;
}  // namespace metrics

namespace timeseries {

/// Merged view over the last N seconds of a series.
struct WindowStats {
  std::int64_t count = 0;
  double rate_per_sec = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Geometric latency grid shared by every LatencySeries: bound[i] =
/// 1.25^i microseconds, covering [0, ~1.2e7us]. Values past the last bound
/// clamp into the final bucket (the bucket max keeps the true ceiling).
class LatencyGrid {
 public:
  static constexpr int kNumBounds = 74;
  static const std::array<double, kNumBounds>& Bounds();
  /// Index of the bucket holding `value_us` (binary search, O(log bounds)).
  static int BucketOf(double value_us);
};

/// Per-second event-count deltas of one counter.
class RateSeries {
 public:
  explicit RateSeries(int window_seconds);

  /// Add `delta` events to the bucket for the current second.
  void AddDelta(std::int64_t delta);
  /// Rotate the ring forward to `now_sec`, zeroing buckets that lapse.
  void Advance(std::int64_t now_sec);

  /// Events during the last `seconds` (capped at the ring size).
  std::int64_t DeltaOver(int seconds) const;
  /// DeltaOver / seconds.
  double RateOver(int seconds) const;

  int window_seconds() const { return static_cast<int>(buckets_.size()); }

 private:
  struct Bucket {
    std::int64_t second = -1;  ///< epoch tag; -1 = never written
    std::int64_t count = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Bucket> buckets_;
  std::int64_t now_sec_ = 0;
};

/// Per-second bucketed latency histograms of one "/us" metric.
class LatencySeries {
 public:
  explicit LatencySeries(int window_seconds);

  /// O(1), allocation-free: adds the sample to the current second's bucket.
  void Record(double value_us);
  /// Rotate the ring forward to `now_sec`, zeroing buckets that lapse.
  void Advance(std::int64_t now_sec);

  /// Merge the last `seconds` of buckets: count, rate, mean, min/max, and
  /// grid-interpolated p50/p95/p99 (clamped to the window's min/max, so a
  /// constant-valued window reports exact percentiles).
  WindowStats Summarize(int seconds) const;
  /// Fraction of the window's samples strictly below `threshold_us`
  /// (grid-interpolated); 1.0 for an empty window — no traffic is not a
  /// violation, which is what SLO error-rate math wants.
  double FractionBelow(double threshold_us, int seconds) const;

  int window_seconds() const { return static_cast<int>(buckets_.size()); }

 private:
  struct Bucket {
    std::int64_t second = -1;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint32_t, LatencyGrid::kNumBounds> counts{};
  };

  /// Merge the window's buckets into `merged` (caller-provided, stack).
  /// Returns aggregate count. Caller holds mutex_.
  std::int64_t MergeWindow(int seconds,
                           std::array<std::uint64_t, LatencyGrid::kNumBounds>& merged,
                           double* sum, double* min, double* max) const;

  mutable std::mutex mutex_;
  std::vector<Bucket> buckets_;
  std::int64_t now_sec_ = 0;
};

struct CollectorOptions {
  /// Ring size: how far back window queries can reach.
  int window_seconds = 120;
};

/// Registry of windowed series, fed from the TelemetrySampler cadence.
class Collector {
 public:
  explicit Collector(CollectorOptions options = {});
  static Collector& Global();

  /// Track a metrics::Registry counter by name (find-or-create; the counter
  /// itself is created on first Tick if absent). The reference stays valid
  /// for the collector's lifetime.
  RateSeries& TrackCounter(const std::string& name);
  /// Track a registry latency histogram by name: each Tick pulls the raw
  /// samples appended since the previous Tick into the ring. (Only the
  /// histogram's first kMaxSamples are retained by the registry; past that
  /// cap the series stops receiving new samples.)
  LatencySeries& TrackHistogram(const std::string& name);

  RateSeries* FindCounter(const std::string& name) const;
  LatencySeries* FindHistogram(const std::string& name) const;

  /// Advance every series to the current second (steady clock) and pull
  /// tracked counters/histograms from the registry.
  void Tick();
  /// Same with an injected clock — tests drive synthetic time. `now_sec`
  /// must not go backwards.
  void Tick(std::int64_t now_sec);

  std::int64_t now_sec() const;

  /// JSON document for the /timeseries debug endpoint: per tracked series,
  /// window stats over each of `windows` seconds.
  std::string ExportJson(const std::vector<int>& windows = {10, 60}) const;

 private:
  struct TrackedCounter {
    std::string name;
    std::unique_ptr<RateSeries> series;
    std::int64_t last_value = 0;
    bool primed = false;  ///< first Tick establishes the baseline
  };
  struct TrackedHistogram {
    std::string name;
    std::unique_ptr<LatencySeries> series;
    std::size_t cursor = 0;  ///< registry raw-sample drain position
  };

  void TickLocked(std::int64_t now_sec);

  CollectorOptions options_;
  mutable std::mutex mutex_;
  std::vector<TrackedCounter> counters_;
  std::vector<TrackedHistogram> histograms_;
  std::vector<double> drain_scratch_;  ///< reused across Ticks
  std::int64_t now_sec_ = 0;
  std::int64_t epoch_steady_ns_ = 0;  ///< steady_clock origin for Tick()
};

}  // namespace timeseries
}  // namespace support
}  // namespace tnp
