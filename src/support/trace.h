// Low-overhead span/event tracing with Chrome-trace export.
//
// The process-wide Tracer collects events into a fixed-capacity ring buffer
// (oldest events are overwritten once full; `dropped()` reports how many).
// Recording is thread-safe; each thread gets a stable small integer id that
// becomes the Chrome-trace `tid`.
//
// Usage:
//
//   TNP_TRACE_SCOPE("relay.pass", pass_name,                 // RAII span
//                   support::TraceArg("nodes", node_count));
//   TNP_TRACE_INSTANT("neuron.planner", "assign:conv2d",     // point event
//                     support::TraceArg("device", "apu"));
//   TNP_TRACE_COUNTER("pipeline", "queue/depth", depth);     // counter track
//
//   support::Tracer::Global().SetEnabled(true);              // or TNP_TRACE=1
//   support::Tracer::Global().Export("trace.json");          // chrome://tracing
//
// When the tracer is disabled, TNP_TRACE_SCOPE costs one relaxed atomic
// load: the name/arg expressions are *not evaluated* and nothing allocates
// (asserted by tests/test_trace.cc). Defining TNP_TRACE_DISABLED at compile
// time removes the macros entirely.
//
// Span durations default to wall time, but `Tracer::Emit` records spans with
// an explicit duration — this is how simulated-time spans (sim::SimClock
// results) land on the same timeline, and how core::ProfileModel derives
// scheduler profiles from recorded spans.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace tnp {
namespace support {

/// One key/value annotation on a trace event. Values render into the Chrome
/// JSON `args` object; strings are quoted + escaped, numbers stay bare.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = false;

  TraceArg(std::string k, const char* v) : key(std::move(k)), value(v), quoted(true) {}
  TraceArg(std::string k, std::string v) : key(std::move(k)), value(std::move(v)), quoted(true) {}
  TraceArg(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}
  TraceArg(std::string k, double v);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  TraceArg(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
};

enum class TracePhase : char {
  kComplete = 'X',  ///< span with duration
  kInstant = 'i',   ///< point event
  kCounter = 'C',   ///< counter sample (renders as a counter track)
};

struct TraceEvent {
  std::string name;
  const char* category = "";  ///< must outlive the tracer (string literals)
  TracePhase phase = TracePhase::kComplete;
  double ts_us = 0.0;   ///< start time, microseconds since tracer start
  double dur_us = 0.0;  ///< kComplete only
  double counter_value = 0.0;  ///< kCounter only
  int tid = 0;
  std::uint64_t seq = 0;  ///< global record order (monotonic, never reused)
  std::vector<TraceArg> args;

  /// Value of the named arg, or empty string when absent.
  const std::string& ArgValue(const std::string& key) const;
};

class Tracer {
 public:
  static Tracer& Global();

  /// Runtime on/off switch. Also initialized from the TNP_TRACE environment
  /// variable ("1"/"true" enables) when the global tracer is first touched.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Force tracing on for a scope, restoring the previous state on exit
  /// (used by ProfileModel so profiles always derive from recorded spans).
  class ScopedEnable {
   public:
    ScopedEnable() : previous_(Tracer::Global().enabled()) {
      Tracer::Global().SetEnabled(true);
    }
    ~ScopedEnable() { Tracer::Global().SetEnabled(previous_); }
    ScopedEnable(const ScopedEnable&) = delete;
    ScopedEnable& operator=(const ScopedEnable&) = delete;

   private:
    bool previous_;
  };

  /// Ring capacity in events. Resizing clears recorded events.
  void SetCapacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Drop all recorded events (capacity and enabled state are kept).
  void Clear();

  /// Microseconds since tracer construction (the trace timebase).
  double NowUs() const;

  /// Sequence number the *next* recorded event will get. Use with
  /// EventsSince to query only events recorded after a point in time.
  std::uint64_t sequence() const;

  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const;

  void Record(TraceEvent event);

  /// Span with an explicit start/duration (e.g. simulated time). No-op when
  /// disabled, like the macros.
  void Emit(const char* category, std::string name, double ts_us, double dur_us,
            std::vector<TraceArg> args = {});

  template <typename... Args>
  void Instant(const char* category, std::string name, Args&&... args) {
    if (!enabled()) return;
    std::vector<TraceArg> collected;
    (collected.push_back(std::forward<Args>(args)), ...);
    InstantImpl(category, std::move(name), std::move(collected));
  }

  void Counter(const char* category, std::string name, double value);

  /// All retained events in record order.
  std::vector<TraceEvent> Snapshot() const;
  /// Retained events with seq >= `seq`, in record order.
  std::vector<TraceEvent> EventsSince(std::uint64_t seq) const;

  /// Chrome-trace JSON ({"traceEvents": [...]}): load via chrome://tracing
  /// or https://ui.perfetto.dev. `max_events != 0` exports only the newest
  /// `max_events` retained events (the flight recorder's last-N dump).
  std::string ExportChromeTrace(std::size_t max_events = 0) const;
  /// Write ExportChromeTrace() to `path`; throws tnp::Error on I/O failure.
  void Export(const std::string& path) const;

  Tracer();

 private:
  void InstantImpl(const char* category, std::string name, std::vector<TraceArg> args);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_;
};

/// Stable small integer id of the calling thread (Chrome-trace tid).
int TraceThreadId();

/// RAII span. Normally created through TNP_TRACE_SCOPE; instantiate directly
/// when you need AddArg (annotations computed after the scope opens):
///
///   support::TraceScope scope;
///   if (scope.armed()) scope.Begin("relay.pass", name);
///   ... work ...
///   if (scope.armed()) scope.AddArg(support::TraceArg("nodes_out", n));
///
/// While a request TraceContext is installed on the thread (trace_context.h)
/// each span additionally mints a span id, records req_id/span/parent args,
/// and becomes the current parent for spans it encloses — this is what makes
/// a request's critical path reconstructable from the export.
class TraceScope {
 public:
  TraceScope() : armed_(Tracer::Global().enabled()) {}
  ~TraceScope() {
    if (begun_) End();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool armed() const { return armed_; }

  template <typename... Args>
  void Begin(const char* category, std::string name, Args&&... args) {
    category_ = category;
    name_ = std::move(name);
    (args_.push_back(std::forward<Args>(args)), ...);
    BeginContext();
    start_us_ = Tracer::Global().NowUs();
    begun_ = true;
  }

  void AddArg(TraceArg arg) {
    if (begun_) args_.push_back(std::move(arg));
  }

 private:
  /// Request-context bookkeeping (no-op when no context is installed):
  /// mint a span id, remember the parent, install self as current parent.
  void BeginContext();
  void End();

  bool armed_ = false;
  bool begun_ = false;
  const char* category_ = "";
  std::string name_;
  double start_us_ = 0.0;
  std::uint64_t ctx_req_id_ = 0;
  std::uint64_t ctx_span_id_ = 0;
  std::uint64_t ctx_parent_id_ = 0;
  std::vector<TraceArg> args_;
};

/// Strict-enough JSON well-formedness check (objects, arrays, strings with
/// escapes, numbers, literals) that additionally requires a top-level object
/// with a "traceEvents" array — shared by tests and the trace_demo harness
/// so the exporter cannot silently rot.
bool ValidateTraceJson(const std::string& json, std::string* error = nullptr);

}  // namespace support
}  // namespace tnp

#define TNP_TRACE_CONCAT_INNER_(a, b) a##b
#define TNP_TRACE_CONCAT_(a, b) TNP_TRACE_CONCAT_INNER_(a, b)

#if defined(TNP_TRACE_DISABLED)

#define TNP_TRACE_SCOPE(...) \
  do {                       \
  } while (false)
#define TNP_TRACE_INSTANT(...) \
  do {                         \
  } while (false)
#define TNP_TRACE_COUNTER(...) \
  do {                         \
  } while (false)

#else

// The name/arg expressions sit on the `else` branch, so they are evaluated
// only when the tracer is enabled (one relaxed atomic load otherwise).
#define TNP_TRACE_SCOPE(category, ...)                                      \
  ::tnp::support::TraceScope TNP_TRACE_CONCAT_(tnp_trace_scope_, __LINE__); \
  if (!TNP_TRACE_CONCAT_(tnp_trace_scope_, __LINE__).armed()) {             \
  } else                                                                    \
    TNP_TRACE_CONCAT_(tnp_trace_scope_, __LINE__).Begin((category), __VA_ARGS__)

#define TNP_TRACE_INSTANT(category, ...)               \
  if (!::tnp::support::Tracer::Global().enabled()) {   \
  } else                                               \
    ::tnp::support::Tracer::Global().Instant((category), __VA_ARGS__)

#define TNP_TRACE_COUNTER(category, ...)               \
  if (!::tnp::support::Tracer::Global().enabled()) {   \
  } else                                               \
    ::tnp::support::Tracer::Global().Counter((category), __VA_ARGS__)

#endif  // TNP_TRACE_DISABLED
