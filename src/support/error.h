// Error handling primitives shared across the whole stack.
//
// The compiler/runtime stack throws `tnp::Error` for user-visible failures
// (malformed model files, unsupported operators, shape mismatches).  Internal
// invariant violations use TNP_CHECK/TNP_ICHECK from logging.h which throw
// InternalError; those indicate a bug in this library, not bad input.
#pragma once

#include <stdexcept>
#include <string>

namespace tnp {

/// Category of a user-visible failure. Used by tests and by callers that
/// want to react differently to e.g. an unsupported operator (which, in the
/// paper's evaluation, turns into a "missing bar") versus a malformed model.
enum class ErrorKind {
  kInvalidArgument,   ///< bad shapes, dtypes, attribute values
  kParseError,        ///< malformed model file handed to a frontend
  kUnsupportedOp,     ///< operator outside a backend's support matrix
  kTypeError,         ///< Relay type inference failure
  kCompileError,      ///< partitioning / codegen / planning failure
  kRuntimeError,      ///< execution-time failure
};

/// Human-readable name of an ErrorKind (stable; used in messages and tests).
inline const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalidArgument: return "InvalidArgument";
    case ErrorKind::kParseError: return "ParseError";
    case ErrorKind::kUnsupportedOp: return "UnsupportedOp";
    case ErrorKind::kTypeError: return "TypeError";
    case ErrorKind::kCompileError: return "CompileError";
    case ErrorKind::kRuntimeError: return "RuntimeError";
  }
  return "UnknownError";
}

/// User-visible failure thrown by frontends, passes, compilers and runtimes.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(ErrorKindName(kind)) + ": " + message),
        kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Invariant violation inside this library (a bug, not bad input).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& message)
      : std::logic_error("InternalError: " + message) {}
};

}  // namespace tnp
