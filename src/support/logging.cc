#include "support/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "support/trace_context.h"

namespace tnp {
namespace support {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("TNP_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string value(env);
  if (value == "DEBUG" || value == "0") return LogLevel::kDebug;
  if (value == "INFO" || value == "1") return LogLevel::kInfo;
  if (value == "WARNING" || value == "2") return LogLevel::kWarning;
  if (value == "ERROR" || value == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& ActiveLevelStore() {
  static std::atomic<int> level{static_cast<int>(ParseLevelFromEnv())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

/// Protected by LogMutex(); nullptr = stderr.
std::ostream*& SinkStore() {
  static std::ostream* sink = nullptr;
  return sink;
}

}  // namespace

LogLevel ActiveLogLevel() {
  return static_cast<LogLevel>(ActiveLevelStore().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  ActiveLevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  SinkStore() = sink;
}

std::ostream& operator<<(std::ostream& os, const LogField& field) {
  os << " " << field.key << "=";
  if (field.quoted) {
    os << '"';
    for (const char c : field.value) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  } else {
    os << field.value;
  }
  return os;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Correlate log lines with the request's trace spans for free.
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.active()) stream_ << " req_id=" << ctx.req_id;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::ostream* sink = SinkStore();
  (sink != nullptr ? *sink : std::cerr) << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << file << ":" << line << " check failed: " << expr << " ";
}

void CheckFailure::Raise() { throw InternalError(stream_.str()); }

void ErrorFailure::Raise() { throw Error(kind_, stream_.str()); }

}  // namespace support
}  // namespace tnp
