#include "support/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace tnp {
namespace support {

namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("TNP_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string value(env);
  if (value == "DEBUG" || value == "0") return LogLevel::kDebug;
  if (value == "INFO" || value == "1") return LogLevel::kInfo;
  if (value == "WARNING" || value == "2") return LogLevel::kWarning;
  if (value == "ERROR" || value == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

LogLevel ActiveLogLevel() {
  static const LogLevel level = ParseLevelFromEnv();
  return level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << file << ":" << line << " check failed: " << expr << " ";
}

void CheckFailure::Raise() { throw InternalError(stream_.str()); }

void ErrorFailure::Raise() { throw Error(kind_, stream_.str()); }

}  // namespace support
}  // namespace tnp
