#include "support/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace tnp {
namespace support {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::int64_t ParseInt(std::string_view text, std::string_view context) {
  text = Trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    TNP_THROW(kParseError) << "expected integer, got '" << std::string(text) << "' in "
                           << std::string(context);
  }
  return value;
}

double ParseDouble(std::string_view text, std::string_view context) {
  text = Trim(text);
  // std::from_chars<double> is not universally available; use strtod with a
  // bounded copy instead.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    TNP_THROW(kParseError) << "expected number, got '" << copy << "' in "
                           << std::string(context);
  }
  return value;
}

std::string FormatIntVector(const std::vector<std::int64_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return std::string(buffer);
}

}  // namespace support
}  // namespace tnp
