// Line/token scanner shared by the model-format frontends.
//
// Every frontend format in this repository is line-oriented text; the
// Tokenizer provides position-tracked reading with parse errors that name
// the offending line, so malformed model files produce actionable messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tnp {
namespace support {

class Tokenizer {
 public:
  /// `source_name` appears in error messages (e.g. the pseudo-filename).
  Tokenizer(std::string text, std::string source_name);

  /// Next non-empty, non-comment line (comments start with '#'), trimmed.
  /// Returns nullopt at end of input.
  std::optional<std::string> NextLine();

  /// Like NextLine but throws kParseError at end of input.
  std::string ExpectLine(std::string_view what);

  /// Peek the next significant line without consuming it.
  std::optional<std::string> PeekLine();

  /// Expect the next line to equal `expected` exactly.
  void ExpectExact(std::string_view expected);

  /// 1-based line number of the most recently returned line.
  int current_line() const noexcept { return current_line_; }

  const std::string& source_name() const noexcept { return source_name_; }

  /// "file.ext:12" style location string for error messages.
  std::string Location() const;

 private:
  std::vector<std::string> lines_;
  std::string source_name_;
  std::size_t next_ = 0;
  int current_line_ = 0;
};

/// Parse "key=value" into its two halves; throws kParseError otherwise.
std::pair<std::string, std::string> ParseKeyValue(std::string_view line,
                                                  std::string_view context);

/// Parse "1x3x224x224" or "1,3,224,224" into a dims vector.
std::vector<std::int64_t> ParseDims(std::string_view text, std::string_view context);

}  // namespace support
}  // namespace tnp
