// Small string helpers used by frontends, printers and benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tnp {
namespace support {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Split on any whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Join `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parse helpers that throw tnp::Error(kParseError) with context on failure.
std::int64_t ParseInt(std::string_view text, std::string_view context);
double ParseDouble(std::string_view text, std::string_view context);

/// Render a vector like "[1, 2, 3]".
std::string FormatIntVector(const std::vector<std::int64_t>& values);

/// Fixed-precision float formatting ("12.345").
std::string FormatDouble(double value, int precision);

}  // namespace support
}  // namespace tnp
