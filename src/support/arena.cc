#include "support/arena.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/logging.h"
#include "support/metrics.h"

namespace tnp {
namespace support {

namespace {

constexpr std::size_t kAlignment = 64;

std::size_t AlignUp(std::size_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

metrics::Gauge& ArenaBytesGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Global().GetGauge("memory/arena/bytes");
  return gauge;
}

metrics::Gauge& ScratchBytesGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Global().GetGauge("memory/scratch/bytes");
  return gauge;
}

metrics::Counter& ScratchChunkAllocCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().GetCounter("memory/scratch/chunk_allocs");
  return counter;
}

std::shared_ptr<std::byte> AllocBlock(std::size_t bytes) {
  void* raw = std::aligned_alloc(kAlignment, AlignUp(std::max<std::size_t>(bytes, 1)));
  TNP_CHECK(raw != nullptr) << "arena allocation of " << bytes << " bytes failed";
  return std::shared_ptr<std::byte>(static_cast<std::byte*>(raw),
                                    [](std::byte* p) { std::free(p); });
}

}  // namespace

struct Arena::Chunk {
  explicit Chunk(std::size_t bytes) : block(AllocBlock(bytes)), capacity(bytes) {}
  std::shared_ptr<std::byte> block;
  std::size_t capacity = 0;
  std::size_t used = 0;
};

Arena::Arena(std::string name) : name_(std::move(name)) {}

Arena::~Arena() {
  if (capacity_ > 0) ArenaBytesGauge().Add(-static_cast<double>(capacity_));
  if (scratch_bytes_ > 0) ScratchBytesGauge().Add(-static_cast<double>(scratch_bytes_));
}

void Arena::Reserve(std::size_t bytes) {
  bytes = AlignUp(bytes);
  if (bytes <= capacity_) return;
  TNP_CHECK(!frozen_) << "arena '" << name_ << "' cannot grow after views were created";
  std::shared_ptr<std::byte> grown = AllocBlock(bytes);
  if (block_ != nullptr && capacity_ > 0) {
    std::memcpy(grown.get(), block_.get(), capacity_);
  }
  block_ = std::move(grown);
  ArenaBytesGauge().Add(static_cast<double>(bytes) - static_cast<double>(capacity_));
  static metrics::Counter& reservations =
      metrics::Registry::Global().GetCounter("memory/arena/reservations");
  reservations.Increment();
  capacity_ = bytes;
}

std::byte* Arena::Data(std::size_t offset, std::size_t bytes) {
  TNP_CHECK(offset + bytes <= capacity_)
      << "arena '" << name_ << "': region [" << offset << ", " << offset + bytes
      << ") exceeds capacity " << capacity_;
  frozen_ = true;
  return block_.get() + offset;
}

void* Arena::Allocate(std::size_t bytes) {
  bytes = AlignUp(std::max<std::size_t>(bytes, 1));
  // Advance past (rewound) chunks too small for this request; a warmed-up
  // arena serves every frame from existing chunks without touching the heap.
  while (active_chunk_ < scratch_.size() &&
         scratch_[active_chunk_]->capacity - scratch_[active_chunk_]->used < bytes) {
    ++active_chunk_;
  }
  if (active_chunk_ == scratch_.size()) {
    // Chunks double from 64 KiB so long scratch sequences stay O(log n)
    // allocations; addresses of earlier chunks stay stable.
    const std::size_t chunk_bytes =
        std::max<std::size_t>({bytes, 64 * 1024, scratch_.empty() ? 0 : 2 * scratch_.back()->capacity});
    scratch_.push_back(std::make_unique<Chunk>(chunk_bytes));
    ScratchBytesGauge().Add(static_cast<double>(chunk_bytes));
    ScratchChunkAllocCounter().Increment();
    scratch_bytes_ += chunk_bytes;
  }
  Chunk& chunk = *scratch_[active_chunk_];
  std::byte* result = chunk.block.get() + chunk.used;
  chunk.used += bytes;
  scratch_used_ += bytes;
  scratch_watermark_ = std::max(scratch_watermark_, scratch_used_);
  return result;
}

Arena::ScratchMark Arena::MarkScratch() const {
  ScratchMark mark;
  mark.chunk = active_chunk_;
  mark.used = active_chunk_ < scratch_.size() ? scratch_[active_chunk_]->used : 0;
  return mark;
}

void Arena::RewindScratch(const ScratchMark& mark) {
  TNP_CHECK(mark.chunk <= active_chunk_) << "scratch marks must rewind in stack order";
  std::size_t released = 0;
  for (std::size_t c = scratch_.size(); c-- > mark.chunk + 1;) {
    released += scratch_[c]->used;
    scratch_[c]->used = 0;
  }
  if (mark.chunk < scratch_.size()) {
    TNP_CHECK(mark.used <= scratch_[mark.chunk]->used);
    released += scratch_[mark.chunk]->used - mark.used;
    scratch_[mark.chunk]->used = mark.used;
  }
  TNP_CHECK(released <= scratch_used_);
  scratch_used_ -= released;
  active_chunk_ = mark.chunk;
}

void Arena::ResetScratch() {
  if (scratch_bytes_ > 0) ScratchBytesGauge().Add(-static_cast<double>(scratch_bytes_));
  scratch_.clear();
  active_chunk_ = 0;
  scratch_bytes_ = 0;
  scratch_used_ = 0;
}

std::int64_t Arena::TotalScratchChunkAllocs() {
  return ScratchChunkAllocCounter().value();
}

}  // namespace support
}  // namespace tnp
