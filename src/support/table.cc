#include "support/table.h"

#include <algorithm>

#include "support/logging.h"

namespace tnp {
namespace support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TNP_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  TNP_CHECK_EQ(row.size(), header_.size()) << "row arity mismatch";
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << "\n";
  };

  if (!title.empty()) os << title << "\n";
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == header_.size() ? "|" : "+");
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace support
}  // namespace tnp
