// ASCII table printer used by the benchmark harnesses to reproduce the
// paper's tables/figures as aligned text rows.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tnp {
namespace support {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Render with column alignment, a header separator, and an optional title.
  void Print(std::ostream& os, const std::string& title = "") const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace support
}  // namespace tnp
