#include "support/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "support/logging.h"
#include "support/metrics.h"

namespace tnp {
namespace support {
namespace timeseries {

// ------------------------------------------------------------- LatencyGrid

const std::array<double, LatencyGrid::kNumBounds>& LatencyGrid::Bounds() {
  static const std::array<double, kNumBounds> bounds = [] {
    std::array<double, kNumBounds> b{};
    double value = 1.0;
    for (int i = 0; i < kNumBounds; ++i) {
      b[static_cast<std::size_t>(i)] = value;
      value *= 1.25;
    }
    return b;
  }();
  return bounds;
}

int LatencyGrid::BucketOf(double value_us) {
  const auto& bounds = Bounds();
  // Bucket i covers [bounds[i-1], bounds[i]); bucket 0 covers [0, 1us).
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), value_us);
  if (it == bounds.end()) return kNumBounds - 1;  // clamp overflow
  return static_cast<int>(it - bounds.begin());
}

namespace {

/// Value at `rank` (1-based) within a merged grid: linear interpolation
/// inside the bucket that crosses the rank, clamped to [min, max].
double GridValueAtRank(const std::array<std::uint64_t, LatencyGrid::kNumBounds>& merged,
                       std::int64_t total, double rank, double min, double max) {
  const auto& bounds = LatencyGrid::Bounds();
  std::uint64_t cumulative = 0;
  for (int i = 0; i < LatencyGrid::kNumBounds; ++i) {
    const std::uint64_t in_bucket = merged[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : bounds[static_cast<std::size_t>(i - 1)];
      const double hi = bounds[static_cast<std::size_t>(i)];
      const double within = (rank - static_cast<double>(cumulative)) /
                            static_cast<double>(in_bucket);
      return std::clamp(lo + within * (hi - lo), min, max);
    }
    cumulative += in_bucket;
  }
  (void)total;
  return max;
}

}  // namespace

// -------------------------------------------------------------- RateSeries

RateSeries::RateSeries(int window_seconds) {
  TNP_CHECK(window_seconds > 0) << "time-series window must be positive";
  buckets_.resize(static_cast<std::size_t>(window_seconds));
}

void RateSeries::AddDelta(std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[static_cast<std::size_t>(now_sec_) % buckets_.size()];
  if (bucket.second != now_sec_) {
    bucket.second = now_sec_;
    bucket.count = 0;
  }
  bucket.count += delta;
}

void RateSeries::Advance(std::int64_t now_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (now_sec <= now_sec_) return;  // never rewind
  // Zero every second we skipped over (bounded by the ring size).
  const std::int64_t first = std::max(now_sec_ + 1, now_sec - static_cast<std::int64_t>(buckets_.size()) + 1);
  for (std::int64_t s = first; s <= now_sec; ++s) {
    Bucket& bucket = buckets_[static_cast<std::size_t>(s) % buckets_.size()];
    bucket.second = s;
    bucket.count = 0;
  }
  now_sec_ = now_sec;
}

std::int64_t RateSeries::DeltaOver(int seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  seconds = std::clamp<int>(seconds, 1, static_cast<int>(buckets_.size()));
  std::int64_t total = 0;
  for (int back = 0; back < seconds; ++back) {
    const std::int64_t s = now_sec_ - back;
    if (s < 0) break;
    const Bucket& bucket = buckets_[static_cast<std::size_t>(s) % buckets_.size()];
    if (bucket.second == s) total += bucket.count;
  }
  return total;
}

double RateSeries::RateOver(int seconds) const {
  seconds = std::clamp<int>(seconds, 1, window_seconds());
  return static_cast<double>(DeltaOver(seconds)) / static_cast<double>(seconds);
}

// ----------------------------------------------------------- LatencySeries

LatencySeries::LatencySeries(int window_seconds) {
  TNP_CHECK(window_seconds > 0) << "time-series window must be positive";
  buckets_.resize(static_cast<std::size_t>(window_seconds));
}

void LatencySeries::Record(double value_us) {
  const int grid = LatencyGrid::BucketOf(value_us);
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[static_cast<std::size_t>(now_sec_) % buckets_.size()];
  if (bucket.second != now_sec_) {
    bucket.second = now_sec_;
    bucket.count = 0;
    bucket.sum = 0.0;
    bucket.counts.fill(0);
  }
  if (bucket.count == 0 || value_us < bucket.min) bucket.min = value_us;
  if (bucket.count == 0 || value_us > bucket.max) bucket.max = value_us;
  ++bucket.count;
  bucket.sum += value_us;
  ++bucket.counts[static_cast<std::size_t>(grid)];
}

void LatencySeries::Advance(std::int64_t now_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (now_sec <= now_sec_) return;
  const std::int64_t first = std::max(now_sec_ + 1, now_sec - static_cast<std::int64_t>(buckets_.size()) + 1);
  for (std::int64_t s = first; s <= now_sec; ++s) {
    Bucket& bucket = buckets_[static_cast<std::size_t>(s) % buckets_.size()];
    bucket.second = s;
    bucket.count = 0;
    bucket.sum = 0.0;
    bucket.min = 0.0;
    bucket.max = 0.0;
    bucket.counts.fill(0);
  }
  now_sec_ = now_sec;
}

std::int64_t LatencySeries::MergeWindow(
    int seconds, std::array<std::uint64_t, LatencyGrid::kNumBounds>& merged,
    double* sum, double* min, double* max) const {
  std::int64_t total = 0;
  for (int back = 0; back < seconds; ++back) {
    const std::int64_t s = now_sec_ - back;
    if (s < 0) break;
    const Bucket& bucket = buckets_[static_cast<std::size_t>(s) % buckets_.size()];
    if (bucket.second != s || bucket.count == 0) continue;
    if (total == 0 || bucket.min < *min) *min = bucket.min;
    if (total == 0 || bucket.max > *max) *max = bucket.max;
    total += bucket.count;
    *sum += bucket.sum;
    for (int i = 0; i < LatencyGrid::kNumBounds; ++i) {
      merged[static_cast<std::size_t>(i)] += bucket.counts[static_cast<std::size_t>(i)];
    }
  }
  return total;
}

WindowStats LatencySeries::Summarize(int seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  seconds = std::clamp<int>(seconds, 1, static_cast<int>(buckets_.size()));
  std::array<std::uint64_t, LatencyGrid::kNumBounds> merged{};
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  WindowStats stats;
  stats.count = MergeWindow(seconds, merged, &sum, &min, &max);
  stats.rate_per_sec = static_cast<double>(stats.count) / static_cast<double>(seconds);
  if (stats.count == 0) return stats;
  stats.min = min;
  stats.max = max;
  stats.mean = sum / static_cast<double>(stats.count);
  const auto rank = [&stats](double p) {
    return std::ceil(p / 100.0 * static_cast<double>(stats.count));
  };
  stats.p50 = GridValueAtRank(merged, stats.count, rank(50.0), min, max);
  stats.p95 = GridValueAtRank(merged, stats.count, rank(95.0), min, max);
  stats.p99 = GridValueAtRank(merged, stats.count, rank(99.0), min, max);
  return stats;
}

double LatencySeries::FractionBelow(double threshold_us, int seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  seconds = std::clamp<int>(seconds, 1, static_cast<int>(buckets_.size()));
  std::array<std::uint64_t, LatencyGrid::kNumBounds> merged{};
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  const std::int64_t total = MergeWindow(seconds, merged, &sum, &min, &max);
  if (total == 0) return 1.0;  // no traffic = no violations
  const auto& bounds = LatencyGrid::Bounds();
  const int threshold_bucket = LatencyGrid::BucketOf(threshold_us);
  std::uint64_t below = 0;
  for (int i = 0; i < threshold_bucket; ++i) below += merged[static_cast<std::size_t>(i)];
  // Partial credit for the bucket the threshold lands in (linear within).
  const std::uint64_t in_bucket = merged[static_cast<std::size_t>(threshold_bucket)];
  if (in_bucket > 0) {
    const double lo = threshold_bucket == 0
                          ? 0.0
                          : bounds[static_cast<std::size_t>(threshold_bucket - 1)];
    const double hi = bounds[static_cast<std::size_t>(threshold_bucket)];
    const double within = std::clamp((threshold_us - lo) / (hi - lo), 0.0, 1.0);
    below += static_cast<std::uint64_t>(within * static_cast<double>(in_bucket));
  }
  return static_cast<double>(below) / static_cast<double>(total);
}

// --------------------------------------------------------------- Collector

Collector::Collector(CollectorOptions options) : options_(options) {
  epoch_steady_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
}

Collector& Collector::Global() {
  static Collector* collector = new Collector();  // outlives static teardown
  return *collector;
}

RateSeries& Collector::TrackCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& tracked : counters_) {
    if (tracked.name == name) return *tracked.series;
  }
  TrackedCounter tracked;
  tracked.name = name;
  tracked.series = std::make_unique<RateSeries>(options_.window_seconds);
  tracked.series->Advance(now_sec_);
  counters_.push_back(std::move(tracked));
  return *counters_.back().series;
}

LatencySeries& Collector::TrackHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& tracked : histograms_) {
    if (tracked.name == name) return *tracked.series;
  }
  TrackedHistogram tracked;
  tracked.name = name;
  tracked.series = std::make_unique<LatencySeries>(options_.window_seconds);
  tracked.series->Advance(now_sec_);
  histograms_.push_back(std::move(tracked));
  return *histograms_.back().series;
}

RateSeries* Collector::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tracked : counters_) {
    if (tracked.name == name) return tracked.series.get();
  }
  return nullptr;
}

LatencySeries* Collector::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tracked : histograms_) {
    if (tracked.name == name) return tracked.series.get();
  }
  return nullptr;
}

void Collector::Tick() {
  const std::int64_t steady_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(mutex_);
  TickLocked((steady_ns - epoch_steady_ns_) / 1'000'000'000);
}

void Collector::Tick(std::int64_t now_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  TickLocked(now_sec);
}

void Collector::TickLocked(std::int64_t now_sec) {
  if (now_sec > now_sec_) now_sec_ = now_sec;
  auto& registry = metrics::Registry::Global();
  for (auto& tracked : counters_) {
    tracked.series->Advance(now_sec_);
    const metrics::Counter* counter = registry.FindCounter(tracked.name);
    const std::int64_t value = counter != nullptr ? counter->value() : 0;
    if (!tracked.primed) {
      // First observation establishes the baseline: events before tracking
      // started belong to the cumulative registry, not the window.
      tracked.primed = true;
      tracked.last_value = value;
      continue;
    }
    if (value > tracked.last_value) {
      tracked.series->AddDelta(value - tracked.last_value);
    } else if (value < tracked.last_value) {
      // Registry::Reset() rewound the counter; re-prime from the new base.
      tracked.last_value = value;
      continue;
    }
    tracked.last_value = value;
  }
  for (auto& tracked : histograms_) {
    tracked.series->Advance(now_sec_);
    const metrics::Histogram* histogram = registry.FindHistogram(tracked.name);
    if (histogram == nullptr) continue;
    drain_scratch_.clear();
    histogram->DrainSamplesSince(&tracked.cursor, &drain_scratch_);
    for (const double sample : drain_scratch_) tracked.series->Record(sample);
  }
}

std::int64_t Collector::now_sec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_sec_;
}

std::string Collector::ExportJson(const std::vector<int>& windows) const {
  const auto number = [](double value) {
    if (!std::isfinite(value)) return std::string("0");
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return std::string(buffer);
  };
  const auto quote = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  };

  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"now_sec\":" + std::to_string(now_sec_) +
                    ",\"window_sec\":" + std::to_string(options_.window_seconds) +
                    ",\"counters\":{";
  bool first = true;
  for (const auto& tracked : counters_) {
    if (!first) out += ",";
    first = false;
    out += quote(tracked.name) + ":{";
    bool first_window = true;
    for (const int w : windows) {
      if (!first_window) out += ",";
      first_window = false;
      out += quote(std::to_string(w) + "s") + ":{\"delta\":" +
             std::to_string(tracked.series->DeltaOver(w)) +
             ",\"rate_per_sec\":" + number(tracked.series->RateOver(w)) + "}";
    }
    out += "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& tracked : histograms_) {
    if (!first) out += ",";
    first = false;
    out += quote(tracked.name) + ":{";
    bool first_window = true;
    for (const int w : windows) {
      if (!first_window) out += ",";
      first_window = false;
      const WindowStats stats = tracked.series->Summarize(w);
      out += quote(std::to_string(w) + "s") + ":{\"count\":" +
             std::to_string(stats.count) +
             ",\"rate_per_sec\":" + number(stats.rate_per_sec) +
             ",\"min\":" + number(stats.min) + ",\"max\":" + number(stats.max) +
             ",\"mean\":" + number(stats.mean) + ",\"p50\":" + number(stats.p50) +
             ",\"p95\":" + number(stats.p95) + ",\"p99\":" + number(stats.p99) + "}";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace timeseries
}  // namespace support
}  // namespace tnp
