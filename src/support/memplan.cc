#include "support/memplan.h"

#include <algorithm>

#include "support/logging.h"

namespace tnp {
namespace support {

void LinearMemoryPlanner::BeginStep(int step) {
  for (auto& region : regions_) {
    if (!region.released && region.last_use < step) {
      region.released = true;
      Release(region.offset, region.bytes);
    }
  }
}

int LinearMemoryPlanner::Allocate(std::int64_t bytes, int last_use) {
  bytes = std::max<std::int64_t>(bytes, 1);
  bytes = (bytes + alignment_ - 1) / alignment_ * alignment_;
  total_bytes_ += bytes;

  // Best fit: smallest free range that can hold the request.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].bytes >= bytes && (best == free_.size() || free_[i].bytes < free_[best].bytes)) {
      best = i;
    }
  }

  Region region;
  region.bytes = bytes;
  region.last_use = last_use;
  if (best != free_.size()) {
    region.offset = free_[best].offset;
    free_[best].offset += bytes;
    free_[best].bytes -= bytes;
    if (free_[best].bytes == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
  } else {
    region.offset = arena_bytes_;
    arena_bytes_ += bytes;
  }
  regions_.push_back(region);
  return static_cast<int>(regions_.size()) - 1;
}

void LinearMemoryPlanner::ExtendLifetime(int region_id, int last_use) {
  Region& region = regions_[static_cast<std::size_t>(region_id)];
  TNP_CHECK(!region.released) << "cannot extend a released region";
  region.last_use = std::max(region.last_use, last_use);
}

void LinearMemoryPlanner::Release(std::int64_t offset, std::int64_t bytes) {
  const auto at = std::lower_bound(
      free_.begin(), free_.end(), offset,
      [](const FreeRange& range, std::int64_t value) { return range.offset < value; });
  const auto inserted = free_.insert(at, FreeRange{offset, bytes});
  const std::size_t index = static_cast<std::size_t>(inserted - free_.begin());
  // Coalesce with the right then the left neighbor.
  if (index + 1 < free_.size() &&
      free_[index].offset + free_[index].bytes == free_[index + 1].offset) {
    free_[index].bytes += free_[index + 1].bytes;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(index) + 1);
  }
  if (index > 0 && free_[index - 1].offset + free_[index - 1].bytes == free_[index].offset) {
    free_[index - 1].bytes += free_[index].bytes;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(index));
  }
}

}  // namespace support
}  // namespace tnp
