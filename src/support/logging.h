// Minimal leveled logging + check macros.
//
// TNP_CHECK(cond) << "msg"   -- throws tnp::InternalError when cond is false.
// TNP_THROW(kind) << "msg"   -- throws tnp::Error of the given kind.
// TNP_LOG(INFO) << "msg"     -- leveled logging to stderr (level filtered by
//                               the TNP_LOG_LEVEL environment variable).
#pragma once

#include <sstream>
#include <string>

#include "support/error.h"

namespace tnp {
namespace support {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Currently active minimum level (read once from TNP_LOG_LEVEL; default INFO).
LogLevel ActiveLogLevel();

/// Stream that emits one log line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Stream that throws InternalError on destruction (via Raise(), because
/// throwing from a destructor is forbidden).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  [[noreturn]] void Raise();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Stream that throws tnp::Error on destruction.
class ErrorFailure {
 public:
  explicit ErrorFailure(ErrorKind kind) : kind_(kind) {}
  [[noreturn]] void Raise();
  std::ostringstream& stream() { return stream_; }

 private:
  ErrorKind kind_;
  std::ostringstream stream_;
};

// Helper that lets the macros below use `... ? (void)0 : Voidify() & stream`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace support
}  // namespace tnp

#define TNP_LOG_DEBUG ::tnp::support::LogLevel::kDebug
#define TNP_LOG_INFO ::tnp::support::LogLevel::kInfo
#define TNP_LOG_WARNING ::tnp::support::LogLevel::kWarning
#define TNP_LOG_ERROR ::tnp::support::LogLevel::kError

#define TNP_LOG(level)                                              \
  if (TNP_LOG_##level < ::tnp::support::ActiveLogLevel()) {         \
  } else                                                            \
    ::tnp::support::LogMessage(TNP_LOG_##level, __FILE__, __LINE__).stream()

// Internal-invariant check: throws InternalError with expression + message.
#define TNP_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    for (::tnp::support::CheckFailure tnp_cf(__FILE__, __LINE__, #cond);;   \
         tnp_cf.Raise())                                                    \
  tnp_cf.stream()

#define TNP_CHECK_EQ(a, b) TNP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_NE(a, b) TNP_CHECK((a) != (b))
#define TNP_CHECK_LT(a, b) TNP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_LE(a, b) TNP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_GT(a, b) TNP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_GE(a, b) TNP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// User-visible error: TNP_THROW(kParseError) << "unexpected token";
#define TNP_THROW(kind)                                                     \
  for (::tnp::support::ErrorFailure tnp_ef(::tnp::ErrorKind::kind);;        \
       tnp_ef.Raise())                                                      \
  tnp_ef.stream()
