// Minimal leveled logging + check macros, with structured key=value fields.
//
// TNP_CHECK(cond) << "msg"   -- throws tnp::InternalError when cond is false.
// TNP_THROW(kind) << "msg"   -- throws tnp::Error of the given kind.
// TNP_LOG(INFO) << "msg"     -- leveled logging to stderr (level filtered by
//                               the TNP_LOG_LEVEL environment variable or
//                               SetLogLevel at runtime).
//
// Structured fields: stream KV("key", value) items and they render as
// trailing `key=value` pairs (string values quoted), machine-greppable and
// ordered after the free-text message:
//
//   TNP_LOG(INFO) << "admitted" << KV("model", name) << KV("flow", flow);
//     => [INFO server.cc:42] admitted model="det" flow="BYOC(CPU)" req_id=7
//
// When a request TraceContext is installed on the thread (trace_context.h),
// every line automatically carries `req_id=<id>` — log lines correlate with
// the Chrome-trace spans of the same request without any caller plumbing.
#pragma once

#include <sstream>
#include <string>

#include "support/error.h"

namespace tnp {
namespace support {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Currently active minimum level. Initialized from TNP_LOG_LEVEL
/// ("DEBUG"/"0" ... "ERROR"/"3", default INFO), adjustable with SetLogLevel.
LogLevel ActiveLogLevel();
void SetLogLevel(LogLevel level);

/// Redirect log output (tests). nullptr restores stderr.
void SetLogSink(std::ostream* sink);

/// One structured key=value field. Numbers render bare, strings quoted.
struct LogField {
  std::string key;
  std::string value;
  bool quoted = false;
};

inline LogField KV(std::string key, const std::string& value) {
  return LogField{std::move(key), value, true};
}
inline LogField KV(std::string key, const char* value) {
  return LogField{std::move(key), value, true};
}
inline LogField KV(std::string key, bool value) {
  return LogField{std::move(key), value ? "true" : "false", false};
}
template <typename T>
LogField KV(std::string key, const T& value) {
  std::ostringstream os;
  os << value;
  return LogField{std::move(key), os.str(), false};
}

/// Renders ` key=value` (strings quoted) at the point the field is streamed.
std::ostream& operator<<(std::ostream& os, const LogField& field);

/// Stream that emits one log line on destruction: the streamed text/fields,
/// then `req_id=<id>` from the thread's trace context when one is active.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Stream that throws InternalError on destruction (via Raise(), because
/// throwing from a destructor is forbidden).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  [[noreturn]] void Raise();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Stream that throws tnp::Error on destruction.
class ErrorFailure {
 public:
  explicit ErrorFailure(ErrorKind kind) : kind_(kind) {}
  [[noreturn]] void Raise();
  std::ostringstream& stream() { return stream_; }

 private:
  ErrorKind kind_;
  std::ostringstream stream_;
};

// Helper that lets the macros below use `... ? (void)0 : Voidify() & stream`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace support
}  // namespace tnp

#define TNP_LOG_DEBUG ::tnp::support::LogLevel::kDebug
#define TNP_LOG_INFO ::tnp::support::LogLevel::kInfo
#define TNP_LOG_WARNING ::tnp::support::LogLevel::kWarning
#define TNP_LOG_ERROR ::tnp::support::LogLevel::kError

#define TNP_LOG(level)                                              \
  if (TNP_LOG_##level < ::tnp::support::ActiveLogLevel()) {         \
  } else                                                            \
    ::tnp::support::LogMessage(TNP_LOG_##level, __FILE__, __LINE__).stream()

// Internal-invariant check: throws InternalError with expression + message.
#define TNP_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    for (::tnp::support::CheckFailure tnp_cf(__FILE__, __LINE__, #cond);;   \
         tnp_cf.Raise())                                                    \
  tnp_cf.stream()

#define TNP_CHECK_EQ(a, b) TNP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_NE(a, b) TNP_CHECK((a) != (b))
#define TNP_CHECK_LT(a, b) TNP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_LE(a, b) TNP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_GT(a, b) TNP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TNP_CHECK_GE(a, b) TNP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// User-visible error: TNP_THROW(kParseError) << "unexpected token";
#define TNP_THROW(kind)                                                     \
  for (::tnp::support::ErrorFailure tnp_ef(::tnp::ErrorKind::kind);;        \
       tnp_ef.Raise())                                                      \
  tnp_ef.stream()
