#include "support/debug_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/thread_pool.h"
#include "support/timeseries.h"

namespace tnp {
namespace support {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

/// Read until the end of the request head ("\r\n\r\n") or EOF; debug
/// requests are tiny, so 8 KiB bounds the head.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buffer[1024];
  while (head.size() < 8192) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    head.append(buffer, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return head;
}

bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string::npos) return false;
  request->method = line.substr(0, method_end);
  std::string target = line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query_at = target.find('?');
  if (query_at != std::string::npos) {
    request->query = target.substr(query_at + 1);
    target.resize(query_at);
  }
  request->path = std::move(target);
  return !request->path.empty() && request->path[0] == '/';
}

}  // namespace

DebugHttpServer::~DebugHttpServer() { Stop(); }

void DebugHttpServer::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[path] = std::move(handler);
}

void DebugHttpServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mutex_);
  TNP_CHECK(!running_) << "DebugHttpServer already running on port " << port_;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    TNP_THROW(kRuntimeError) << "debug-http: cannot create socket: "
                             << std::strerror(errno);
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int bind_errno = errno;
    ::close(fd);
    TNP_THROW(kRuntimeError) << "debug-http: cannot bind 127.0.0.1:" << port << ": "
                             << std::strerror(bind_errno)
                             << (bind_errno == EADDRINUSE
                                     ? " (is another process serving this port?)"
                                     : "");
  }
  if (::listen(fd, 16) != 0) {
    const int listen_errno = errno;
    ::close(fd);
    TNP_THROW(kRuntimeError) << "debug-http: cannot listen on 127.0.0.1:" << port
                             << ": " << std::strerror(listen_errno);
  }

  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  running_ = true;
  listener_ = std::thread([this] { ListenLoop(); });
  TNP_LOG(INFO) << "debug-http listening" << KV("port", port_);
}

void DebugHttpServer::Stop() {
  std::thread listener;
  std::vector<std::future<void>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
    // shutdown() wakes the blocked accept(); the loop then sees running_
    // false and exits before touching the closed fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    listener = std::move(listener_);
    connections = std::move(connections_);
  }
  if (listener.joinable()) listener.join();
  for (auto& connection : connections) {
    if (connection.valid()) connection.wait();
  }
}

bool DebugHttpServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int DebugHttpServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return port_;
}

void DebugHttpServer::ListenLoop() {
  for (;;) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) return;
      continue;  // transient (EINTR etc.)
    }
    // Never let one hung client pin a pool worker or block Stop().
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    std::future<void> done = ThreadPool::Global().Submit([this, fd] {
      // Socket IO can stall up to the 2s timeouts above; declare the task
      // blocking so the pool back-fills a spare worker instead of losing a
      // lane of compute concurrency to a slow client.
      ThreadPool::BlockingScope blocking;
      ServeConnection(fd);
    });
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      done.wait();  // raced with Stop(): finish it here
      return;
    }
    // Reap finished handlers so the vector stays small on long runs.
    auto alive = connections_.begin();
    for (auto& connection : connections_) {
      if (connection.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        *alive++ = std::move(connection);
      }
    }
    connections_.erase(alive, connections_.end());
    connections_.push_back(std::move(done));
  }
}

HttpResponse DebugHttpServer::Dispatch(const HttpRequest& request) const {
  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    HttpResponse response;
    response.status = 404;
    response.body = "not found: " + request.path + "\nendpoints:\n";
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [path, unused] : handlers_) response.body += "  " + path + "\n";
    return response;
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    HttpResponse response;
    response.status = 503;
    response.body = std::string("handler failed: ") + e.what() + "\n";
    return response;
  }
}

void DebugHttpServer::ServeConnection(int fd) {
  // Shows up in the sampling profiler: a worker pinned by a slow client
  // folds as pool;http:conn;(blocked) instead of anonymous time.
  profiler::LabelScope prof_label("http:conn");
  const std::string head = ReadRequestHead(fd);
  HttpRequest request;
  HttpResponse response;
  if (!ParseRequestLine(head, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    response = Dispatch(request);
  }

  std::string wire = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += response.body;
  SendAll(fd, wire);
  ::close(fd);
}

// ------------------------------------------------------- standard endpoints

void RegisterSupportEndpoints(DebugHttpServer& server) {
  server.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = metrics::ExportPrometheus();
    return response;
  });
  server.Handle("/timeseries", [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    std::vector<int> windows = {10, 60};
    if (request.query.rfind("window=", 0) == 0) {
      const int w = std::atoi(request.query.c_str() + 7);
      if (w > 0) windows = {w};
    }
    response.body = timeseries::Collector::Global().ExportJson(windows);
    return response;
  });
  server.Handle("/flightrecord", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = FlightRecorder::Global().Render("on-demand");
    return response;
  });
  server.Handle("/profilez", [](const HttpRequest& request) {
    HttpResponse response;
    if (request.query == "format=folded") {
      // Collapsed-stack text, ready for flamegraph.pl / speedscope.
      response.content_type = "text/plain; charset=utf-8";
      response.body = profiler::Profiler::Global().ExportFolded();
    } else {
      response.content_type = "application/json";
      response.body = profiler::Profiler::Global().ExportJson();
    }
    return response;
  });
}

// -------------------------------------------------------- loopback client

HttpResult HttpGet(int port, const std::string& path) {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    result.error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno);
    ::close(fd);
    return result;
  }

  SendAll(fd, "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 <status> ...\r\n<headers>\r\n\r\n<body>"
  const std::size_t status_at = raw.find(' ');
  if (status_at == std::string::npos) {
    result.error = "malformed response";
    return result;
  }
  result.status = std::atoi(raw.c_str() + status_at + 1);
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t body_skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    body_skip = 2;
  }
  if (body_at != std::string::npos) {
    const std::string head = raw.substr(0, body_at);
    result.body = raw.substr(body_at + body_skip);
    // Content-Type, case-insensitively prefixed lines only (debug server).
    std::size_t line_start = 0;
    while (line_start < head.size()) {
      std::size_t line_end = head.find('\n', line_start);
      if (line_end == std::string::npos) line_end = head.size();
      std::string line = head.substr(line_start, line_end - line_start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.rfind("Content-Type:", 0) == 0 || line.rfind("content-type:", 0) == 0) {
        std::size_t value_at = 13;
        while (value_at < line.size() && line[value_at] == ' ') ++value_at;
        result.content_type = line.substr(value_at);
      }
      line_start = line_end + 1;
    }
  }
  return result;
}

}  // namespace support
}  // namespace tnp
