// Crash/overload flight recorder: dumps the tail of the trace ring plus a
// full metrics snapshot to disk, on demand or automatically when a
// shed-storm is detected — so the moments *before* an incident are
// preserved even though the trace ring keeps overwriting itself.
//
// The dump is one JSON document:
//
//   {"reason": "...", "dump_ts_us": <tracer timebase>,
//    "trace_dropped": <ring overwrites>,
//    "trace": {"traceEvents": [...last N events...]},
//    "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
//    "timeseries": {...last-N-seconds window stats...},
//    "profile": {...folded-stack profiler state...},
//    "<aux>": ...each registered auxiliary section...}
//
// The windowed time-series snapshot and the sampling profiler's folded
// stacks ride along so a post-mortem sees the last-minute *trend* and
// where the workers spent their time, not just instant gauges. Higher
// layers (serve attribution) attach further sections with SetSection —
// support/ never links against them.
//
// Arming is explicit (Configure); RecordShed() is a cheap no-op while
// disarmed, so the serving hot path can call it unconditionally. Shed-storm
// detection is a sliding window: `shed_storm_threshold` sheds within
// `shed_storm_window_ms` triggers one automatic dump (re-armed by the next
// Configure), mirroring how overload incidents are captured in production
// servers without writing a file per shed.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace tnp {
namespace support {

struct FlightRecorderOptions {
  /// Where automatic (and default manual) dumps land.
  std::string path = "flight_record.json";
  /// Newest trace-ring events preserved in a dump.
  std::size_t max_events = 4096;
  /// Sheds within the window that trigger an automatic dump; 0 disables
  /// automatic triggering (manual Dump still works while armed).
  int shed_storm_threshold = 0;
  double shed_storm_window_ms = 100.0;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Arm with `options` (replaces any previous configuration and re-arms
  /// the one-shot shed-storm trigger).
  void Configure(FlightRecorderOptions options);
  void Disarm();
  bool armed() const;

  /// Attach a named auxiliary section rendered into every dump (and into
  /// Render). `render` must return one valid JSON value; it runs outside
  /// the recorder's lock. Re-registering a name replaces it. This is how
  /// layers above support/ (serve attribution) join the dump without a
  /// support -> serve dependency.
  void SetSection(const std::string& name, std::function<std::string()> render);

  /// Serialize the dump document (always available, armed or not).
  std::string Render(const std::string& reason) const;
  /// Render + write to the configured path (or `path_override`). Returns
  /// the path written. Throws tnp::Error on I/O failure.
  std::string Dump(const std::string& reason, const std::string& path_override = "");

  /// Overload signal from the serving layer: cheap while disarmed. When the
  /// configured storm threshold is crossed inside the sliding window, dumps
  /// once with reason "shed-storm".
  void RecordShed();

  /// Health signal from the serving layer: the monitor just transitioned to
  /// Unhealthy. Dumps once with reason "health:<detail>" while armed
  /// (one-shot until the next Configure); cheap no-op while disarmed.
  void RecordHealthTransition(const std::string& detail);

  /// Automatic + manual dumps since process start.
  std::int64_t dumps() const;

 private:
  FlightRecorder() = default;

  mutable std::mutex mutex_;
  bool armed_ = false;
  FlightRecorderOptions options_;
  bool storm_dumped_ = false;
  bool health_dumped_ = false;
  std::deque<std::chrono::steady_clock::time_point> shed_times_;
  std::int64_t dumps_ = 0;
  std::map<std::string, std::function<std::string()>> sections_;
};

}  // namespace support
}  // namespace tnp
