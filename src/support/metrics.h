// Process-wide metrics registry: counters, gauges and latency histograms.
//
// Metric objects are created on first use and never destroyed or moved, so a
// `Counter&` obtained once (e.g. cached in a function-local static) stays
// valid for the process lifetime; `Registry::Reset()` zeroes values in place
// without invalidating references. All operations are thread-safe.
//
// Naming convention: slash-separated lowercase paths, most-general component
// first — "kernels/dispatch", "flow/BYOC(APU)/sim_us",
// "pipeline/queue/obj-det/depth". Latency histograms end in "_us".
//
//   metrics::Registry::Global().GetCounter("kernels/dispatch").Increment();
//   metrics::Registry::Global().GetHistogram("bench/fig5/us").Record(dt_us);
//   metrics::Registry::Global().DumpText(std::cout);
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tnp {
namespace support {
namespace metrics {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written value plus a high-watermark (useful for queue depths).
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  double value() const;
  double max() const;
  void Reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

struct HistogramSummary {
  std::int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Latency histogram: retains up to `kMaxSamples` raw samples for exact
/// percentiles (nearest-rank); count/sum/min/max keep counting past the cap.
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 1u << 16;

  void Record(double value);
  std::int64_t count() const;
  /// Nearest-rank percentile over the retained samples, p in (0, 100].
  double Percentile(double p) const;
  HistogramSummary Summarize() const;
  /// Append the raw samples recorded since `*cursor` to `out` and advance
  /// the cursor — how the time-series collector drains new samples into its
  /// per-second ring. Only the first kMaxSamples are retained; past the cap
  /// the cursor saturates. A cursor beyond the current size (the histogram
  /// was Reset) restarts from zero.
  void DrainSamplesSince(std::size_t* cursor, std::vector<double>* out) const;
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One registered metric, for exporters iterating the registry. The
/// pointers stay valid for the process lifetime (metrics are never removed);
/// at least one of the three is non-null.
struct MetricRef {
  std::string name;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

class Registry {
 public:
  static Registry& Global();

  /// Find-or-create. The returned reference is valid for the process
  /// lifetime (metrics are never removed).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// nullptr when the metric has not been created.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Plain-text dump of every metric, sorted by name.
  void DumpText(std::ostream& os) const;
  std::string DumpText() const;

  /// Every registered metric, sorted by name (exporter iteration).
  std::vector<MetricRef> Entries() const;

  /// Zero every metric in place; references stay valid.
  void Reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;  // insertion order

  Entry& Find(const std::string& name);
  const Entry* FindConst(const std::string& name) const;
};

// ------------------------------------------------------------- exporters

/// Prometheus text exposition (version 0.0.4) of every registered metric,
/// in sorted-name order (deterministic and diffable across runs).
/// Slash-separated names sanitize to `tnp_`-prefixed underscore names
/// ("serve/queue/cpu/depth" -> "tnp_serve_queue_cpu_depth"); every series
/// carries `# HELP` (the original slash name) and `# TYPE` lines; gauges
/// export their high-watermark as an extra `<name>_max` series, histograms
/// export as summaries (quantile series + `_sum`/`_count`).
std::string ExportPrometheus(const Registry& registry = Registry::Global());

/// JSON snapshot: {"counters": {...}, "gauges": {name: {value, max}},
/// "histograms": {name: {count, min, max, mean, stddev, p50, p95, p99}}}.
/// Parseable by support::JsonValue (tested round-trip).
std::string ExportJson(const Registry& registry = Registry::Global());

}  // namespace metrics
}  // namespace support
}  // namespace tnp
