// NeuronCompiler — validates a NeuronModel, runs the Execution Planner and
// produces an executable NeuronPackage ("the Runtime will infer the output
// binary after the Compiler has completed its work", paper Section 2.1).
#pragma once

#include <memory>
#include <string>

#include "kernels/pack.h"
#include "neuron/planner.h"

namespace tnp {
namespace neuron {

struct CompilerOptions {
  TargetConfig target = TargetConfig::CpuOnly();
  const sim::Testbed* testbed = &sim::Testbed::Dimensity800();
  PlannerPolicy policy = PlannerPolicy::kGreedyCost;
  /// Pack constant conv/fully-connected weights into GEMM panel layout at
  /// compile time (see kernels/pack.h); sessions then never repack.
  bool prepack_weights = true;
};

/// Static storage assignment of one operand in a compiled package.
struct OperandStorage {
  enum class Kind : std::uint8_t {
    kExternal,  ///< model input, bound by the caller at execution time
    kConstant,  ///< weights/bias, reference the model's captured NDArray
    kArena,     ///< temporary at [offset, offset + bytes) in a session arena
  };
  Kind kind = Kind::kExternal;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
};

/// Compile-time memory plan: every temporary operand gets a fixed range of
/// a per-session arena, with regions recycled once their last reader has
/// executed (model outputs are never recycled — they survive the run).
struct NeuronMemoryPlan {
  std::vector<OperandStorage> operands;  ///< indexed by OperandId
  std::int64_t arena_bytes = 0;          ///< session arena size (with reuse)
  std::int64_t planned_bytes = 0;        ///< sum of temporary sizes (no reuse)
};

/// Compiled artifact: the model plus its device placement and memory plan.
/// Immutable.
struct NeuronPackage {
  std::string name;
  NeuronModel model;
  ExecutionPlan plan;
  NeuronMemoryPlan memory;
  CompilerOptions options;
  /// Per-operation pre-packed constant weights (indexed by operation;
  /// null for ops without a packable constant weight). Entries are shared
  /// through `packed_weights` so reused constants pack once.
  std::vector<kernels::PackedMatrixPtr> op_packed_weights;
  kernels::PackedWeightsCache packed_weights;
  /// Fingerprint of the tuning DB active when this package was compiled
  /// ("none" without one). Serialized with the artifact so packages built
  /// under different tuning states never mix.
  std::string tuning_fingerprint = "none";

  int NumOps() const { return static_cast<int>(model.operations().size()); }
  int NumOpsOn(sim::DeviceKind device) const;
};

using NeuronPackagePtr = std::shared_ptr<const NeuronPackage>;

class NeuronCompiler {
 public:
  explicit NeuronCompiler(CompilerOptions options) : options_(std::move(options)) {}

  /// Throws kCompileError / kUnsupportedOp on invalid or unplannable models.
  NeuronPackagePtr Compile(NeuronModel model, const std::string& name) const;

 private:
  CompilerOptions options_;
};

}  // namespace neuron
}  // namespace tnp
