// NeuronCompiler — validates a NeuronModel, runs the Execution Planner and
// produces an executable NeuronPackage ("the Runtime will infer the output
// binary after the Compiler has completed its work", paper Section 2.1).
#pragma once

#include <memory>
#include <string>

#include "neuron/planner.h"

namespace tnp {
namespace neuron {

struct CompilerOptions {
  TargetConfig target = TargetConfig::CpuOnly();
  const sim::Testbed* testbed = &sim::Testbed::Dimensity800();
  PlannerPolicy policy = PlannerPolicy::kGreedyCost;
};

/// Compiled artifact: the model plus its device placement. Immutable.
struct NeuronPackage {
  std::string name;
  NeuronModel model;
  ExecutionPlan plan;
  CompilerOptions options;

  int NumOps() const { return static_cast<int>(model.operations().size()); }
  int NumOpsOn(sim::DeviceKind device) const;
};

using NeuronPackagePtr = std::shared_ptr<const NeuronPackage>;

class NeuronCompiler {
 public:
  explicit NeuronCompiler(CompilerOptions options) : options_(std::move(options)) {}

  /// Throws kCompileError / kUnsupportedOp on invalid or unplannable models.
  NeuronPackagePtr Compile(NeuronModel model, const std::string& name) const;

 private:
  CompilerOptions options_;
};

}  // namespace neuron
}  // namespace tnp
