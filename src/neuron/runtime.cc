#include "neuron/runtime.h"

#include <cstring>
#include <set>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/elementwise.h"
#include "kernels/pool.h"
#include "kernels/quantize.h"
#include "neuron/desc.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace neuron {

namespace {

kernels::Conv2DParams ConvParams(const NeuronOpAttrs& attrs) {
  kernels::Conv2DParams p;
  p.stride_h = attrs.strides[0];
  p.stride_w = attrs.strides[1];
  p.pad_h = attrs.padding[0];
  p.pad_w = attrs.padding[1];
  p.dilation_h = attrs.dilation[0];
  p.dilation_w = attrs.dilation[1];
  p.groups = attrs.groups;
  return p;
}

kernels::Pool2DParams PoolParams(const NeuronOpAttrs& attrs) {
  kernels::Pool2DParams p;
  p.kernel_h = attrs.pool_size[0];
  p.kernel_w = attrs.pool_size[1];
  p.stride_h = attrs.strides[0];
  p.stride_w = attrs.strides[1];
  p.pad_h = attrs.padding[0];
  p.pad_w = attrs.padding[1];
  p.count_include_pad = attrs.count_include_pad;
  return p;
}

/// Executes one Neuron operation numerically. `packed_weights` is the op's
/// compile-time packed weight panel (conv / fully-connected only, else null).
void RunOperation(const NeuronModel& model, const Operation& op,
                  std::vector<NDArray>& values,
                  const kernels::PackedMatrix* packed_weights) {
  const auto in = [&](std::size_t i) -> const NDArray& {
    const NDArray& value = values[static_cast<std::size_t>(op.inputs.at(i))];
    TNP_CHECK(value.defined()) << "operand %" << op.inputs.at(i) << " not materialized";
    return value;
  };
  const auto in_quant = [&](std::size_t i) -> const QuantParams& {
    return model.operand(op.inputs.at(i)).quant;
  };
  const Operand& out_operand = model.operand(op.outputs.at(0));
  // Pre-planned sessions seed `values` with arena views; the legacy path
  // allocates the output here.
  NDArray out = values[static_cast<std::size_t>(op.outputs.at(0))];
  if (!out.defined()) out = NDArray::Empty(out_operand.shape, out_operand.dtype);
  const QuantParams& out_quant = out_operand.quant;
  const bool int8_out = out_operand.dtype == DType::kInt8;

  switch (op.type) {
    case NeuronOpType::kConv2d: {
      const NDArray bias = op.inputs.size() > 2 ? in(2) : NDArray();
      if (int8_out) {
        kernels::QConv2DS8(in(0), in(1), bias, out, ConvParams(op.attrs), in_quant(0),
                           in_quant(1), out_quant, packed_weights);
      } else {
        kernels::Conv2DF32(in(0), in(1), bias, out, ConvParams(op.attrs), packed_weights);
      }
      break;
    }
    case NeuronOpType::kFullyConnected: {
      const NDArray bias = op.inputs.size() > 2 ? in(2) : NDArray();
      if (int8_out) {
        kernels::QDenseS8(in(0), in(1), bias, out, in_quant(0), in_quant(1), out_quant,
                          packed_weights);
      } else {
        kernels::DenseF32(in(0), in(1), bias, out, packed_weights);
      }
      break;
    }
    case NeuronOpType::kAdd:
      if (int8_out) {
        kernels::QAddS8(in(0), in(1), out, in_quant(0), in_quant(1), out_quant);
      } else {
        kernels::BroadcastBinaryF32(kernels::BinaryOp::kAdd, in(0), in(1), out);
      }
      break;
    case NeuronOpType::kMul:
      if (int8_out) {
        kernels::QMulS8(in(0), in(1), out, in_quant(0), in_quant(1), out_quant);
      } else {
        kernels::BroadcastBinaryF32(kernels::BinaryOp::kMul, in(0), in(1), out);
      }
      break;
    case NeuronOpType::kSub:
      kernels::BroadcastBinaryF32(kernels::BinaryOp::kSub, in(0), in(1), out);
      break;
    case NeuronOpType::kDiv:
      kernels::BroadcastBinaryF32(kernels::BinaryOp::kDiv, in(0), in(1), out);
      break;
    case NeuronOpType::kMax:
      kernels::BroadcastBinaryF32(kernels::BinaryOp::kMax, in(0), in(1), out);
      break;
    case NeuronOpType::kMin:
      kernels::BroadcastBinaryF32(kernels::BinaryOp::kMin, in(0), in(1), out);
      break;
    case NeuronOpType::kRelu:
      if (int8_out) {
        kernels::ReluS8(in(0), out, in_quant(0).valid ? in_quant(0).zero_point : 0);
      } else {
        kernels::ReluF32(in(0), out);
      }
      break;
    case NeuronOpType::kClip:
      kernels::ClipF32(in(0), out, op.attrs.clip_min, op.attrs.clip_max);
      break;
    case NeuronOpType::kMaxPool2d:
      if (int8_out) {
        kernels::MaxPool2DS8(in(0), out, PoolParams(op.attrs));
      } else {
        kernels::MaxPool2DF32(in(0), out, PoolParams(op.attrs));
      }
      break;
    case NeuronOpType::kAvgPool2d:
      if (int8_out) {
        kernels::AvgPool2DS8(in(0), out, PoolParams(op.attrs));
      } else {
        kernels::AvgPool2DF32(in(0), out, PoolParams(op.attrs));
      }
      break;
    case NeuronOpType::kGlobalAvgPool2d:
      if (int8_out) {
        kernels::GlobalAvgPool2DS8(in(0), out);
      } else {
        kernels::GlobalAvgPool2DF32(in(0), out);
      }
      break;
    case NeuronOpType::kSoftmax:
      kernels::SoftmaxF32(in(0), out, op.attrs.axis);
      break;
    case NeuronOpType::kConcat: {
      std::vector<NDArray> tensors;
      tensors.reserve(op.inputs.size());
      for (std::size_t i = 0; i < op.inputs.size(); ++i) tensors.push_back(in(i));
      if (int8_out) {
        std::vector<QuantParams> qs;
        for (std::size_t i = 0; i < op.inputs.size(); ++i) qs.push_back(in_quant(i));
        kernels::QConcatS8(tensors, qs, out, out_quant, op.attrs.axis);
      } else {
        kernels::Concat(tensors, out, op.attrs.axis);
      }
      break;
    }
    case NeuronOpType::kReshape: {
      // A pure byte copy (both layouts are contiguous); skipped entirely
      // when the memory plan placed input and output on the same bytes.
      const NDArray& src = in(0);
      TNP_CHECK_EQ(src.SizeBytes(), out.SizeBytes());
      if (out.RawData() != src.RawData()) {
        std::memcpy(out.RawData(), src.RawData(), src.SizeBytes());
      }
      out.set_quant(src.quant());
      break;
    }
    case NeuronOpType::kBatchNorm:
      kernels::BatchNormF32(in(0), in(1), in(2), in(3), in(4), out, op.attrs.epsilon);
      break;
    case NeuronOpType::kPad:
      kernels::PadConstant(in(0), out, op.attrs.pad_before, op.attrs.pad_after,
                           op.attrs.pad_value);
      break;
    case NeuronOpType::kQuantize:
      kernels::QuantizeF32ToS8(in(0), out, out_quant);
      break;
    case NeuronOpType::kDequantize:
      kernels::DequantizeS8ToF32(in(0), out, in_quant(0));
      break;
    case NeuronOpType::kRequantize:
      kernels::RequantizeS8(in(0), out, in_quant(0), out_quant);
      break;
  }
  values[static_cast<std::size_t>(op.outputs.at(0))] = std::move(out);
}

}  // namespace

NeuronExecutionSession::NeuronExecutionSession(NeuronPackagePtr package)
    : package_(std::move(package)), arena_("neuron/" + package_->name) {
  TNP_CHECK(package_ != nullptr);
  const NeuronModel& model = package_->model;
  const NeuronMemoryPlan& plan = package_->memory;
  TNP_CHECK_EQ(plan.operands.size(), model.operands().size());
  arena_.Reserve(static_cast<std::size_t>(plan.arena_bytes));
  views_.resize(model.operands().size());
  for (std::size_t id = 0; id < model.operands().size(); ++id) {
    const OperandStorage& storage = plan.operands[id];
    if (storage.kind != OperandStorage::Kind::kArena) continue;
    const Operand& operand = model.operands()[id];
    const std::size_t bytes = static_cast<std::size_t>(storage.bytes);
    NDArray view = NDArray::ViewOver(arena_.Data(static_cast<std::size_t>(storage.offset), bytes),
                                     bytes, operand.shape, operand.dtype, arena_.handle());
    view.set_quant(operand.quant);
    views_[id] = std::move(view);
  }
}

std::vector<NDArray> NeuronRuntime::Execute(const NeuronPackage& package,
                                            const std::vector<NDArray>& inputs,
                                            sim::SimClock* clock, bool execute_numerics,
                                            NeuronExecutionSession* session) {
  const NeuronModel& model = package.model;
  const sim::CostModel cost_model(*package.options.testbed);

  // Checkout/checkin discipline: a session backs its run with one shared
  // arena, so concurrent Executes against the same session would race on
  // operand storage. Catch that misuse here instead of corrupting tensors.
  struct SessionGuard {
    explicit SessionGuard(NeuronExecutionSession* s) : session(s) {
      if (session != nullptr) {
        TNP_CHECK(!session->in_use_.exchange(true, std::memory_order_acquire))
            << "NeuronExecutionSession used by two executors concurrently "
               "(sessions must be checked out for exclusive use)";
      }
    }
    ~SessionGuard() {
      if (session != nullptr) session->in_use_.store(false, std::memory_order_release);
    }
    NeuronExecutionSession* session;
  } session_guard(session);

  static support::metrics::Counter& executions =
      support::metrics::Registry::Global().GetCounter("neuron/executions");
  executions.Increment();
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("neuron.runtime", std::string("Execute:") + package.name,
                support::TraceArg("ops", static_cast<int>(model.operations().size())),
                support::TraceArg("numerics", execute_numerics));
  }

  sim::SimClock local_clock;
  local_clock.AddTransfer(0, kInvocationOverheadUs);  // session dispatch

  std::vector<NDArray> values;
  if (execute_numerics) {
    TNP_CHECK_EQ(inputs.size(), model.model_inputs().size())
        << "NeuronRuntime: input count mismatch for package '" << package.name << "'";
    values.resize(model.operands().size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Operand& operand = model.operand(model.model_inputs()[i]);
      TNP_CHECK(inputs[i].defined());
      TNP_CHECK(inputs[i].shape() == operand.shape)
          << "input " << i << " shape " << inputs[i].shape().ToString() << " != operand "
          << operand.shape.ToString();
      TNP_CHECK(inputs[i].dtype() == operand.dtype);
      values[static_cast<std::size_t>(model.model_inputs()[i])] = inputs[i];
    }
    for (OperandId id = 0; id < static_cast<OperandId>(model.operands().size()); ++id) {
      if (model.operand(id).kind == OperandKind::kConstant) {
        values[static_cast<std::size_t>(id)] = model.operand(id).data;
      }
    }
    if (session != nullptr) {
      TNP_CHECK(session->package_.get() == &package)
          << "NeuronExecutionSession was created for a different package";
      for (std::size_t id = 0; id < session->views_.size(); ++id) {
        if (session->views_[id].defined()) values[id] = session->views_[id];
      }
    }
  }

  // Residence tracking mirrors the planner so transfer costs match the plan.
  std::vector<std::set<sim::Resource>> residence(model.operands().size());
  for (const OperandId id : model.model_inputs()) {
    residence[static_cast<std::size_t>(id)].insert(sim::Resource::kCpu);
  }

  TNP_CHECK_EQ(package.plan.placement.size(), model.operations().size());
  for (std::size_t op_index = 0; op_index < model.operations().size(); ++op_index) {
    const Operation& op = model.operations()[op_index];
    const sim::DeviceKind device = package.plan.placement[op_index];
    const sim::Resource resource = sim::ResourceOf(device);

    // DMA any non-resident inputs.
    for (const OperandId id : op.inputs) {
      const Operand& operand = model.operand(id);
      if (operand.kind == OperandKind::kConstant) continue;
      auto& where = residence[static_cast<std::size_t>(id)];
      if (where.count(resource) == 0) {
        local_clock.AddTransfer(
            operand.SizeBytes(),
            cost_model.TransferMicros(operand.SizeBytes(), sim::DeviceKind::kNeuronCpu,
                                      resource == sim::Resource::kApu
                                          ? sim::DeviceKind::kNeuronApu
                                          : sim::DeviceKind::kNeuronCpu) +
                (resource == sim::Resource::kApu
                     ? 0.0
                     : cost_model.TransferMicros(operand.SizeBytes(),
                                                 sim::DeviceKind::kNeuronApu,
                                                 sim::DeviceKind::kNeuronCpu)));
        where.insert(resource);
      }
    }

    const sim::OpDesc desc = DescribeOperation(model, op);
    local_clock.AddOp(desc, device, cost_model.OpMicros(desc, device));
    for (const OperandId id : op.outputs) {
      residence[static_cast<std::size_t>(id)].insert(resource);
    }

    if (execute_numerics) {
      RunOperation(model, op, values,
                   op_index < package.op_packed_weights.size()
                       ? package.op_packed_weights[op_index].get()
                       : nullptr);
    }
  }

  // Download APU-resident outputs to host memory.
  std::vector<NDArray> outputs;
  for (const OperandId id : model.model_outputs()) {
    const Operand& operand = model.operand(id);
    if (residence[static_cast<std::size_t>(id)].count(sim::Resource::kCpu) == 0) {
      local_clock.AddTransfer(operand.SizeBytes(),
                              cost_model.TransferMicros(operand.SizeBytes(),
                                                        sim::DeviceKind::kNeuronApu,
                                                        sim::DeviceKind::kNeuronCpu));
    }
    if (execute_numerics) {
      const NDArray& value = values[static_cast<std::size_t>(id)];
      TNP_CHECK(value.defined()) << "model output %" << id << " not produced";
      outputs.push_back(value);
    }
  }

  if (scope.armed()) {
    scope.AddArg(support::TraceArg("sim_us", local_clock.total_us()));
  }
  if (clock != nullptr) clock->Merge(local_clock);
  return outputs;
}

}  // namespace neuron
}  // namespace tnp
