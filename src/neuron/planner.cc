#include "neuron/planner.h"

#include <limits>
#include <set>
#include <unordered_map>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace neuron {

namespace {

const char* PolicyName(PlannerPolicy policy) {
  switch (policy) {
    case PlannerPolicy::kFirstDevice: return "first";
    case PlannerPolicy::kGreedyCost: return "greedy";
    case PlannerPolicy::kDynamic: return "dynamic";
  }
  return "unknown";
}

double DmaUs(const sim::CostModel& cost_model, std::int64_t bytes) {
  return cost_model.TransferMicros(bytes, sim::DeviceKind::kNeuronCpu,
                                   sim::DeviceKind::kNeuronApu);
}

/// The greedy policy described in the header: per-op argmin of compute +
/// upstream transfer cost, with a download penalty for model outputs.
ExecutionPlan PlanGreedy(const NeuronModel& model, const TargetConfig& target,
                         const sim::Testbed& testbed, PlannerPolicy policy) {
  const sim::CostModel cost_model(testbed);
  const std::vector<sim::DeviceKind> devices = target.Devices();

  ExecutionPlan plan;
  plan.placement.reserve(model.operations().size());

  // Resources each operand is currently resident on. Model inputs arrive in
  // host (CPU) memory; constants are preloaded per device by the compiler,
  // so they never incur runtime transfers.
  std::vector<std::set<sim::Resource>> residence(model.operands().size());
  for (const OperandId id : model.model_inputs()) {
    residence[static_cast<std::size_t>(id)].insert(sim::Resource::kCpu);
  }

  for (const Operation& op : model.operations()) {
    const sim::OpDesc desc = DescribeOperation(model, op);

    // Does this op produce a model output? Its result must end up in host
    // memory, so APU placement pays the download too.
    bool produces_model_output = false;
    for (const OperandId id : op.outputs) {
      for (const OperandId out : model.model_outputs()) {
        if (id == out) produces_model_output = true;
      }
    }

    sim::DeviceKind best_device = sim::DeviceKind::kNeuronCpu;
    double best_cost = std::numeric_limits<double>::infinity();
    bool found = false;

    for (const sim::DeviceKind device : devices) {
      if (!DeviceSupports(device, op.type)) continue;
      double cost = cost_model.OpMicros(desc, device);
      if (produces_model_output && device == sim::DeviceKind::kNeuronApu) {
        for (const OperandId id : op.outputs) {
          cost += DmaUs(cost_model, model.operand(id).SizeBytes());
        }
      }
      const sim::Resource resource = sim::ResourceOf(device);
      for (const OperandId id : op.inputs) {
        const Operand& operand = model.operand(id);
        if (operand.kind == OperandKind::kConstant) continue;
        if (residence[static_cast<std::size_t>(id)].count(resource) == 0) {
          cost += DmaUs(cost_model, operand.SizeBytes());
        }
      }
      if (!found || cost < best_cost) {
        best_device = device;
        best_cost = cost;
        found = true;
      }
      if (policy == PlannerPolicy::kFirstDevice && found) break;
    }

    if (!found) {
      TNP_THROW(kUnsupportedOp) << "NeuroPilot Execution Planner: operator "
                                << NeuronOpTypeName(op.type)
                                << " is not supported on any enabled device (targets: "
                                << target.ToString() << ")";
    }

    TNP_TRACE_INSTANT("neuron.planner",
                      std::string("assign:") + NeuronOpTypeName(op.type),
                      support::TraceArg("op_index",
                                        static_cast<int>(plan.placement.size())),
                      support::TraceArg("device", sim::DeviceKindName(best_device)),
                      support::TraceArg("cost_us", best_cost));

    const sim::Resource resource = sim::ResourceOf(best_device);
    for (const OperandId id : op.inputs) {
      if (model.operand(id).kind == OperandKind::kConstant) continue;
      residence[static_cast<std::size_t>(id)].insert(resource);
    }
    for (const OperandId id : op.outputs) {
      residence[static_cast<std::size_t>(id)].insert(resource);
    }
    plan.placement.push_back(best_device);
  }
  return plan;
}

/// Iterative refinement (the kDynamic policy): start from the greedy plan,
/// then sweep the operation list re-choosing each op's device against its
/// *actual* producers and consumers — i.e. with downstream I/O visibility,
/// which the one-pass greedy lacks — until a fixed point.
void RefinePlacement(const NeuronModel& model, const TargetConfig& target,
                     const sim::Testbed& testbed, std::vector<sim::DeviceKind>& placement) {
  const sim::CostModel cost_model(testbed);
  const std::vector<sim::DeviceKind> devices = target.Devices();

  // operand -> producing op index (-1 for inputs/constants).
  std::unordered_map<OperandId, int> producer;
  // op index -> list of (consumer op index) per operand it produces.
  std::vector<std::vector<int>> consumers(model.operations().size());
  for (std::size_t i = 0; i < model.operations().size(); ++i) {
    for (const OperandId id : model.operations()[i].inputs) {
      const auto it = producer.find(id);
      if (it != producer.end()) consumers[static_cast<std::size_t>(it->second)].push_back(static_cast<int>(i));
    }
    for (const OperandId id : model.operations()[i].outputs) {
      producer[id] = static_cast<int>(i);
    }
  }

  const auto resource_of_op = [&](int index) {
    return sim::ResourceOf(placement[static_cast<std::size_t>(index)]);
  };

  for (int sweep = 0; sweep < 6; ++sweep) {
    bool changed = false;
    for (std::size_t i = 0; i < model.operations().size(); ++i) {
      const Operation& op = model.operations()[i];
      const sim::OpDesc desc = DescribeOperation(model, op);

      sim::DeviceKind best_device = placement[i];
      double best_cost = std::numeric_limits<double>::infinity();
      for (const sim::DeviceKind device : devices) {
        if (!DeviceSupports(device, op.type)) continue;
        const sim::Resource resource = sim::ResourceOf(device);
        double cost = cost_model.OpMicros(desc, device);
        // Upstream transfers: inputs produced on another resource.
        for (const OperandId id : op.inputs) {
          const Operand& operand = model.operand(id);
          if (operand.kind == OperandKind::kConstant) continue;
          const auto it = producer.find(id);
          const sim::Resource from =
              it != producer.end() ? resource_of_op(it->second) : sim::Resource::kCpu;
          if (from != resource) cost += DmaUs(cost_model, operand.SizeBytes());
        }
        // Downstream transfers: consumers on another resource, and model
        // outputs that must land on the host.
        for (const OperandId id : op.outputs) {
          const Operand& operand = model.operand(id);
          std::set<sim::Resource> consumer_resources;
          const auto it = producer.find(id);
          if (it != producer.end()) {
            for (const int consumer : consumers[static_cast<std::size_t>(it->second)]) {
              consumer_resources.insert(resource_of_op(consumer));
            }
          }
          for (const OperandId out : model.model_outputs()) {
            if (id == out) consumer_resources.insert(sim::Resource::kCpu);
          }
          for (const sim::Resource to : consumer_resources) {
            if (to != resource) cost += DmaUs(cost_model, operand.SizeBytes());
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_device = device;
        }
      }
      if (best_device != placement[i]) {
        placement[i] = best_device;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

}  // namespace

double EstimatePlanUs(const NeuronModel& model, const std::vector<sim::DeviceKind>& placement,
                      const sim::Testbed& testbed) {
  TNP_CHECK_EQ(placement.size(), model.operations().size());
  const sim::CostModel cost_model(testbed);
  double total = 0.0;

  std::vector<std::set<sim::Resource>> residence(model.operands().size());
  for (const OperandId id : model.model_inputs()) {
    residence[static_cast<std::size_t>(id)].insert(sim::Resource::kCpu);
  }

  for (std::size_t i = 0; i < model.operations().size(); ++i) {
    const Operation& op = model.operations()[i];
    const sim::DeviceKind device = placement[i];
    const sim::Resource resource = sim::ResourceOf(device);
    for (const OperandId id : op.inputs) {
      const Operand& operand = model.operand(id);
      if (operand.kind == OperandKind::kConstant) continue;
      auto& where = residence[static_cast<std::size_t>(id)];
      if (where.count(resource) == 0) {
        total += cost_model.TransferMicros(operand.SizeBytes(), sim::DeviceKind::kNeuronCpu,
                                           sim::DeviceKind::kNeuronApu);
        where.insert(resource);
      }
    }
    const sim::OpDesc desc = DescribeOperation(model, op);
    total += cost_model.OpMicros(desc, device);
    for (const OperandId id : op.outputs) {
      residence[static_cast<std::size_t>(id)].insert(resource);
    }
  }
  for (const OperandId id : model.model_outputs()) {
    if (residence[static_cast<std::size_t>(id)].count(sim::Resource::kCpu) == 0) {
      total += cost_model.TransferMicros(model.operand(id).SizeBytes(),
                                         sim::DeviceKind::kNeuronApu,
                                         sim::DeviceKind::kNeuronCpu);
    }
  }
  return total;
}

ExecutionPlan PlanExecution(const NeuronModel& model, const TargetConfig& target,
                            const sim::Testbed& testbed, PlannerPolicy policy) {
  static support::metrics::Counter& plans =
      support::metrics::Registry::Global().GetCounter("neuron/plans");
  plans.Increment();
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("neuron.planner", "PlanExecution",
                support::TraceArg("policy", PolicyName(policy)),
                support::TraceArg("target", target.ToString()),
                support::TraceArg("ops", static_cast<int>(model.operations().size())));
  }
  model.Validate();
  ExecutionPlan plan = PlanGreedy(
      model, target, testbed,
      policy == PlannerPolicy::kFirstDevice ? PlannerPolicy::kFirstDevice
                                            : PlannerPolicy::kGreedyCost);
  if (policy == PlannerPolicy::kDynamic) {
    // Local-search refinement from several starting points (the greedy plan
    // and each feasible uniform placement); pairwise-coupled assignments
    // like conv+activation both stranded on the APU are local minima a
    // single start cannot escape. Keep the best candidate.
    std::vector<std::vector<sim::DeviceKind>> candidates;
    candidates.push_back(plan.placement);
    for (const sim::DeviceKind device : target.Devices()) {
      bool feasible = true;
      for (const Operation& op : model.operations()) {
        if (!DeviceSupports(device, op.type)) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        candidates.emplace_back(model.operations().size(), device);
      }
    }

    double best_us = std::numeric_limits<double>::infinity();
    std::vector<sim::DeviceKind> best = plan.placement;
    for (auto& candidate : candidates) {
      RefinePlacement(model, target, testbed, candidate);
      const double us = EstimatePlanUs(model, candidate, testbed);
      if (us < best_us) {
        best_us = us;
        best = candidate;
      }
    }
    if (best_us <= EstimatePlanUs(model, plan.placement, testbed)) {
      plan.placement = std::move(best);
    }
  }
  plan.estimated_us = EstimatePlanUs(model, plan.placement, testbed);
  if (scope.armed()) {
    scope.AddArg(support::TraceArg("estimated_us", plan.estimated_us));
  }
  return plan;
}

}  // namespace neuron
}  // namespace tnp
