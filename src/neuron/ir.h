// Neuron IR — the simulated NeuroPilot compiler's input representation.
//
// Unlike Relay (an expression AST with operator-oriented quantization
// attributes), Neuron IR is *tensor-oriented* in the NNAPI style: a flat
// table of operands (each carrying shape, dtype and, for quantized models,
// its own per-tensor QuantParams) plus a list of operations referencing
// operands by index. Converting Relay's operator-oriented quantization info
// onto these operands is the paper's Section 3.3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/ndarray.h"

namespace tnp {
namespace neuron {

enum class NeuronOpType : std::uint8_t {
  kConv2d,          ///< grouped conv covers depthwise; dtype selects int8 path
  kFullyConnected,
  kAdd,
  kMul,
  kSub,
  kDiv,
  kMax,
  kMin,
  kRelu,
  kClip,
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool2d,
  kSoftmax,
  kConcat,
  kReshape,
  kBatchNorm,
  kPad,
  kQuantize,
  kDequantize,
  kRequantize,
};

const char* NeuronOpTypeName(NeuronOpType type);

/// Scalar/parameter attributes of a Neuron operation. NNAPI passes these as
/// scalar operands; a typed struct is the C++-friendly equivalent.
struct NeuronOpAttrs {
  std::vector<std::int64_t> strides{1, 1};
  std::vector<std::int64_t> padding{0, 0};
  std::vector<std::int64_t> dilation{1, 1};
  std::int64_t groups = 1;
  std::vector<std::int64_t> pool_size{1, 1};
  bool count_include_pad = false;
  int axis = 1;
  float alpha = 0.0f;
  float clip_min = 0.0f;
  float clip_max = 0.0f;
  float epsilon = 1e-5f;
  std::vector<std::int64_t> newshape;
  std::vector<std::int64_t> pad_before;
  std::vector<std::int64_t> pad_after;
  double pad_value = 0.0;
};

enum class OperandKind : std::uint8_t {
  kInput,      ///< model input, bound at execution time
  kConstant,   ///< weights/bias captured at build time
  kTemporary,  ///< intermediate tensor
};

struct Operand {
  std::string name;
  Shape shape;
  DType dtype = DType::kFloat32;
  /// Tensor-oriented quantization parameters (valid for quantized tensors).
  QuantParams quant;
  OperandKind kind = OperandKind::kTemporary;
  NDArray data;  ///< defined only for kConstant

  std::int64_t SizeBytes() const {
    return shape.NumElements() * static_cast<std::int64_t>(DTypeBytes(dtype));
  }
};

using OperandId = int;

struct Operation {
  NeuronOpType type = NeuronOpType::kConv2d;
  NeuronOpAttrs attrs;
  std::vector<OperandId> inputs;
  std::vector<OperandId> outputs;
};

/// A complete Neuron model (one partitioned subgraph, or a whole network in
/// the NeuroPilot-only flow).
class NeuronModel {
 public:
  OperandId AddOperand(Operand operand);
  /// Convenience for constants: captures shape/dtype/quant from the array.
  OperandId AddConstant(const std::string& name, NDArray data);

  void AddOperation(Operation operation);

  void SetModelInputs(std::vector<OperandId> inputs) { model_inputs_ = std::move(inputs); }
  void SetModelOutputs(std::vector<OperandId> outputs) { model_outputs_ = std::move(outputs); }

  const std::vector<Operand>& operands() const { return operands_; }
  const std::vector<Operation>& operations() const { return operations_; }
  const std::vector<OperandId>& model_inputs() const { return model_inputs_; }
  const std::vector<OperandId>& model_outputs() const { return model_outputs_; }

  Operand& operand(OperandId id);
  const Operand& operand(OperandId id) const;

  /// Structural validation: operand ids in range, operations topologically
  /// ordered (every input produced before use or input/constant), outputs
  /// produced exactly once. Throws kCompileError on violations.
  void Validate() const;

  std::string ToString() const;

 private:
  std::vector<Operand> operands_;
  std::vector<Operation> operations_;
  std::vector<OperandId> model_inputs_;
  std::vector<OperandId> model_outputs_;
};

}  // namespace neuron
}  // namespace tnp
