// Execution Planner — NeuroPilot's device-assignment stage.
//
// Given a NeuronModel and the enabled target devices, assigns every
// operation to a device. The greedy policy walks operations in topological
// order and picks, per op, the eligible device minimizing
//     op_cost(device) + transfer cost of inputs not yet resident there,
// which naturally keeps chains on one device and offloads MAC-heavy ops to
// the APU while leaving APU-unsupported ops on the CPU.
//
// An op supported by *no* enabled device is a hard compile error
// (kUnsupportedOp) — in the NeuroPilot-only flow this is what produces the
// paper's missing Figure-4/6 bars.
#pragma once

#include <vector>

#include "neuron/desc.h"
#include "neuron/support_matrix.h"
#include "sim/device.h"

namespace tnp {
namespace neuron {

struct ExecutionPlan {
  /// Device of operations[i].
  std::vector<sim::DeviceKind> placement;
  /// Planner's own latency estimate (microseconds, incl. transfers).
  double estimated_us = 0.0;
};

enum class PlannerPolicy {
  kGreedyCost,   ///< cost-aware greedy (default, described above)
  kFirstDevice,  ///< naive: first eligible enabled device (ablation baseline)
  /// Dynamic-programming lookahead over the operation sequence: minimizes
  /// total (compute + transfer) time over all device assignments, treating
  /// the model as a chain keyed by where the "live frontier" resides. This
  /// is the "harder computation scheduling algorithm ... consider the I/O
  /// time while transferring data between targets" the paper defers to
  /// future work (Section 5.1), at operation granularity.
  kDynamic,
};

ExecutionPlan PlanExecution(const NeuronModel& model, const TargetConfig& target,
                            const sim::Testbed& testbed,
                            PlannerPolicy policy = PlannerPolicy::kGreedyCost);

/// Sequential-execution time estimate of an arbitrary placement, using the
/// same residence/transfer accounting as the Neuron runtime (excluding the
/// fixed invocation overhead). Shared by the planner policies so their
/// estimates are comparable.
double EstimatePlanUs(const NeuronModel& model, const std::vector<sim::DeviceKind>& placement,
                      const sim::Testbed& testbed);

}  // namespace neuron
}  // namespace tnp
