// Neuron Runtime — executes a compiled NeuronPackage.
//
// Numerics run on the host through the shared kernel library (dispatching
// the int8 kernels when operands carry quantized dtypes); time is accounted
// against the plan's devices through the analytic cost model, including
// CPU<->APU DMA transfers and a fixed per-invocation dispatch overhead.
// That overhead is what makes "a model partitioned into too many subgraphs"
// slow — the paper's Section 5.1 observation about the anti-spoofing model.
#pragma once

#include <vector>

#include "neuron/compiler.h"
#include "sim/timeline.h"

namespace tnp {
namespace neuron {

/// Fixed cost of entering the Neuron runtime once (session dispatch, command
/// buffer setup). Paid per package invocation.
inline constexpr double kInvocationOverheadUs = 15.0;

class NeuronRuntime {
 public:
  /// Execute `package` on `inputs` (order matches model_inputs()).
  /// When `execute_numerics` is false, no kernels run and the returned
  /// vector is empty — only `clock` is advanced (used for full-scale
  /// latency simulation). `clock` may be null.
  static std::vector<NDArray> Execute(const NeuronPackage& package,
                                      const std::vector<NDArray>& inputs,
                                      sim::SimClock* clock, bool execute_numerics = true);
};

}  // namespace neuron
}  // namespace tnp
