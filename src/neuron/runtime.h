// Neuron Runtime — executes a compiled NeuronPackage.
//
// Numerics run on the host through the shared kernel library (dispatching
// the int8 kernels when operands carry quantized dtypes); time is accounted
// against the plan's devices through the analytic cost model, including
// CPU<->APU DMA transfers and a fixed per-invocation dispatch overhead.
// That overhead is what makes "a model partitioned into too many subgraphs"
// slow — the paper's Section 5.1 observation about the anti-spoofing model.
#pragma once

#include <atomic>
#include <vector>

#include "neuron/compiler.h"
#include "sim/timeline.h"
#include "support/arena.h"

namespace tnp {
namespace neuron {

/// Fixed cost of entering the Neuron runtime once (session dispatch, command
/// buffer setup). Paid per package invocation.
inline constexpr double kInvocationOverheadUs = 15.0;

/// Per-caller execution state of one package: the arena backing its memory
/// plan plus pre-materialized operand views into it. Creating a session
/// allocates once; every subsequent Execute against it runs with zero tensor
/// allocations. Not thread-safe — one session per executing thread at a
/// time; Execute enforces this checkout/checkin discipline with an
/// in-use guard (session pools hand sessions out for exclusive use, and a
/// violated guard means two executors shared one lease).
///
/// Outputs produced through a session are views into its arena: contents
/// stay valid until the session's next Execute (the views keep the arena
/// bytes alive even after the session is destroyed).
class NeuronExecutionSession {
 public:
  explicit NeuronExecutionSession(NeuronPackagePtr package);

  const NeuronPackagePtr& package() const { return package_; }
  std::int64_t arena_bytes() const { return package_->memory.arena_bytes; }

 private:
  friend class NeuronRuntime;
  NeuronPackagePtr package_;
  support::Arena arena_;
  /// Indexed by OperandId; defined only for kArena-planned operands.
  std::vector<NDArray> views_;
  /// Set for the duration of an Execute against this session.
  std::atomic<bool> in_use_{false};
};

class NeuronRuntime {
 public:
  /// Execute `package` on `inputs` (order matches model_inputs()).
  /// When `execute_numerics` is false, no kernels run and the returned
  /// vector is empty — only `clock` is advanced (used for full-scale
  /// latency simulation). `clock` may be null.
  ///
  /// With a `session` (created for the same package), every temporary
  /// operand lives in the session's pre-planned arena and the run performs
  /// no tensor allocations; without one, each operand is freshly allocated
  /// (the legacy path, kept for differential testing).
  static std::vector<NDArray> Execute(const NeuronPackage& package,
                                      const std::vector<NDArray>& inputs,
                                      sim::SimClock* clock, bool execute_numerics = true,
                                      NeuronExecutionSession* session = nullptr);
};

}  // namespace neuron
}  // namespace tnp
