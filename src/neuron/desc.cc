#include "neuron/desc.h"

namespace tnp {
namespace neuron {

namespace {

sim::OpCategory CategoryOf(NeuronOpType type) {
  switch (type) {
    case NeuronOpType::kConv2d: return sim::OpCategory::kConv;
    case NeuronOpType::kFullyConnected: return sim::OpCategory::kDense;
    case NeuronOpType::kMaxPool2d:
    case NeuronOpType::kAvgPool2d:
    case NeuronOpType::kGlobalAvgPool2d:
      return sim::OpCategory::kPool;
    case NeuronOpType::kSoftmax: return sim::OpCategory::kSoftmax;
    case NeuronOpType::kConcat:
    case NeuronOpType::kReshape:
    case NeuronOpType::kPad:
      return sim::OpCategory::kDataMove;
    case NeuronOpType::kQuantize:
    case NeuronOpType::kDequantize:
    case NeuronOpType::kRequantize:
      return sim::OpCategory::kQuantize;
    default:
      return sim::OpCategory::kElementwise;
  }
}

}  // namespace

sim::OpDesc DescribeOperation(const NeuronModel& model, const Operation& op) {
  sim::OpDesc desc;
  desc.category = CategoryOf(op.type);
  desc.name = NeuronOpTypeName(op.type);

  for (const OperandId id : op.inputs) {
    const Operand& operand = model.operand(id);
    if (operand.kind == OperandKind::kConstant) {
      desc.weight_bytes += operand.SizeBytes();
    } else {
      desc.input_bytes += operand.SizeBytes();
    }
  }
  for (const OperandId id : op.outputs) {
    desc.output_bytes += model.operand(id).SizeBytes();
    desc.int8 = desc.int8 || model.operand(id).dtype == DType::kInt8;
  }

  if (op.type == NeuronOpType::kConv2d && op.inputs.size() >= 2 && !op.outputs.empty()) {
    const Operand& weight = model.operand(op.inputs[1]);
    const Operand& out = model.operand(op.outputs[0]);
    if (weight.shape.rank() == 4) {
      desc.macs = out.shape.NumElements() * weight.shape[1] * weight.shape[2] * weight.shape[3];
    }
  } else if (op.type == NeuronOpType::kFullyConnected && op.inputs.size() >= 2 &&
             !op.outputs.empty()) {
    const Operand& weight = model.operand(op.inputs[1]);
    const Operand& out = model.operand(op.outputs[0]);
    if (weight.shape.rank() == 2) {
      desc.macs = out.shape.NumElements() * weight.shape[1];
    }
  }
  return desc;
}

}  // namespace neuron
}  // namespace tnp
