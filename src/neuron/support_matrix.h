// NeuroPilot backend support matrices.
//
// Two layers of support exist, and the distinction drives the paper's
// missing NeuroPilot-only bars (Figures 4 and 6):
//  * Whether an operator exists in Neuron IR at all is decided by the
//    Relay->Neuron op-handler dictionary in core/ (a Relay op with no
//    handler can never enter a NeuroPilot partition).
//  * Whether a *device* can run a Neuron op is decided here: the vendor CPU
//    kernels cover every Neuron op; the APU covers the tensor-heavy subset
//    (no SUB/DIV/MIN/MAX, no PAD).
#pragma once

#include "neuron/ir.h"
#include "sim/device.h"

namespace tnp {
namespace neuron {

/// Can `device` execute `type`? kTvmCpu is not a Neuron device and supports
/// nothing here.
bool DeviceSupports(sim::DeviceKind device, NeuronOpType type);

/// Which NeuroPilot devices participate in compilation/execution.
struct TargetConfig {
  bool use_cpu = true;
  bool use_apu = false;

  static TargetConfig CpuOnly() { return {true, false}; }
  static TargetConfig ApuOnly() { return {false, true}; }
  static TargetConfig CpuApu() { return {true, true}; }

  /// Parse "cpu", "apu", "cpu,apu" (order-insensitive).
  static TargetConfig FromString(const std::string& text);

  std::vector<sim::DeviceKind> Devices() const;
  std::string ToString() const;

  bool operator==(const TargetConfig& other) const {
    return use_cpu == other.use_cpu && use_apu == other.use_apu;
  }
};

}  // namespace neuron
}  // namespace tnp
