// Cost descriptors for Neuron operations (feeds the shared sim::CostModel).
#pragma once

#include "neuron/ir.h"
#include "sim/cost_model.h"

namespace tnp {
namespace neuron {

/// Build the device-independent cost descriptor of one Neuron operation.
sim::OpDesc DescribeOperation(const NeuronModel& model, const Operation& operation);

}  // namespace neuron
}  // namespace tnp
