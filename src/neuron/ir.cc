#include "neuron/ir.h"

#include <sstream>
#include <unordered_set>

#include "support/logging.h"

namespace tnp {
namespace neuron {

const char* NeuronOpTypeName(NeuronOpType type) {
  switch (type) {
    case NeuronOpType::kConv2d: return "CONV_2D";
    case NeuronOpType::kFullyConnected: return "FULLY_CONNECTED";
    case NeuronOpType::kAdd: return "ADD";
    case NeuronOpType::kMul: return "MUL";
    case NeuronOpType::kSub: return "SUB";
    case NeuronOpType::kDiv: return "DIV";
    case NeuronOpType::kMax: return "MAXIMUM";
    case NeuronOpType::kMin: return "MINIMUM";
    case NeuronOpType::kRelu: return "RELU";
    case NeuronOpType::kClip: return "CLIP";
    case NeuronOpType::kMaxPool2d: return "MAX_POOL_2D";
    case NeuronOpType::kAvgPool2d: return "AVERAGE_POOL_2D";
    case NeuronOpType::kGlobalAvgPool2d: return "GLOBAL_AVERAGE_POOL_2D";
    case NeuronOpType::kSoftmax: return "SOFTMAX";
    case NeuronOpType::kConcat: return "CONCATENATION";
    case NeuronOpType::kReshape: return "RESHAPE";
    case NeuronOpType::kBatchNorm: return "BATCH_NORM";
    case NeuronOpType::kPad: return "PAD";
    case NeuronOpType::kQuantize: return "QUANTIZE";
    case NeuronOpType::kDequantize: return "DEQUANTIZE";
    case NeuronOpType::kRequantize: return "REQUANTIZE";
  }
  return "?";
}

OperandId NeuronModel::AddOperand(Operand operand) {
  operands_.push_back(std::move(operand));
  return static_cast<OperandId>(operands_.size()) - 1;
}

OperandId NeuronModel::AddConstant(const std::string& name, NDArray data) {
  Operand operand;
  operand.name = name;
  operand.shape = data.shape();
  operand.dtype = data.dtype();
  operand.quant = data.quant();
  operand.kind = OperandKind::kConstant;
  operand.data = std::move(data);
  return AddOperand(std::move(operand));
}

void NeuronModel::AddOperation(Operation operation) {
  operations_.push_back(std::move(operation));
}

Operand& NeuronModel::operand(OperandId id) {
  TNP_CHECK(id >= 0 && id < static_cast<OperandId>(operands_.size()));
  return operands_[static_cast<std::size_t>(id)];
}

const Operand& NeuronModel::operand(OperandId id) const {
  TNP_CHECK(id >= 0 && id < static_cast<OperandId>(operands_.size()));
  return operands_[static_cast<std::size_t>(id)];
}

void NeuronModel::Validate() const {
  const auto check_id = [&](OperandId id, const char* what) {
    if (id < 0 || id >= static_cast<OperandId>(operands_.size())) {
      TNP_THROW(kCompileError) << "NeuronModel: " << what << " operand id " << id
                               << " out of range";
    }
  };

  std::unordered_set<OperandId> produced;
  for (const OperandId id : model_inputs_) {
    check_id(id, "model input");
    if (operand(id).kind != OperandKind::kInput) {
      TNP_THROW(kCompileError) << "NeuronModel: model input operand " << id
                               << " is not of kind kInput";
    }
    produced.insert(id);
  }
  for (OperandId id = 0; id < static_cast<OperandId>(operands_.size()); ++id) {
    if (operand(id).kind == OperandKind::kConstant) {
      if (!operand(id).data.defined()) {
        TNP_THROW(kCompileError) << "NeuronModel: constant operand " << id << " has no data";
      }
      produced.insert(id);
    }
  }

  for (std::size_t op_index = 0; op_index < operations_.size(); ++op_index) {
    const Operation& op = operations_[op_index];
    for (const OperandId id : op.inputs) {
      check_id(id, "operation input");
      if (produced.count(id) == 0) {
        TNP_THROW(kCompileError) << "NeuronModel: operation " << op_index << " ("
                                 << NeuronOpTypeName(op.type) << ") reads operand " << id
                                 << " before it is produced (not topologically ordered)";
      }
    }
    for (const OperandId id : op.outputs) {
      check_id(id, "operation output");
      if (!produced.insert(id).second) {
        TNP_THROW(kCompileError) << "NeuronModel: operand " << id << " produced twice";
      }
    }
  }

  for (const OperandId id : model_outputs_) {
    check_id(id, "model output");
    if (produced.count(id) == 0) {
      TNP_THROW(kCompileError) << "NeuronModel: model output " << id << " never produced";
    }
  }
  if (model_outputs_.empty()) {
    TNP_THROW(kCompileError) << "NeuronModel: no model outputs";
  }
}

std::string NeuronModel::ToString() const {
  std::ostringstream os;
  os << "NeuronModel: " << operands_.size() << " operands, " << operations_.size()
     << " operations\n";
  for (std::size_t i = 0; i < operands_.size(); ++i) {
    const Operand& operand = operands_[i];
    os << "  %" << i << " " << operand.shape.ToString() << ":" << DTypeName(operand.dtype);
    if (operand.quant.valid) os << " q(" << operand.quant.ToString() << ")";
    switch (operand.kind) {
      case OperandKind::kInput: os << " [input]"; break;
      case OperandKind::kConstant: os << " [const]"; break;
      case OperandKind::kTemporary: break;
    }
    if (!operand.name.empty()) os << " \"" << operand.name << "\"";
    os << "\n";
  }
  for (const Operation& op : operations_) {
    os << "  " << NeuronOpTypeName(op.type) << "(";
    for (std::size_t i = 0; i < op.inputs.size(); ++i) os << (i ? ", %" : "%") << op.inputs[i];
    os << ") -> ";
    for (std::size_t i = 0; i < op.outputs.size(); ++i) os << (i ? ", %" : "%") << op.outputs[i];
    os << "\n";
  }
  return os.str();
}

}  // namespace neuron
}  // namespace tnp
