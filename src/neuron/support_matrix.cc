#include "neuron/support_matrix.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace tnp {
namespace neuron {

bool DeviceSupports(sim::DeviceKind device, NeuronOpType type) {
  switch (device) {
    case sim::DeviceKind::kTvmCpu:
      return false;
    case sim::DeviceKind::kNeuronCpu:
      return true;  // vendor CPU kernels cover the whole Neuron op set
    case sim::DeviceKind::kNeuronApu:
      switch (type) {
        case NeuronOpType::kConv2d:
        case NeuronOpType::kFullyConnected:
        case NeuronOpType::kAdd:
        case NeuronOpType::kMul:
        case NeuronOpType::kRelu:
        case NeuronOpType::kClip:
        case NeuronOpType::kMaxPool2d:
        case NeuronOpType::kAvgPool2d:
        case NeuronOpType::kGlobalAvgPool2d:
        case NeuronOpType::kSoftmax:
        case NeuronOpType::kConcat:
        case NeuronOpType::kReshape:
        case NeuronOpType::kBatchNorm:
        case NeuronOpType::kQuantize:
        case NeuronOpType::kDequantize:
        case NeuronOpType::kRequantize:
          return true;
        case NeuronOpType::kSub:
        case NeuronOpType::kDiv:
        case NeuronOpType::kMax:
        case NeuronOpType::kMin:
        case NeuronOpType::kPad:
          return false;
      }
      return false;
  }
  return false;
}

TargetConfig TargetConfig::FromString(const std::string& text) {
  TargetConfig config{false, false};
  for (const auto& part : support::Split(text, ',')) {
    const std::string token(support::Trim(part));
    if (token == "cpu") {
      config.use_cpu = true;
    } else if (token == "apu") {
      config.use_apu = true;
    } else if (!token.empty()) {
      TNP_THROW(kInvalidArgument) << "unknown NeuroPilot target '" << token << "'";
    }
  }
  if (!config.use_cpu && !config.use_apu) {
    TNP_THROW(kInvalidArgument) << "NeuroPilot target config '" << text << "' enables no device";
  }
  return config;
}

std::vector<sim::DeviceKind> TargetConfig::Devices() const {
  std::vector<sim::DeviceKind> devices;
  if (use_cpu) devices.push_back(sim::DeviceKind::kNeuronCpu);
  if (use_apu) devices.push_back(sim::DeviceKind::kNeuronApu);
  return devices;
}

std::string TargetConfig::ToString() const {
  if (use_cpu && use_apu) return "cpu,apu";
  if (use_cpu) return "cpu";
  return "apu";
}

}  // namespace neuron
}  // namespace tnp
