#include "neuron/compiler.h"

namespace tnp {
namespace neuron {

int NeuronPackage::NumOpsOn(sim::DeviceKind device) const {
  int count = 0;
  for (const sim::DeviceKind d : plan.placement) {
    if (d == device) ++count;
  }
  return count;
}

NeuronPackagePtr NeuronCompiler::Compile(NeuronModel model, const std::string& name) const {
  model.Validate();
  ExecutionPlan plan = PlanExecution(model, options_.target, *options_.testbed, options_.policy);
  auto package = std::make_shared<NeuronPackage>();
  package->name = name;
  package->model = std::move(model);
  package->plan = std::move(plan);
  package->options = options_;
  return package;
}

}  // namespace neuron
}  // namespace tnp
