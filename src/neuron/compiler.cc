#include "neuron/compiler.h"

#include <algorithm>
#include <limits>

#include "kernels/conv.h"
#include "support/memplan.h"
#include "support/trace.h"
#include "tune/db.h"

namespace tnp {
namespace neuron {

namespace {

/// Liveness + greedy best-fit storage assignment over the (topologically
/// ordered, validated) operation list. Model inputs stay caller-bound,
/// constants reference the captured weights; every temporary gets an arena
/// range whose storage is recycled after its last reading operation.
NeuronMemoryPlan PlanOperandStorage(const NeuronModel& model) {
  const std::size_t n_operands = model.operands().size();
  const int n_ops = static_cast<int>(model.operations().size());

  std::vector<int> last_use(n_operands, -1);
  for (int i = 0; i < n_ops; ++i) {
    for (const OperandId id : model.operations()[static_cast<std::size_t>(i)].inputs) {
      last_use[static_cast<std::size_t>(id)] = i;
    }
  }
  for (const OperandId id : model.model_outputs()) {
    last_use[static_cast<std::size_t>(id)] = std::numeric_limits<int>::max();
  }

  NeuronMemoryPlan plan;
  plan.operands.resize(n_operands);
  for (std::size_t id = 0; id < n_operands; ++id) {
    const Operand& operand = model.operands()[id];
    plan.operands[id].bytes = operand.SizeBytes();
    if (operand.kind == OperandKind::kInput) {
      plan.operands[id].kind = OperandStorage::Kind::kExternal;
    } else if (operand.kind == OperandKind::kConstant) {
      plan.operands[id].kind = OperandStorage::Kind::kConstant;
    }
  }

  support::LinearMemoryPlanner planner;
  for (int i = 0; i < n_ops; ++i) {
    planner.BeginStep(i);
    for (const OperandId id : model.operations()[static_cast<std::size_t>(i)].outputs) {
      const Operand& operand = model.operand(id);
      if (operand.kind != OperandKind::kTemporary) continue;
      const int lu = std::max(last_use[static_cast<std::size_t>(id)], i);
      const int region = planner.Allocate(operand.SizeBytes(), lu);
      plan.operands[static_cast<std::size_t>(id)].kind = OperandStorage::Kind::kArena;
      plan.operands[static_cast<std::size_t>(id)].offset = planner.region(region).offset;
    }
  }
  plan.arena_bytes = planner.arena_bytes();
  plan.planned_bytes = planner.total_bytes();
  return plan;
}

/// Pack constant conv / fully-connected weights into GEMM panel layout once
/// at compile time. Keyed by the constant's data pointer plus the chosen
/// GEMM config, so operations sharing one weight operand (and tuned config)
/// share one pack. When a tuning DB is active (tune::SetActiveTuningDb) the
/// per-workload winning config is consulted; misses fall back to defaults.
void PrepackWeights(NeuronPackage* package) {
  const NeuronModel& model = package->model;
  package->op_packed_weights.resize(model.operations().size());
  for (std::size_t i = 0; i < model.operations().size(); ++i) {
    const Operation& op = model.operations()[i];
    const bool conv = op.type == NeuronOpType::kConv2d;
    const bool fc = op.type == NeuronOpType::kFullyConnected;
    if ((!conv && !fc) || op.inputs.size() < 2 || op.outputs.empty()) continue;
    const Operand& weight = model.operand(op.inputs[1]);
    const Operand& out = model.operand(op.outputs[0]);
    if (weight.kind != OperandKind::kConstant || !weight.data.defined()) continue;
    const bool int8 = weight.dtype == DType::kInt8;
    if (!int8 && weight.dtype != DType::kFloat32) continue;

    tune::Workload workload;
    workload.dtype = weight.dtype;
    std::int64_t groups = 1;
    if (conv) {
      if (weight.shape.rank() != 4 || out.shape.rank() != 4) continue;
      groups = op.attrs.groups;
      if (groups <= 0 || weight.shape[0] % groups != 0) continue;
      if (!kernels::Conv2DUsesPackedWeights(weight.shape[0] / groups)) continue;
      workload.op = "conv2d";
      workload.m = weight.shape[0] / groups;
      workload.k = weight.shape[1] * weight.shape[2] * weight.shape[3];
      workload.n = out.shape[2] * out.shape[3];
    } else {
      if (weight.shape.rank() != 2 || out.shape.rank() != 2) continue;
      workload.op = "dense";
      workload.m = out.shape[0];
      workload.k = weight.shape[1];
      workload.n = weight.shape[0];
    }
    if (workload.m <= 0 || workload.k <= 0 || workload.n <= 0) continue;
    const kernels::GemmConfig config = tune::TunedConfigFor(workload);

    const NDArray& data = weight.data;
    const void* identity = int8 ? static_cast<const void*>(data.Data<std::int8_t>())
                                : static_cast<const void*>(data.Data<float>());
    std::string key = (conv ? "conv/" : "fc/");
    key += int8 ? "s8/" : "f32/";
    key += std::to_string(groups) + "/" +
           std::to_string(reinterpret_cast<std::uintptr_t>(identity)) + "/" +
           config.ToString();
    package->op_packed_weights[i] = package->packed_weights.GetOrPack(key, [&] {
      if (conv) {
        return int8 ? kernels::PackConvWeightsS8(data, groups, config)
                    : kernels::PackConvWeightsF32(data, groups, config);
      }
      return int8 ? kernels::PackDenseWeightsS8(data, config)
                  : kernels::PackDenseWeightsF32(data, config);
    });
  }
}

}  // namespace

int NeuronPackage::NumOpsOn(sim::DeviceKind device) const {
  int count = 0;
  for (const sim::DeviceKind d : plan.placement) {
    if (d == device) ++count;
  }
  return count;
}

NeuronPackagePtr NeuronCompiler::Compile(NeuronModel model, const std::string& name) const {
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("neuron.compile", std::string("Compile:") + name,
                support::TraceArg("ops", static_cast<int>(model.operations().size())));
  }
  model.Validate();
  ExecutionPlan plan = PlanExecution(model, options_.target, *options_.testbed, options_.policy);
  if (scope.armed()) {
    int apu_ops = 0;
    for (const sim::DeviceKind d : plan.placement) {
      if (sim::ResourceOf(d) == sim::Resource::kApu) ++apu_ops;
    }
    scope.AddArg(support::TraceArg("apu_ops", apu_ops));
    scope.AddArg(support::TraceArg("estimated_us", plan.estimated_us));
  }
  auto package = std::make_shared<NeuronPackage>();
  package->name = name;
  package->model = std::move(model);
  package->plan = std::move(plan);
  package->memory = PlanOperandStorage(package->model);
  package->options = options_;
  package->tuning_fingerprint = tune::ActiveTuningFingerprint();
  if (options_.prepack_weights) PrepackWeights(package.get());
  if (scope.armed()) {
    scope.AddArg(support::TraceArg("arena_bytes", package->memory.arena_bytes));
  }
  return package;
}

}  // namespace neuron
}  // namespace tnp
