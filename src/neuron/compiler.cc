#include "neuron/compiler.h"

#include "support/trace.h"

namespace tnp {
namespace neuron {

int NeuronPackage::NumOpsOn(sim::DeviceKind device) const {
  int count = 0;
  for (const sim::DeviceKind d : plan.placement) {
    if (d == device) ++count;
  }
  return count;
}

NeuronPackagePtr NeuronCompiler::Compile(NeuronModel model, const std::string& name) const {
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("neuron.compile", std::string("Compile:") + name,
                support::TraceArg("ops", static_cast<int>(model.operations().size())));
  }
  model.Validate();
  ExecutionPlan plan = PlanExecution(model, options_.target, *options_.testbed, options_.policy);
  if (scope.armed()) {
    int apu_ops = 0;
    for (const sim::DeviceKind d : plan.placement) {
      if (sim::ResourceOf(d) == sim::Resource::kApu) ++apu_ops;
    }
    scope.AddArg(support::TraceArg("apu_ops", apu_ops));
    scope.AddArg(support::TraceArg("estimated_us", plan.estimated_us));
  }
  auto package = std::make_shared<NeuronPackage>();
  package->name = name;
  package->model = std::move(model);
  package->plan = std::move(plan);
  package->options = options_;
  return package;
}

}  // namespace neuron
}  // namespace tnp
