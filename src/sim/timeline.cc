#include "sim/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.h"
#include "support/string_util.h"

namespace tnp {
namespace sim {

void SimClock::AddOp(const OpDesc& op, DeviceKind device, double micros) {
  total_us_ += micros;
  ++num_ops_;
  per_device_us_[device] += micros;
  per_category_us_[OpCategoryName(op.category)] += micros;
}

void SimClock::AddTransfer(std::int64_t bytes, double micros) {
  (void)bytes;
  total_us_ += micros;
  transfer_us_ += micros;
  ++num_transfers_;
  per_category_us_["transfer"] += micros;
}

void SimClock::Reset() { *this = SimClock(); }

void SimClock::Merge(const SimClock& other) {
  total_us_ += other.total_us_;
  transfer_us_ += other.transfer_us_;
  num_ops_ += other.num_ops_;
  num_transfers_ += other.num_transfers_;
  for (const auto& [device, us] : other.per_device_us_) per_device_us_[device] += us;
  for (const auto& [category, us] : other.per_category_us_) per_category_us_[category] += us;
}

std::string SimClock::Summary() const {
  std::ostringstream os;
  os << support::FormatDouble(total_us_ / 1000.0, 3) << " ms over " << num_ops_ << " ops";
  if (num_transfers_ > 0) {
    os << " (+" << num_transfers_ << " transfers, "
       << support::FormatDouble(transfer_us_ / 1000.0, 3) << " ms)";
  }
  for (const auto& [device, us] : per_device_us_) {
    os << " | " << DeviceKindName(device) << " " << support::FormatDouble(us / 1000.0, 3)
       << " ms";
  }
  return os.str();
}

double Timeline::Schedule(const std::string& label, Resource resource, double ready_us,
                          double duration_us) {
  TNP_CHECK_GE(duration_us, 0.0);
  double& free_at = resource_free_[static_cast<int>(resource)];
  const double start = std::max(ready_us, free_at);
  const double end = start + duration_us;
  free_at = end;
  spans_.push_back(Span{label, resource, start, end});
  return end;
}

double Timeline::ScheduleMulti(const std::string& label, const std::vector<Resource>& resources,
                               double ready_us, double duration_us) {
  TNP_CHECK(!resources.empty());
  TNP_CHECK_GE(duration_us, 0.0);
  double start = ready_us;
  for (const Resource resource : resources) {
    start = std::max(start, resource_free_[static_cast<int>(resource)]);
  }
  const double end = start + duration_us;
  for (const Resource resource : resources) {
    resource_free_[static_cast<int>(resource)] = end;
    spans_.push_back(Span{label, resource, start, end});
  }
  return end;
}

double Timeline::makespan_us() const {
  double end = 0.0;
  for (const auto& span : spans_) end = std::max(end, span.end_us);
  return end;
}

double Timeline::ResourceBusyUs(Resource resource) const {
  double busy = 0.0;
  for (const auto& span : spans_) {
    if (span.resource == resource) busy += span.end_us - span.start_us;
  }
  return busy;
}

std::string Timeline::RenderAscii(int width) const {
  const double makespan = makespan_us();
  std::ostringstream os;
  if (makespan <= 0.0 || spans_.empty()) return "(empty timeline)\n";
  const double us_per_col = makespan / width;

  for (int r = 0; r < kNumResources; ++r) {
    const auto resource = static_cast<Resource>(r);
    std::string row(static_cast<std::size_t>(width), '.');
    char tag = 'a';
    std::ostringstream legend;
    for (const auto& span : spans_) {
      if (span.resource != resource) continue;
      const int c0 = std::min(width - 1, static_cast<int>(span.start_us / us_per_col));
      const int c1 = std::max(c0 + 1, std::min(width, static_cast<int>(std::ceil(span.end_us / us_per_col))));
      for (int c = c0; c < c1; ++c) row[static_cast<std::size_t>(c)] = tag;
      legend << "  " << tag << "=" << span.label;
      tag = tag == 'z' ? 'a' : static_cast<char>(tag + 1);
    }
    os << ResourceName(resource) << " |" << row << "|" << legend.str() << "\n";
  }
  os << "makespan: " << support::FormatDouble(makespan / 1000.0, 3) << " ms\n";
  return os.str();
}

}  // namespace sim
}  // namespace tnp
