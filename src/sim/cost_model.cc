#include "sim/cost_model.h"

#include <algorithm>

namespace tnp {
namespace sim {

const char* OpCategoryName(OpCategory category) {
  switch (category) {
    case OpCategory::kConv: return "conv";
    case OpCategory::kDense: return "dense";
    case OpCategory::kPool: return "pool";
    case OpCategory::kElementwise: return "elementwise";
    case OpCategory::kSoftmax: return "softmax";
    case OpCategory::kDataMove: return "datamove";
    case OpCategory::kQuantize: return "quantize";
  }
  return "?";
}

double CostModel::OpMicros(const OpDesc& op, DeviceKind device) const {
  const DeviceSpec& spec = testbed_.Spec(device);

  // Utilization ramp: u in (0,1], 0.5 at half_peak_macs.
  const double macs = static_cast<double>(std::max<std::int64_t>(op.macs, 0));
  const double utilization = macs > 0.0 ? macs / (macs + spec.half_peak_macs) : 1.0;

  const double peak_mac_per_us =
      (op.int8 ? spec.int8_gops : spec.fp32_gflops) * 1e3;  // GOPS -> MAC/us
  double compute_us = 0.0;
  if (macs > 0.0) {
    compute_us = macs / (peak_mac_per_us * std::max(utilization, 1e-3));
  }

  const double bytes = static_cast<double>(op.input_bytes + op.output_bytes + op.weight_bytes);
  double memory_us = bytes / (spec.mem_bandwidth_gbps * 1e3);  // GB/s -> bytes/us

  // Transcendental-heavy categories are effectively slower per byte.
  if (op.category == OpCategory::kSoftmax) memory_us *= 4.0;
  if (op.category == OpCategory::kQuantize) memory_us *= 1.5;

  return spec.launch_overhead_us + std::max(compute_us, memory_us);
}

double CostModel::TransferMicros(std::int64_t bytes, DeviceKind from, DeviceKind to) const {
  if (ResourceOf(from) == ResourceOf(to)) return 0.0;
  return testbed_.transfer_latency_us +
         static_cast<double>(bytes) / (testbed_.transfer_gbps * 1e3);
}

}  // namespace sim
}  // namespace tnp
