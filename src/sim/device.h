// Simulated devices of the paper's testbed (OPPO Reno4 Z 5G, MediaTek
// Dimensity 800): the mobile CPU (4x Cortex-A76 + 4x Cortex-A55) reached
// either through TVM's own generated kernels or through NeuroPilot's
// vendor-tuned kernels, and the MediaTek APU 3.0 AI accelerator.
//
// The same physical CPU appears twice (kTvmCpu vs kNeuronCpu) with different
// effective throughput: the paper observes that TVM-only inference is slower
// than NeuroPilot's CPU backend, which reflects vendor kernel tuning rather
// than different silicon. Modeling them as two DeviceSpecs reproduces that
// observation without pretending they are different chips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tnp {
namespace sim {

enum class DeviceKind : std::uint8_t {
  kTvmCpu,     ///< mobile CPU running TVM-generated kernels
  kNeuronCpu,  ///< mobile CPU running NeuroPilot vendor kernels
  kNeuronApu,  ///< MediaTek APU 3.0 AI accelerator
};

const char* DeviceKindName(DeviceKind kind);

/// Analytic performance description of one device.
struct DeviceSpec {
  DeviceKind kind = DeviceKind::kTvmCpu;
  std::string name;

  double fp32_gflops = 1.0;      ///< peak float32 multiply-add throughput
  double int8_gops = 1.0;        ///< peak int8 multiply-add throughput
  double mem_bandwidth_gbps = 1.0;

  /// Fixed per-operator dispatch cost in microseconds (graph-node launch,
  /// command submission for the APU).
  double launch_overhead_us = 10.0;

  /// MAC count at which the device reaches ~50% of peak; models the ramp
  /// where small operators cannot saturate wide execution units. The APU
  /// has a much larger ramp than the CPUs, so tiny layers prefer the CPU —
  /// this is what creates the paper's per-model best-target differences.
  double half_peak_macs = 1.0e5;
};

/// One resource of the phone that schedulers must hold exclusively.
/// NeuroPilot's CPU backend and TVM both occupy the CPU resource.
enum class Resource : std::uint8_t { kCpu = 0, kApu = 1 };

inline constexpr int kNumResources = 2;

const char* ResourceName(Resource resource);

Resource ResourceOf(DeviceKind kind);

/// The simulated testbed: device specs plus host<->APU transfer behaviour.
struct Testbed {
  DeviceSpec tvm_cpu;
  DeviceSpec neuron_cpu;
  DeviceSpec neuron_apu;

  /// DMA bandwidth between CPU-visible memory and APU-local memory.
  double transfer_gbps = 2.0;
  /// Fixed cost per transfer (driver round trip / cache maintenance).
  double transfer_latency_us = 30.0;

  const DeviceSpec& Spec(DeviceKind kind) const;

  /// Calibrated Dimensity 800 model (see DESIGN.md for rationale).
  static const Testbed& Dimensity800();
};

/// Table-2 style description of the simulated phone.
struct PhoneSpec {
  std::string os = "Android 11 (simulated)";
  std::string chipset = "MediaTek MT6873V Dimensity 800 (simulated)";
  std::string cpu = "4x2.0 GHz Cortex-A76 & 4x2.0 GHz Cortex-A55";
  std::string gpu = "Mali-G57 MC4 (not modeled)";
  std::string apu = "MediaTek APU 3.0";

  static const PhoneSpec& OppoReno4Z();
};

}  // namespace sim
}  // namespace tnp
