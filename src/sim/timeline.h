// Simulated-time accounting.
//
// SimClock accumulates sequential execution time and records per-device and
// per-category breakdowns. Timeline records named spans (used by the
// pipeline scheduler to produce Figure-5 style charts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace tnp {
namespace sim {

/// Sequential simulated clock with attribution.
class SimClock {
 public:
  void AddOp(const OpDesc& op, DeviceKind device, double micros);
  void AddTransfer(std::int64_t bytes, double micros);

  double total_us() const noexcept { return total_us_; }
  double transfer_us() const noexcept { return transfer_us_; }
  int num_ops() const noexcept { return num_ops_; }
  int num_transfers() const noexcept { return num_transfers_; }

  const std::map<DeviceKind, double>& per_device_us() const { return per_device_us_; }
  const std::map<std::string, double>& per_category_us() const { return per_category_us_; }

  void Reset();

  /// Merge another clock's accounting into this one (sequential composition).
  void Merge(const SimClock& other);

  std::string Summary() const;

 private:
  double total_us_ = 0.0;
  double transfer_us_ = 0.0;
  int num_ops_ = 0;
  int num_transfers_ = 0;
  std::map<DeviceKind, double> per_device_us_;
  std::map<std::string, double> per_category_us_;
};

/// One span on a resource timeline (for pipeline scheduling charts).
struct Span {
  std::string label;     ///< e.g. "obj-det[frame 3]"
  Resource resource = Resource::kCpu;
  double start_us = 0.0;
  double end_us = 0.0;
};

/// Resource-exclusive timeline builder: each resource runs one span at a
/// time; spans are placed at max(ready_time, resource_free_time).
class Timeline {
 public:
  /// Schedule a span of `duration_us` on `resource`, not before `ready_us`.
  /// Returns the span end time.
  double Schedule(const std::string& label, Resource resource, double ready_us,
                  double duration_us);

  /// Schedule a span that must hold several resources simultaneously
  /// (e.g. a CPU+APU model execution). Starts when all are free.
  double ScheduleMulti(const std::string& label, const std::vector<Resource>& resources,
                       double ready_us, double duration_us);

  const std::vector<Span>& spans() const { return spans_; }
  double makespan_us() const;
  double ResourceBusyUs(Resource resource) const;

  /// Render an ASCII Gantt chart (one row per resource).
  std::string RenderAscii(int width = 72) const;

 private:
  std::vector<Span> spans_;
  double resource_free_[kNumResources] = {0.0, 0.0};
};

}  // namespace sim
}  // namespace tnp
