// Analytic per-operator cost model.
//
// Every operator in the stack (whether executed by the TVM-side graph
// executor or by the Neuron runtime) is summarized as an OpDesc; the cost
// model prices an OpDesc on a DeviceSpec as
//
//   time = launch_overhead + max(compute_time, memory_time)
//
// where compute_time applies a utilization ramp so small operators cannot
// reach peak throughput. Transfers between the CPU address space and the APU
// are priced separately (bandwidth + fixed latency).
#pragma once

#include <cstdint>
#include <string>

#include "sim/device.h"

namespace tnp {
namespace sim {

enum class OpCategory : std::uint8_t {
  kConv,        ///< convolutions (mac-dominated)
  kDense,       ///< fully connected (mac-dominated)
  kPool,        ///< pooling (memory-dominated)
  kElementwise, ///< activations, binary ops (memory-dominated)
  kSoftmax,     ///< softmax / normalization (memory + transcendental)
  kDataMove,    ///< reshape/concat/slice/pad/transpose (pure memory)
  kQuantize,    ///< quantize/dequantize/requantize
};

const char* OpCategoryName(OpCategory category);

/// Device-independent description of one operator instance.
struct OpDesc {
  OpCategory category = OpCategory::kElementwise;
  std::string name;            ///< operator name for reports ("nn.conv2d")
  std::int64_t macs = 0;       ///< multiply-accumulate count (conv/dense)
  std::int64_t input_bytes = 0;
  std::int64_t output_bytes = 0;
  std::int64_t weight_bytes = 0;
  bool int8 = false;           ///< true when the op computes in int8
  /// Number of primitive ops folded into this one by operator fusion;
  /// a fused group pays launch overhead once instead of `fused_ops` times.
  int fused_ops = 1;
};

class CostModel {
 public:
  explicit CostModel(const Testbed& testbed) : testbed_(testbed) {}

  /// Microseconds to execute `op` on `device`.
  double OpMicros(const OpDesc& op, DeviceKind device) const;

  /// Microseconds to move `bytes` between two devices (0 when both map to
  /// the same resource, e.g. tvm-cpu <-> np-cpu share CPU memory).
  double TransferMicros(std::int64_t bytes, DeviceKind from, DeviceKind to) const;

  const Testbed& testbed() const { return testbed_; }

 private:
  const Testbed& testbed_;
};

}  // namespace sim
}  // namespace tnp
