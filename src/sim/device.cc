#include "sim/device.h"

#include "support/logging.h"

namespace tnp {
namespace sim {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kTvmCpu: return "tvm-cpu";
    case DeviceKind::kNeuronCpu: return "np-cpu";
    case DeviceKind::kNeuronApu: return "np-apu";
  }
  return "?";
}

const char* ResourceName(Resource resource) {
  switch (resource) {
    case Resource::kCpu: return "CPU";
    case Resource::kApu: return "APU";
  }
  return "?";
}

Resource ResourceOf(DeviceKind kind) {
  return kind == DeviceKind::kNeuronApu ? Resource::kApu : Resource::kCpu;
}

const DeviceSpec& Testbed::Spec(DeviceKind kind) const {
  switch (kind) {
    case DeviceKind::kTvmCpu: return tvm_cpu;
    case DeviceKind::kNeuronCpu: return neuron_cpu;
    case DeviceKind::kNeuronApu: return neuron_apu;
  }
  throw InternalError("unknown device kind");
}

const Testbed& Testbed::Dimensity800() {
  static const Testbed testbed = [] {
    Testbed t;
    // Mobile CPU through TVM-generated kernels: no vendor tuning, higher
    // per-node dispatch cost in the graph runtime.
    t.tvm_cpu = DeviceSpec{DeviceKind::kTvmCpu, "Dimensity800-CPU (TVM kernels)",
                           /*fp32_gflops=*/8.0, /*int8_gops=*/10.0,
                           /*mem_bandwidth_gbps=*/8.0, /*launch_overhead_us=*/40.0,
                           /*half_peak_macs=*/5.0e4};
    // The same CPU through NeuroPilot's hand-tuned NEON kernels.
    t.neuron_cpu = DeviceSpec{DeviceKind::kNeuronCpu, "Dimensity800-CPU (NeuroPilot)",
                              /*fp32_gflops=*/25.0, /*int8_gops=*/50.0,
                              /*mem_bandwidth_gbps=*/12.0, /*launch_overhead_us=*/10.0,
                              /*half_peak_macs=*/3.0e4};
    // APU 3.0: very high int8 throughput, good fp throughput, but large
    // per-op ramp and command submission overhead; needs DMA transfers.
    t.neuron_apu = DeviceSpec{DeviceKind::kNeuronApu, "MediaTek APU 3.0",
                              /*fp32_gflops=*/120.0, /*int8_gops=*/900.0,
                              /*mem_bandwidth_gbps=*/25.0, /*launch_overhead_us=*/25.0,
                              /*half_peak_macs=*/8.0e5};
    t.transfer_gbps = 2.0;
    t.transfer_latency_us = 30.0;
    return t;
  }();
  return testbed;
}

const PhoneSpec& PhoneSpec::OppoReno4Z() {
  static const PhoneSpec spec;
  return spec;
}

}  // namespace sim
}  // namespace tnp
