#include "core/flows.h"

#include <sstream>

#include "core/relay_to_neuron.h"
#include "neuron/runtime.h"
#include "relay/pass.h"
#include "relay/serializer.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "tune/db.h"

namespace tnp {
namespace core {

const char* FlowName(FlowKind flow) {
  switch (flow) {
    case FlowKind::kTvmOnly: return "TVM-only";
    case FlowKind::kByocCpu: return "BYOC(CPU)";
    case FlowKind::kByocApu: return "BYOC(APU)";
    case FlowKind::kByocCpuApu: return "BYOC(CPU+APU)";
    case FlowKind::kNpCpu: return "NP-only(CPU)";
    case FlowKind::kNpApu: return "NP-only(APU)";
    case FlowKind::kNpCpuApu: return "NP-only(CPU+APU)";
  }
  return "?";
}

std::vector<sim::Resource> FlowResources(FlowKind flow) {
  switch (flow) {
    case FlowKind::kTvmOnly:
    case FlowKind::kByocCpu:
    case FlowKind::kNpCpu:
      return {sim::Resource::kCpu};
    case FlowKind::kNpApu:
      return {sim::Resource::kApu};
    case FlowKind::kByocApu:
    case FlowKind::kByocCpuApu:
    case FlowKind::kNpCpuApu:
      return {sim::Resource::kCpu, sim::Resource::kApu};
  }
  return {sim::Resource::kCpu};
}

namespace {

/// Per-run observability shared by both session kinds: a "flow" span whose
/// sim_us argument carries the simulated latency, plus a per-flow histogram.
void RecordFlowRun(FlowKind flow, double sim_us) {
  support::metrics::Registry::Global()
      .GetHistogram(std::string("flow/") + FlowName(flow) + "/sim_us")
      .Record(sim_us);
}

neuron::TargetConfig TargetOf(FlowKind flow) {
  switch (flow) {
    case FlowKind::kByocCpu:
    case FlowKind::kNpCpu:
      return neuron::TargetConfig::CpuOnly();
    case FlowKind::kByocApu:
    case FlowKind::kNpApu:
      return neuron::TargetConfig::ApuOnly();
    default:
      return neuron::TargetConfig::CpuApu();
  }
}

/// TVM-side session (TVM-only and all BYOC flows).
class TvmSession final : public InferenceSession {
 public:
  TvmSession(FlowKind flow, relay::CompiledModulePtr compiled)
      : flow_(flow), compiled_(std::move(compiled)), executor_(compiled_) {}

  void SetInput(const std::string& name, NDArray value) override {
    executor_.SetInput(name, std::move(value));
  }
  void Run() override {
    support::TraceScope scope;
    if (scope.armed()) scope.Begin("flow", std::string("Run:") + FlowName(flow_));
    executor_.Run();
    RecordFlowRun(flow_, executor_.last_clock().total_us());
    if (scope.armed()) {
      scope.AddArg(support::TraceArg("sim_us", executor_.last_clock().total_us()));
    }
  }
  int NumOutputs() const override { return executor_.NumOutputs(); }
  NDArray GetOutput(int index) const override { return executor_.GetOutput(index); }
  const sim::SimClock& last_clock() const override { return executor_.last_clock(); }
  sim::SimClock EstimateLatency() const override { return compiled_->EstimateLatency(); }
  int NumPartitions() const override { return static_cast<int>(compiled_->externals.size()); }
  int NumExternalOps() const override { return compiled_->NumExternalOps(); }

  std::vector<sim::Resource> UsedResources() const override {
    bool cpu = false;
    bool apu = false;
    for (const auto& inst : compiled_->instructions) {
      if (inst.kind == relay::Instruction::Kind::kCallOp) {
        cpu = true;  // host instruction occupies the CPU
      }
    }
    for (const auto& external : compiled_->externals) {
      for (const sim::Resource resource : external->resources()) {
        if (resource == sim::Resource::kCpu) cpu = true;
        if (resource == sim::Resource::kApu) apu = true;
      }
    }
    std::vector<sim::Resource> result;
    if (cpu) result.push_back(sim::Resource::kCpu);
    if (apu) result.push_back(sim::Resource::kApu);
    if (result.empty()) result.push_back(sim::Resource::kCpu);
    return result;
  }

 private:
  FlowKind flow_;
  relay::CompiledModulePtr compiled_;
  relay::GraphExecutor executor_;
};

/// NeuroPilot-only session: the whole model is one NeuronPackage; no TVM
/// runtime is involved at execution time.
class NpSession final : public InferenceSession {
 public:
  NpSession(FlowKind flow, neuron::NeuronPackagePtr package,
            std::vector<std::string> input_names, int num_outputs)
      : flow_(flow),
        package_(std::move(package)),
        neuron_session_(package_),
        input_names_(std::move(input_names)),
        num_outputs_(num_outputs) {
    inputs_.resize(input_names_.size());
  }

  void SetInput(const std::string& name, NDArray value) override {
    for (std::size_t i = 0; i < input_names_.size(); ++i) {
      if (input_names_[i] == name) {
        inputs_[i] = std::move(value);
        return;
      }
    }
    TNP_THROW(kInvalidArgument) << "no model input named '" << name << "'";
  }

  void Run() override {
    support::TraceScope scope;
    if (scope.armed()) scope.Begin("flow", std::string("Run:") + FlowName(flow_));
    clock_.Reset();
    outputs_ = neuron::NeuronRuntime::Execute(*package_, inputs_, &clock_, true,
                                              &neuron_session_);
    RecordFlowRun(flow_, clock_.total_us());
    if (scope.armed()) scope.AddArg(support::TraceArg("sim_us", clock_.total_us()));
  }

  int NumOutputs() const override { return num_outputs_; }

  NDArray GetOutput(int index) const override {
    TNP_CHECK(index >= 0 && index < static_cast<int>(outputs_.size()))
        << "output index out of range (did you call Run()?)";
    return outputs_[static_cast<std::size_t>(index)];
  }

  const sim::SimClock& last_clock() const override { return clock_; }

  sim::SimClock EstimateLatency() const override {
    sim::SimClock clock;
    neuron::NeuronRuntime::Execute(*package_, {}, &clock, false);
    return clock;
  }

  int NumPartitions() const override { return 1; }
  int NumExternalOps() const override { return package_->NumOps(); }

  std::vector<sim::Resource> UsedResources() const override {
    bool cpu = false;
    bool apu = false;
    for (const sim::DeviceKind device : package_->plan.placement) {
      if (sim::ResourceOf(device) == sim::Resource::kCpu) cpu = true;
      if (sim::ResourceOf(device) == sim::Resource::kApu) apu = true;
    }
    std::vector<sim::Resource> result;
    if (cpu) result.push_back(sim::Resource::kCpu);
    if (apu) result.push_back(sim::Resource::kApu);
    if (result.empty()) result.push_back(sim::Resource::kCpu);
    return result;
  }

 private:
  FlowKind flow_;
  neuron::NeuronPackagePtr package_;
  /// Pre-planned operand arena, reused across Run() calls (zero tensor
  /// allocations per frame once the session exists).
  neuron::NeuronExecutionSession neuron_session_;
  std::vector<std::string> input_names_;
  std::vector<NDArray> inputs_;
  std::vector<NDArray> outputs_;
  sim::SimClock clock_;
  int num_outputs_ = 1;
};

/// Build an NP-only session around a compiled (or freshly mapped) package:
/// input names come from the model's input operands — the Relay→Neuron
/// converter names them after the function parameters, so SetInput keys are
/// identical whether the package was compiled or loaded from an artifact.
InferenceSessionPtr MakeNpSession(FlowKind flow, neuron::NeuronPackagePtr package) {
  std::vector<std::string> input_names;
  for (const neuron::OperandId id : package->model.model_inputs()) {
    input_names.push_back(package->model.operand(id).name);
  }
  const int num_outputs = static_cast<int>(package->model.model_outputs().size());
  return std::make_shared<NpSession>(flow, std::move(package), std::move(input_names),
                                     num_outputs);
}

/// Content key for the artifact cache: the module's deterministic serialized
/// bytes (structure + constant weights) plus every compile knob that changes
/// the produced artifact. The cache implementation hashes this together with
/// its on-disk format version.
std::string FlowCacheKey(const relay::Module& module, FlowKind flow,
                         const FlowCompileSettings& settings) {
  std::ostringstream key;
  relay::SaveModule(module, key);
  key << '|' << FlowName(flow) << "|policy=" << static_cast<int>(settings.policy)
      << "|fusion=" << (settings.enable_tvm_fusion ? 1 : 0)
      << "|tune=" << tune::ActiveTuningFingerprint();
  return key.str();
}

bool IsNpFlow(FlowKind flow) {
  return flow == FlowKind::kNpCpu || flow == FlowKind::kNpApu ||
         flow == FlowKind::kNpCpuApu;
}

}  // namespace

InferenceSessionPtr CompileFlow(const relay::Module& module, FlowKind flow,
                                const FlowCompileSettings& settings) {
  EnsureNirCodegenRegistered();
  static support::metrics::Counter& compiles =
      support::metrics::Registry::Global().GetCounter("flow/compiles");
  compiles.Increment();
  TNP_TRACE_SCOPE("flow", std::string("CompileFlow:") + FlowName(flow));

  // Load-or-build: consult the artifact cache before compiling. Only the
  // built-in testbed is cacheable — custom cost tables cannot be rebound by
  // name when the artifact is mapped in another process.
  const bool cacheable = settings.artifact_cache != nullptr &&
                         settings.testbed == &sim::Testbed::Dimensity800();
  std::string cache_key;
  if (cacheable) {
    cache_key = FlowCacheKey(module, flow, settings);
    if (IsNpFlow(flow)) {
      if (neuron::NeuronPackagePtr package =
              settings.artifact_cache->TryLoadPackage(cache_key)) {
        return MakeNpSession(flow, std::move(package));
      }
    } else {
      if (relay::CompiledModulePtr compiled =
              settings.artifact_cache->TryLoadModule(cache_key)) {
        return std::make_shared<TvmSession>(flow, std::move(compiled));
      }
    }
  }

  if (flow == FlowKind::kTvmOnly) {
    relay::BuildOptions options;
    options.enable_fusion = settings.enable_tvm_fusion;
    options.host_device = sim::DeviceKind::kTvmCpu;
    options.testbed = settings.testbed;
    relay::CompiledModulePtr compiled = relay::Build(module, options);
    if (cacheable) settings.artifact_cache->SaveModule(cache_key, *compiled);
    return std::make_shared<TvmSession>(flow, std::move(compiled));
  }

  if (flow == FlowKind::kByocCpu || flow == FlowKind::kByocApu ||
      flow == FlowKind::kByocCpuApu) {
    NirOptions options;
    options.target = TargetOf(flow);
    options.testbed = settings.testbed;
    options.policy = settings.policy;
    options.enable_tvm_fusion = settings.enable_tvm_fusion;
    const relay::Module partitioned = PartitionForNir(module, options);
    relay::CompiledModulePtr compiled =
        relay::Build(partitioned, MakeBuildOptions(options));
    if (cacheable) settings.artifact_cache->SaveModule(cache_key, *compiled);
    return std::make_shared<TvmSession>(flow, std::move(compiled));
  }

  // NeuroPilot-only: convert the *entire* model through the Relay->Neuron
  // converter; any op without a Neuron mapping aborts compilation (this is
  // what produces the paper's missing bars).
  const relay::Module prepared =
      relay::Sequential({relay::InferType(), relay::SimplifyExpr(), relay::FoldConstant(),
                         relay::InferType()})
          .Run(module);
  const relay::FunctionPtr& main_fn = prepared.main();

  RelayToNeuronConverter converter;
  neuron::NeuronModel model = converter.Convert(main_fn);

  neuron::CompilerOptions compiler_options;
  compiler_options.target = TargetOf(flow);
  compiler_options.testbed = settings.testbed;
  compiler_options.policy = settings.policy;
  const neuron::NeuronCompiler compiler(compiler_options);
  neuron::NeuronPackagePtr package = compiler.Compile(std::move(model), "np_only");
  if (cacheable) settings.artifact_cache->SavePackage(cache_key, *package);
  return MakeNpSession(flow, std::move(package));
}

InferenceSessionPtr TryCompileFlow(const relay::Module& module, FlowKind flow,
                                   std::string* error, const FlowCompileSettings& settings) {
  try {
    return CompileFlow(module, flow, settings);
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
}

}  // namespace core
}  // namespace tnp
