// partition_for_nir + the "nir" external codegen — the glue that makes
// NeuroPilot a TVM BYOC backend (paper Sections 3.1/3.2).
//
// Typical use (mirrors the paper's Listing 2):
//
//   relay::Module mod = frontend::FromPyTorch(...);
//   mod = core::PartitionForNir(mod, opts);           // nir.partition_for_nir
//   auto lib = relay::Build(mod, core::MakeBuildOptions(opts));
//   relay::GraphExecutor m(lib);                      // graph_executor.GraphModule
//   m.SetInput("data", face_region);
//   m.Run();
//   NDArray out = m.GetOutput(0);
#pragma once

#include "neuron/compiler.h"
#include "neuron/runtime.h"
#include "relay/build.h"
#include "relay/byoc_partition.h"

namespace tnp {
namespace core {

struct NirOptions {
  neuron::TargetConfig target = neuron::TargetConfig::CpuApu();
  const sim::Testbed* testbed = &sim::Testbed::Dimensity800();
  neuron::PlannerPolicy policy = neuron::PlannerPolicy::kGreedyCost;
  /// Disable FuseOps on the TVM side (ablation hook).
  bool enable_tvm_fusion = true;
};

/// Partition module["main"] for the NeuroPilot backend: ops with a Neuron
/// lowering supported by at least one enabled target device move into
/// Compiler="nir" regions. Runs InferType + SimplifyExpr first so identity
/// ops (dropout) don't fragment regions.
relay::Module PartitionForNir(const relay::Module& module, const NirOptions& options = {});

/// BuildOptions consistent with `options` (host device, external config).
relay::BuildOptions MakeBuildOptions(const NirOptions& options);

/// Registers the "nir" external codegen (idempotent; called by
/// PartitionForNir and MakeBuildOptions).
void EnsureNirCodegenRegistered();

/// Bridges the Neuron runtime's per-caller execution state into the relay
/// executor's session seam (neuron/ does not link against relay/, so the
/// wrapping happens here).
class NirSession final : public relay::ExternalSession {
 public:
  explicit NirSession(neuron::NeuronPackagePtr package)
      : neuron_session_(std::move(package)) {}

  neuron::NeuronExecutionSession& neuron_session() { return neuron_session_; }

 private:
  neuron::NeuronExecutionSession neuron_session_;
};

/// The ExternalModule produced by the nir codegen (exposed for tests and
/// reports: gives access to the compiled NeuronPackage).
class NirExternalModule final : public relay::ExternalModule {
 public:
  NirExternalModule(std::string name, neuron::NeuronPackagePtr package)
      : name_(std::move(name)), package_(std::move(package)) {}

  relay::Value Run(const std::vector<relay::Value>& inputs, sim::SimClock* clock,
                   bool execute_numerics, relay::ExternalSession* session = nullptr) override;

  relay::ExternalSessionPtr CreateSession() const override {
    return std::make_shared<NirSession>(package_);
  }

  const std::string& name() const override { return name_; }
  int num_ops() const override { return package_->NumOps(); }
  std::vector<sim::Resource> resources() const override;
  void AppendProfile(std::vector<relay::ProfileEntry>& out) const override;

  const neuron::NeuronPackage& package() const { return *package_; }

 private:
  std::string name_;
  neuron::NeuronPackagePtr package_;
};

}  // namespace core
}  // namespace tnp
