// Relay -> Neuron IR conversion (paper Section 3.2, Listing 1).
//
// The converter subclasses relay::ExprVisitor (post-order DFS over the Relay
// AST), stores each node's Neuron operand ids in a NodeEntry, and maps each
// Relay operator to Neuron IR through a dictionary of OpHandlers
// (`op_handler_dict` in the paper's pseudo-code).
//
// QNN augmentation (Section 3.3) happens inside the handlers: Relay QNN
// carries quantization parameters as *operator* attributes; Neuron needs
// them on *tensors*. Handlers write scale/zero-point onto the operands they
// create, and pass-through handlers (pooling, reshape, concat, ...) copy the
// input operand's parameters onto their output, "passing them on" exactly
// as the paper describes for non-QNN ops inside quantized graphs.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "neuron/ir.h"
#include "relay/expr.h"
#include "relay/visitor.h"
#include "sim/device.h"

namespace tnp {
namespace core {

/// Per-AST-node record of the Neuron operands that carry its inputs/outputs
/// (the paper's NodeEntry structure).
struct NodeEntry {
  std::vector<neuron::OperandId> inputs;
  std::vector<neuron::OperandId> outputs;
};

class RelayToNeuronConverter;

/// Converts one Relay call into Neuron operations. Registered per op name.
class OpHandler {
 public:
  virtual ~OpHandler() = default;
  /// Emit Neuron IR for `call`. `entry.inputs` is pre-populated with the
  /// operand ids of the call's arguments (flattened); the handler must fill
  /// `entry.outputs`.
  virtual void CreateOp(const relay::Call& call, NodeEntry& entry,
                        RelayToNeuronConverter& converter) const = 0;

  /// The Neuron op type(s) this Relay op lowers to (drives target-aware
  /// partitioning: a Relay op only enters a region if some enabled device
  /// supports its lowering).
  virtual std::vector<neuron::NeuronOpType> LowersTo() const = 0;
};

/// The op-handler dictionary. Keyed by Relay op name.
class OpHandlerDict {
 public:
  static const OpHandlerDict& Global();

  bool Has(const std::string& relay_op) const { return handlers_.count(relay_op) != 0; }
  const OpHandler& Get(const std::string& relay_op) const;

  std::vector<std::string> SupportedRelayOps() const;

 private:
  OpHandlerDict();
  std::map<std::string, std::unique_ptr<OpHandler>> handlers_;
};

/// ExprVisitor-based converter (Listing 1).
class RelayToNeuronConverter : public relay::ExprVisitor {
 public:
  RelayToNeuronConverter();

  /// Convert a Relay function (types must be inferred) into a NeuronModel.
  /// Throws kUnsupportedOp when a call has no handler.
  neuron::NeuronModel Convert(const relay::FunctionPtr& fn);

  // ---- helpers used by OpHandlers ----
  neuron::NeuronModel& model() { return model_; }

  /// Create the output operand for `expr` (shape/dtype from its checked
  /// type), optionally with tensor-oriented quantization parameters.
  neuron::OperandId MakeOutputOperand(const relay::Expr& expr,
                                      QuantParams quant = QuantParams());

  /// The operand currently carrying `expr`'s (single) output.
  neuron::OperandId OperandOf(const relay::ExprPtr& expr) const;

  /// Set quantization parameters on an operand if it has none yet — this is
  /// how operator-oriented QNN attrs land on input/weight tensors.
  void EnsureOperandQuant(neuron::OperandId id, const QuantParams& quant);

  const std::unordered_map<const relay::Expr*, NodeEntry>& node_entry_dict() const {
    return node_entry_dict_;
  }

 protected:
  void VisitVar(const relay::VarPtr& var) override;
  void VisitConstant(const relay::ConstantPtr& constant) override;
  void VisitTuple(const relay::TuplePtr& tuple) override;
  void VisitTupleGetItem(const relay::TupleGetItemPtr& get) override;
  void VisitCall(const relay::CallPtr& call) override;

 private:
  neuron::NeuronModel model_;
  std::unordered_map<const relay::Expr*, NodeEntry> node_entry_dict_;
  int temp_counter_ = 0;
};

/// True when the Relay call can be lowered to Neuron IR *and* at least one
/// of the devices in `devices` supports the lowered op(s). This is the
/// predicate handed to the BYOC partitioner.
bool NirSupported(const relay::Call& call, const std::vector<sim::DeviceKind>& devices);

}  // namespace core
}  // namespace tnp
