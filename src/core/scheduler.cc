#include "core/scheduler.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace core {

ModelProfile ProfileModel(const relay::Module& module, const std::string& name,
                          const FlowCompileSettings& settings) {
  static std::atomic<int> next_profile_id{0};
  ModelProfile profile;
  profile.model = name;
  profile.metrics_prefix =
      "profile/" + name + "#" + std::to_string(next_profile_id.fetch_add(1));

  // Force tracing on: the profile is *derived from* the recorded spans, not
  // from a bespoke timing side-channel, so the tracer must observe the run.
  support::Tracer& tracer = support::Tracer::Global();
  const support::Tracer::ScopedEnable enable_tracing;
  const std::uint64_t start_seq = tracer.sequence();

  TNP_TRACE_SCOPE("scheduler", std::string("ProfileModel:") + name);
  for (const FlowKind flow : kAllFlows) {
    std::string error;
    const InferenceSessionPtr session = TryCompileFlow(module, flow, &error, settings);
    if (session == nullptr) {
      profile.errors[flow] = error;
      continue;
    }
    const sim::SimClock estimate = session->EstimateLatency();
    // Simulated time, explicit duration: the span lands on the trace
    // timeline even though no wall time passed.
    tracer.Emit("scheduler", "estimate:" + std::string(FlowName(flow)), tracer.NowUs(),
                estimate.total_us(),
                {support::TraceArg("model", name),
                 support::TraceArg("flow", FlowName(flow))});
    profile.resources[flow] = session->UsedResources();
  }

  // Read the per-flow latencies back out of the recorded spans.
  for (const support::TraceEvent& event : tracer.EventsSince(start_seq)) {
    if (std::string(event.category) != "scheduler") continue;
    if (event.ArgValue("model") != name) continue;
    const std::string& flow_name = event.ArgValue("flow");
    for (const FlowKind flow : kAllFlows) {
      if (flow_name != FlowName(flow)) continue;
      profile.latency_us[flow] = event.dur_us;
      support::metrics::Registry::Global()
          .GetGauge(profile.metrics_prefix + "/" + flow_name + "/us")
          .Set(event.dur_us);
      break;
    }
  }
  return profile;
}

Assignment ComputationScheduler::BestFlow(const ModelProfile& profile) {
  const auto best = BestFlowWithin(profile, {sim::Resource::kCpu, sim::Resource::kApu});
  TNP_CHECK(best.has_value()) << "model '" << profile.model << "' supports no flow";
  return *best;
}

std::optional<Assignment> ComputationScheduler::BestFlowWithin(
    const ModelProfile& profile, const std::vector<sim::Resource>& allowed) {
  std::optional<Assignment> best;
  for (const auto& [flow, latency] : profile.latency_us) {
    bool within = true;
    for (const sim::Resource resource : profile.ResourcesOf(flow)) {
      if (std::find(allowed.begin(), allowed.end(), resource) == allowed.end()) {
        within = false;
        break;
      }
    }
    if (!within) continue;
    if (!best || latency < best->latency_us) best = Assignment{flow, latency};
  }
  return best;
}

ServePlan ComputationScheduler::PlanForServing(const ModelProfile& profile) {
  ServePlan plan;
  plan.primary = BestFlow(profile);
  const bool primary_uses_apu = [&] {
    for (const sim::Resource resource : profile.ResourcesOf(plan.primary.flow)) {
      if (resource == sim::Resource::kApu) return true;
    }
    return false;
  }();
  if (primary_uses_apu) {
    const auto cpu_only = BestFlowWithin(profile, {sim::Resource::kCpu});
    if (cpu_only.has_value() && cpu_only->flow != plan.primary.flow) {
      plan.cpu_fallback = cpu_only;
    }
  }
  return plan;
}

PipelineResult SchedulePipeline(const std::vector<PipelineStage>& stages, int num_frames) {
  TNP_CHECK(!stages.empty());
  TNP_CHECK_GT(num_frames, 0);

  PipelineResult result;
  result.stages = stages;

  double per_frame_sequential = 0.0;
  for (const auto& stage : stages) per_frame_sequential += stage.latency_us;
  result.sequential_us = per_frame_sequential * num_frames;

  // ready[s] per frame: end of the previous stage of the same frame.
  for (int frame = 0; frame < num_frames; ++frame) {
    double ready = 0.0;
    for (const auto& stage : stages) {
      const std::string label = stage.name + "#" + std::to_string(frame);
      ready = result.timeline.ScheduleMulti(label, stage.resources(), ready, stage.latency_us);
    }
  }

  result.makespan_us = result.timeline.makespan_us();
  result.speedup = result.sequential_us / std::max(result.makespan_us, 1e-9);
  result.throughput_fps = num_frames / (result.makespan_us / 1e6);
  return result;
}

std::vector<PipelineStage> ChoosePipelineAssignment(const std::vector<ModelProfile>& profiles,
                                                    int num_frames) {
  TNP_CHECK(!profiles.empty());

  std::vector<PipelineStage> best_stages;
  double best_makespan = std::numeric_limits<double>::infinity();

  // Exhaustive product over each stage's supported flows.
  std::vector<std::vector<std::pair<FlowKind, double>>> choices;
  for (const auto& profile : profiles) {
    TNP_CHECK(!profile.latency_us.empty())
        << "model '" << profile.model << "' supports no flow";
    choices.emplace_back(profile.latency_us.begin(), profile.latency_us.end());
  }

  std::vector<std::size_t> index(choices.size(), 0);
  for (;;) {
    std::vector<PipelineStage> stages;
    for (std::size_t s = 0; s < choices.size(); ++s) {
      const auto& [flow, latency] = choices[s][index[s]];
      stages.push_back(
          PipelineStage{profiles[s].model, flow, latency, profiles[s].ResourcesOf(flow)});
    }
    const PipelineResult result = SchedulePipeline(stages, num_frames);
    if (result.makespan_us < best_makespan) {
      best_makespan = result.makespan_us;
      best_stages = std::move(stages);
    }

    // Advance the mixed-radix counter.
    std::size_t s = 0;
    while (s < index.size() && ++index[s] == choices[s].size()) {
      index[s] = 0;
      ++s;
    }
    if (s == index.size()) break;
  }
  return best_stages;
}

std::vector<PipelineStage> PaperPrototypeAssignment(const std::vector<ModelProfile>& profiles) {
  TNP_CHECK(!profiles.empty());
  std::vector<PipelineStage> stages;
  for (std::size_t s = 0; s < profiles.size(); ++s) {
    Assignment assignment;
    if (s == 0) {
      // Move the producer stage to CPU-only for exclusive resource use
      // (Figure 5: object detection switched from CPU+APU to CPU-only).
      const auto cpu_only =
          ComputationScheduler::BestFlowWithin(profiles[s], {sim::Resource::kCpu});
      assignment = cpu_only ? *cpu_only : ComputationScheduler::BestFlow(profiles[s]);
    } else {
      assignment = ComputationScheduler::BestFlow(profiles[s]);
    }
    stages.push_back(PipelineStage{profiles[s].model, assignment.flow,
                                   assignment.latency_us,
                                   profiles[s].ResourcesOf(assignment.flow)});
  }
  return stages;
}

}  // namespace core
}  // namespace tnp
