// Threaded pipeline executor — the runnable counterpart of the Figure-5
// schedule. One worker thread per stage, bounded queues between stages, and
// per-resource mutexes enforcing the paper's exclusive-resource constraint
// (a CPU+APU stage locks both; a CPU-only object detector and an APU-only
// emotion model of different frames genuinely overlap).
//
// Header-only template so applications can pipeline any packet type.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/device.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "support/trace_context.h"

namespace tnp {
namespace core {

/// Mutual exclusion over the device's physical resources. The process-wide
/// Global() instance models the phone (exactly one CPU and one APU) and is
/// the default everywhere; executors also accept an injected instance so
/// independent device models — concurrent pipelines or servers in one test
/// binary — don't serialize against each other through the singleton.
class ResourceLocks {
 public:
  ResourceLocks() = default;

  static ResourceLocks& Global() {
    static ResourceLocks locks;
    return locks;
  }

  std::mutex& Of(sim::Resource resource) {
    return mutexes_[static_cast<std::size_t>(resource)];
  }

 private:
  std::array<std::mutex, sim::kNumResources> mutexes_;
};

template <typename Packet>
class Pipeline {
 public:
  struct Stage {
    std::string name;
    std::vector<sim::Resource> resources;
    /// Transform one packet; returning nullopt drops the packet (e.g. a
    /// frame with no detected face skips downstream stages).
    std::function<std::optional<Packet>(Packet)> fn;
  };

  /// `locks == nullptr` uses the process-wide ResourceLocks::Global().
  explicit Pipeline(std::vector<Stage> stages, std::size_t queue_capacity = 4,
                    ResourceLocks* locks = nullptr)
      : stages_(std::move(stages)),
        queue_capacity_(queue_capacity),
        locks_(locks != nullptr ? locks : &ResourceLocks::Global()) {
    TNP_CHECK(!stages_.empty());
    TNP_CHECK_GT(queue_capacity_, 0u);
  }

  /// Push all packets through every stage; returns surviving packets in
  /// completion order of the final stage (input order is preserved because
  /// each stage is a single worker).
  ///
  /// Each packet is minted a request-scoped TraceContext at the feeder and
  /// carries it across every stage's thread handoff, so all of a frame's
  /// stage spans (and the session/kernel spans they enclose) share one
  /// req_id in the trace export — same discipline as the serving runtime.
  std::vector<Packet> Run(std::vector<Packet> packets) {
    const std::size_t num_stages = stages_.size();
    std::vector<BoundedQueue> queues(num_stages + 1);
    for (std::size_t q = 0; q <= num_stages; ++q) {
      queues[q].capacity = queue_capacity_;
      // queues[s] feeds stage s; the final queue collects pipeline output.
      const std::string queue_name = q < num_stages ? stages_[q].name : "out";
      queues[q].depth_name = "queue/" + queue_name + "/depth";
      queues[q].depth_gauge = &support::metrics::Registry::Global().GetGauge(
          "pipeline/" + queues[q].depth_name);
    }

    std::vector<std::thread> workers;
    workers.reserve(num_stages);
    for (std::size_t s = 0; s < num_stages; ++s) {
      workers.emplace_back([this, s, &queues] { StageLoop(s, queues[s], queues[s + 1]); });
    }

    // Feed from a dedicated thread: the bounded queues exert backpressure,
    // so the producer must not be the same thread that drains the results
    // (pushing everything up front would deadlock once the packets in
    // flight exceed the total queue capacity).
    std::thread feeder([&packets, &queues] {
      for (auto& packet : packets) {
        Item item;
        item.trace = support::TraceContext::NewRequest();
        item.packet = std::move(packet);
        queues.front().Push(std::move(item));
      }
      queues.front().Close();
    });

    std::vector<Packet> results;
    while (auto item = queues.back().Pop()) results.push_back(std::move(item->packet));
    feeder.join();
    for (auto& worker : workers) worker.join();
    return results;
  }

 private:
  /// A packet in flight plus the trace identity it carries between stage
  /// threads (explicit context handoff).
  struct Item {
    Packet packet;
    support::TraceContext trace;
  };

  struct BoundedQueue {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Item> items;
    std::size_t capacity = 4;
    bool closed = false;
    support::metrics::Gauge* depth_gauge = nullptr;  ///< current depth + watermark
    std::string depth_name;                          ///< trace counter track name

    void Push(Item item) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return items.size() < capacity; });
      items.push_back(std::move(item));
      RecordDepth();
      cv.notify_all();
    }

    std::optional<Item> Pop() {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return !items.empty() || closed; });
      if (items.empty()) return std::nullopt;
      Item item = std::move(items.front());
      items.pop_front();
      RecordDepth();
      cv.notify_all();
      return item;
    }

    /// Called with `mutex` held.
    void RecordDepth() {
      const double depth = static_cast<double>(items.size());
      if (depth_gauge != nullptr) depth_gauge->Set(depth);
      TNP_TRACE_COUNTER("pipeline", depth_name, depth);
    }

    void Close() {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
      cv.notify_all();
    }
  };

  void StageLoop(std::size_t stage_index, BoundedQueue& in, BoundedQueue& out) {
    Stage& stage = stages_[stage_index];
    support::metrics::Histogram& stage_us =
        support::metrics::Registry::Global().GetHistogram("pipeline/stage/" + stage.name +
                                                          "/us");
    while (true) {
      std::optional<Item> item;
      {
        TNP_TRACE_SCOPE("pipeline", stage.name + ":dequeue");
        item = in.Pop();
      }
      if (!item) break;
      // Re-install the frame's trace context for everything the stage does
      // on this thread (run + enqueue spans, nested session/kernel spans).
      support::TraceContextScope trace_scope(item->trace);
      std::optional<Packet> result;
      const auto start = std::chrono::steady_clock::now();
      {
        TNP_TRACE_SCOPE("pipeline", stage.name + ":run");
        // Acquire every resource the stage occupies, in fixed order to
        // avoid deadlock between stages with overlapping resource sets.
        std::vector<std::unique_lock<std::mutex>> held;
        std::vector<sim::Resource> sorted = stage.resources;
        std::sort(sorted.begin(), sorted.end(),
                  [](sim::Resource a, sim::Resource b) {
                    return static_cast<int>(a) < static_cast<int>(b);
                  });
        for (const sim::Resource resource : sorted) {
          held.emplace_back(locks_->Of(resource));
        }
        result = stage.fn(std::move(item->packet));
      }
      stage_us.Record(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      if (result) {
        TNP_TRACE_SCOPE("pipeline", stage.name + ":enqueue");
        Item next;
        next.packet = std::move(*result);
        next.trace = item->trace;
        out.Push(std::move(next));
      }
    }
    out.Close();
  }

  std::vector<Stage> stages_;
  std::size_t queue_capacity_;
  ResourceLocks* locks_;
};

}  // namespace core
}  // namespace tnp
