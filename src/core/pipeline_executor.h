// Pipeline executor — the runnable counterpart of the Figure-5 schedule.
// Stages are *pump tasks* on the process-wide work-stealing pool
// (support::ThreadPool) rather than dedicated threads: each stage owns an
// armed/dirty flag word; queue events (upstream push, downstream pop, close)
// arm the stage, and an armed stage runs as a single pool task that drains
// its input queue until it is empty or its output queue is full, then
// disarms. At most one pump per stage is ever live, which preserves the
// per-stage ordering guarantee the threaded version had, and an idle
// pipeline costs zero threads.
//
// Per-resource mutexes enforce the paper's exclusive-resource constraint
// (a CPU+APU stage locks both; a CPU-only object detector and an APU-only
// emotion model of different frames genuinely overlap). Resource holds are
// taken through ResourceLocks::Acquire, which also declares the hold to the
// thread pool (BlockingScope): while a stage parks a worker on an exclusive
// device, the pool back-fills a spare so kernel workers and other stages
// keep running — that is how CPU affinity is negotiated between the data
// plane and the exclusive-device guarantees.
//
// Header-only template so applications can pipeline any packet type.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/device.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "support/trace_context.h"

namespace tnp {
namespace core {

/// Mutual exclusion over the device's physical resources. The process-wide
/// Global() instance models the phone (exactly one CPU and one APU) and is
/// the default everywhere; executors also accept an injected instance so
/// independent device models — concurrent pipelines or servers in one test
/// binary — don't serialize against each other through the singleton.
class ResourceLocks {
 public:
  ResourceLocks() = default;

  static ResourceLocks& Global() {
    static ResourceLocks locks;
    return locks;
  }

  std::mutex& Of(sim::Resource resource) {
    return mutexes_[static_cast<std::size_t>(resource)];
  }

  /// RAII ownership of a set of resources, acquired in canonical order.
  /// While live it also marks the calling pool task as blocking
  /// (ThreadPool::BlockingScope) so the pool keeps its target concurrency.
  /// Movable, alloc-free; an empty hold (no resources) is inert.
  class Hold {
   public:
    Hold() = default;
    Hold(Hold&&) = default;
    Hold& operator=(Hold&&) = default;
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;

   private:
    friend class ResourceLocks;
    std::optional<support::ThreadPool::BlockingScope> blocking_;
    // Destroyed before `blocking_` (reverse declaration order): the
    // resources release first, then the worker is marked runnable again.
    std::array<std::unique_lock<std::mutex>, sim::kNumResources> held_;
  };

  /// Lock every resource in `resources` (deduplicated, ascending enum order
  /// — the fixed order is what makes overlapping resource sets deadlock-free
  /// across stages and serve executors).
  Hold Acquire(const std::vector<sim::Resource>& resources) {
    Hold hold;
    if (resources.empty()) return hold;
    std::array<bool, sim::kNumResources> want{};
    for (const sim::Resource resource : resources) {
      want[static_cast<std::size_t>(resource)] = true;
    }
    hold.blocking_.emplace();
    std::size_t held = 0;
    for (std::size_t i = 0; i < sim::kNumResources; ++i) {
      if (want[i]) {
        hold.held_[held++] = std::unique_lock<std::mutex>(mutexes_[i]);
      }
    }
    return hold;
  }

 private:
  std::array<std::mutex, sim::kNumResources> mutexes_;
};

template <typename Packet>
class Pipeline {
 public:
  struct Stage {
    std::string name;
    std::vector<sim::Resource> resources;
    /// Transform one packet; returning nullopt drops the packet (e.g. a
    /// frame with no detected face skips downstream stages). A throwing
    /// stage drops the packet with an ERROR log — it never stalls the
    /// pipeline or tears down the pool.
    std::function<std::optional<Packet>(Packet)> fn;
  };

  /// `locks == nullptr` uses the process-wide ResourceLocks::Global().
  explicit Pipeline(std::vector<Stage> stages, std::size_t queue_capacity = 4,
                    ResourceLocks* locks = nullptr)
      : stages_(std::move(stages)),
        queue_capacity_(queue_capacity),
        locks_(locks != nullptr ? locks : &ResourceLocks::Global()) {
    TNP_CHECK(!stages_.empty());
    TNP_CHECK_GT(queue_capacity_, 0u);
    stage_us_.reserve(stages_.size());
    for (const Stage& stage : stages_) {
      stage_us_.push_back(&support::metrics::Registry::Global().GetHistogram(
          "pipeline/stage/" + stage.name + "/us"));
    }
  }

  /// Push all packets through every stage; returns surviving packets in
  /// completion order of the final stage (input order is preserved because
  /// each stage is a single pump). The caller feeds the first queue and
  /// drains the last one, waiting on queue events in between; all stage
  /// work runs as pool tasks joined through one TaskGroup before return.
  ///
  /// Each packet is minted a request-scoped TraceContext at the feed point
  /// and carries it across every stage handoff, so all of a frame's stage
  /// spans (and the session/kernel spans they enclose) share one req_id in
  /// the trace export — same discipline as the serving runtime.
  std::vector<Packet> Run(std::vector<Packet> packets) {
    const std::size_t num_stages = stages_.size();
    RunState st(num_stages, queue_capacity_);
    for (std::size_t q = 0; q <= num_stages; ++q) {
      // queues[s] feeds stage s; the final queue collects pipeline output.
      const std::string queue_name = q < num_stages ? stages_[q].name : "out";
      st.queues[q].depth_name = "queue/" + queue_name + "/depth";
      st.queues[q].depth_gauge = &support::metrics::Registry::Global().GetGauge(
          "pipeline/" + st.queues[q].depth_name);
    }
    support::TaskGroup stage_tasks;
    st.group = &stage_tasks;

    std::vector<Packet> results;
    results.reserve(packets.size());
    std::size_t next = 0;
    bool input_closed = false;
    bool output_done = false;
    while (!output_done) {
      std::uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(st.caller_mutex);
        seen = st.progress;
      }
      // Feed as much input as the first queue accepts (its bound is the
      // backpressure that keeps packets-in-flight finite).
      while (next < packets.size()) {
        Item item;
        item.trace = support::TraceContext::NewRequest();
        item.packet = std::move(packets[next]);
        if (!st.queues[0].TryPush(std::move(item))) {
          packets[next] = std::move(item.packet);
          break;
        }
        ++next;
        ArmStage(st, 0);
      }
      if (next == packets.size() && !input_closed) {
        st.queues[0].Close();
        input_closed = true;
        ArmStage(st, 0);
      }
      // Drain whatever the final stage produced.
      for (;;) {
        Item item;
        const PopResult r = st.queues[num_stages].TryPop(&item);
        if (r == PopResult::kItem) {
          results.push_back(std::move(item.packet));
          // Freed a slot: the last stage may be parked on a full out queue.
          ArmStage(st, num_stages - 1);
          continue;
        }
        if (r == PopResult::kClosed) output_done = true;
        break;
      }
      if (output_done) break;
      std::unique_lock<std::mutex> lock(st.caller_mutex);
      st.caller_cv.wait(lock, [&st, seen] { return st.progress != seen; });
    }
    // Quiesce: every stage task (including spuriously re-armed pumps that
    // will just observe closed queues) finishes before RunState leaves
    // scope. Pumps never touch RunState after their task returns, so this
    // join makes destruction safe.
    stage_tasks.Wait();
    return results;
  }

 private:
  static constexpr std::uint32_t kArmedBit = 1u;
  static constexpr std::uint32_t kDirtyBit = 2u;

  /// A packet in flight plus the trace identity it carries between stage
  /// tasks (explicit context handoff).
  struct Item {
    Packet packet;
    support::TraceContext trace;
  };

  enum class PopResult { kItem, kEmpty, kClosed };

  struct BoundedQueue {
    std::mutex mutex;
    std::deque<Item> items;
    std::size_t capacity = 4;
    bool closed = false;
    support::metrics::Gauge* depth_gauge = nullptr;  ///< current depth + watermark
    std::string depth_name;                          ///< trace counter track name

    bool TryPush(Item&& item) {
      std::lock_guard<std::mutex> lock(mutex);
      if (items.size() >= capacity) return false;  // `item` left intact
      items.push_back(std::move(item));
      RecordDepth();
      return true;
    }

    /// kClosed only once closed *and* drained.
    PopResult TryPop(Item* out) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!items.empty()) {
        *out = std::move(items.front());
        items.pop_front();
        RecordDepth();
        return PopResult::kItem;
      }
      return closed ? PopResult::kClosed : PopResult::kEmpty;
    }

    /// Called with `mutex` held.
    void RecordDepth() {
      const double depth = static_cast<double>(items.size());
      if (depth_gauge != nullptr) depth_gauge->Set(depth);
      TNP_TRACE_COUNTER("pipeline", depth_name, depth);
    }

    void Close() {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
  };

  /// Everything one Run() invocation shares with its stage tasks. Lives on
  /// the caller's stack; the TaskGroup join at the end of Run guarantees no
  /// stage task outlives it.
  struct RunState {
    std::vector<BoundedQueue> queues;                      // num_stages + 1
    std::vector<std::atomic<std::uint32_t>> stage_state;   // armed|dirty words
    std::vector<std::optional<Item>> pending;  // per-stage item awaiting space
    std::mutex caller_mutex;
    std::condition_variable caller_cv;
    std::uint64_t progress = 0;  ///< guarded by caller_mutex
    support::TaskGroup* group = nullptr;

    RunState(std::size_t num_stages, std::size_t capacity)
        : queues(num_stages + 1),
          stage_state(num_stages),
          pending(num_stages) {
      for (auto& queue : queues) queue.capacity = capacity;
    }
  };

  struct StagePumpTask {
    Pipeline* pipeline;
    RunState* st;
    std::size_t stage;
    void operator()() const { pipeline->RunStagePump(*st, stage); }
  };

  /// Mark stage `s` runnable. Exactly one pump task per stage is live at a
  /// time: the armed bit gates posting, the dirty bit makes a pump that is
  /// about to disarm re-check — the standard lost-wakeup-free handoff.
  void ArmStage(RunState& st, std::size_t s) {
    const std::uint32_t old = st.stage_state[s].fetch_or(kArmedBit | kDirtyBit);
    if ((old & kArmedBit) == 0) {
      st.group->Run(StagePumpTask{this, &st, s});
    }
  }

  void NotifyCaller(RunState& st) {
    {
      std::lock_guard<std::mutex> lock(st.caller_mutex);
      ++st.progress;
    }
    st.caller_cv.notify_all();
  }

  /// Push a processed item downstream; false when the out queue is full
  /// (the caller parks it in `pending` and the downstream pop re-arms us).
  bool TryForward(RunState& st, std::size_t s, Item& item) {
    support::TraceContextScope trace_scope(item.trace);
    TNP_TRACE_SCOPE("pipeline", stages_[s].name + ":enqueue");
    if (!st.queues[s + 1].TryPush(std::move(item))) return false;
    if (s + 1 < stages_.size()) {
      ArmStage(st, s + 1);
    } else {
      NotifyCaller(st);
    }
    return true;
  }

  void RunStagePump(RunState& st, std::size_t s) {
    std::atomic<std::uint32_t>& state = st.stage_state[s];
    BoundedQueue& in = st.queues[s];
    Stage& stage = stages_[s];
    for (;;) {
      state.fetch_and(~kDirtyBit);
      bool in_done = false;
      for (;;) {
        if (st.pending[s].has_value()) {
          if (!TryForward(st, s, *st.pending[s])) break;  // parked on full out
          st.pending[s].reset();
        }
        PopResult r;
        Item item;
        {
          TNP_TRACE_SCOPE("pipeline", stage.name + ":dequeue");
          r = in.TryPop(&item);
        }
        if (r == PopResult::kClosed) {
          in_done = true;
          break;
        }
        if (r == PopResult::kEmpty) break;
        // Freed an input slot: wake whoever feeds this stage.
        if (s == 0) {
          NotifyCaller(st);
        } else {
          ArmStage(st, s - 1);
        }
        // Re-install the frame's trace context for everything the stage
        // does (run + enqueue spans, nested session/kernel spans).
        support::TraceContextScope trace_scope(item.trace);
        std::optional<Packet> result;
        const auto start = std::chrono::steady_clock::now();
        {
          TNP_TRACE_SCOPE("pipeline", stage.name + ":run");
          ResourceLocks::Hold hold = locks_->Acquire(stage.resources);
          try {
            result = stage.fn(std::move(item.packet));
          } catch (const std::exception& e) {
            TNP_LOG(ERROR) << "pipeline stage '" << stage.name
                           << "' threw (packet dropped): " << e.what();
            result.reset();
          } catch (...) {
            TNP_LOG(ERROR) << "pipeline stage '" << stage.name
                           << "' threw a non-std exception (packet dropped)";
            result.reset();
          }
        }
        stage_us_[s]->Record(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
        if (result.has_value()) {
          st.pending[s] = Item{std::move(*result), item.trace};
        }
      }
      if (in_done && !st.pending[s].has_value()) {
        // Input closed and drained, nothing parked: propagate the close and
        // retire this stage. Spurious later arms are harmless — the re-run
        // observes the same closed queues and closes idempotently.
        st.queues[s + 1].Close();
        if (s + 1 < stages_.size()) {
          ArmStage(st, s + 1);
        } else {
          NotifyCaller(st);
        }
        state.store(0);
        return;
      }
      std::uint32_t expected = kArmedBit;
      if (state.compare_exchange_strong(expected, 0)) return;
      // Dirty was set while we drained: new events arrived — go again.
    }
  }

  std::vector<Stage> stages_;
  std::size_t queue_capacity_;
  ResourceLocks* locks_;
  std::vector<support::metrics::Histogram*> stage_us_;
};

}  // namespace core
}  // namespace tnp
