#include "core/nir.h"

#include <mutex>

#include "core/relay_to_neuron.h"
#include "neuron/runtime.h"
#include "relay/pass.h"
#include "support/trace.h"

namespace tnp {
namespace core {

relay::Value NirExternalModule::Run(const std::vector<relay::Value>& inputs,
                                    sim::SimClock* clock, bool execute_numerics,
                                    relay::ExternalSession* session) {
  std::vector<NDArray> tensor_inputs;
  if (execute_numerics) {
    tensor_inputs.reserve(inputs.size());
    for (const auto& input : inputs) tensor_inputs.push_back(input.AsTensor());
  }
  auto* nir_session = static_cast<NirSession*>(session);
  const std::vector<NDArray> outputs = neuron::NeuronRuntime::Execute(
      *package_, tensor_inputs, clock, execute_numerics,
      nir_session != nullptr ? &nir_session->neuron_session() : nullptr);
  if (!execute_numerics) return relay::Value();
  if (outputs.size() == 1) return relay::Value(outputs.front());
  std::vector<relay::Value> fields;
  fields.reserve(outputs.size());
  for (const auto& output : outputs) fields.emplace_back(output);
  return relay::Value(std::move(fields));
}

std::vector<sim::Resource> NirExternalModule::resources() const {
  bool cpu = false;
  bool apu = false;
  for (const sim::DeviceKind device : package_->plan.placement) {
    if (sim::ResourceOf(device) == sim::Resource::kCpu) cpu = true;
    if (sim::ResourceOf(device) == sim::Resource::kApu) apu = true;
  }
  std::vector<sim::Resource> result;
  if (cpu) result.push_back(sim::Resource::kCpu);
  if (apu) result.push_back(sim::Resource::kApu);
  return result;
}

void NirExternalModule::AppendProfile(std::vector<relay::ProfileEntry>& out) const {
  const sim::CostModel cost_model(*package_->options.testbed);
  for (std::size_t i = 0; i < package_->model.operations().size(); ++i) {
    const neuron::Operation& op = package_->model.operations()[i];
    const sim::DeviceKind device = package_->plan.placement[i];
    const sim::OpDesc desc = neuron::DescribeOperation(package_->model, op);
    out.push_back(relay::ProfileEntry{std::string(name_) + "/" + NeuronOpTypeName(op.type),
                                      device, cost_model.OpMicros(desc, device), desc.macs});
  }
}

void EnsureNirCodegenRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    relay::ExternalCodegenRegistry::Global().Register(
        "nir", [](const relay::FunctionPtr& fn, const std::string& global_name,
                  const relay::BuildOptions& build_options) -> relay::ExternalModulePtr {
          neuron::CompilerOptions compiler_options;
          const auto devices_it = build_options.external_config.find("nir.devices");
          if (devices_it != build_options.external_config.end()) {
            compiler_options.target = neuron::TargetConfig::FromString(devices_it->second);
          }
          const auto policy_it = build_options.external_config.find("nir.policy");
          if (policy_it != build_options.external_config.end()) {
            if (policy_it->second == "first") {
              compiler_options.policy = neuron::PlannerPolicy::kFirstDevice;
            } else if (policy_it->second == "dynamic") {
              compiler_options.policy = neuron::PlannerPolicy::kDynamic;
            }
          }
          compiler_options.testbed = build_options.testbed;

          TNP_TRACE_SCOPE("byoc.codegen", std::string("nir:") + global_name);

          // Types inside the extracted function must be inferred locally
          // (Build re-infers main, but external bodies are opaque to it).
          relay::InferFunctionTypes(fn);

          RelayToNeuronConverter converter;
          neuron::NeuronModel model = converter.Convert(fn);
          const neuron::NeuronCompiler compiler(compiler_options);
          return std::make_shared<NirExternalModule>(global_name,
                                                     compiler.Compile(std::move(model),
                                                                      global_name));
        });
  });
}

relay::Module PartitionForNir(const relay::Module& module, const NirOptions& options) {
  EnsureNirCodegenRegistered();
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("byoc.partition", "PartitionForNir",
                support::TraceArg("target", options.target.ToString()));
  }
  const std::vector<sim::DeviceKind> devices = options.target.Devices();
  const relay::Module prepared =
      relay::Sequential({relay::InferType(), relay::SimplifyExpr(), relay::FoldConstant(),
                         relay::InferType()})
          .Run(module);
  relay::Module partitioned =
      relay::PartitionGraph(prepared, "nir", [devices](const relay::Call& call) {
        return NirSupported(call, devices);
      });
  if (scope.armed()) {
    int regions = 0;
    for (const auto& [name, fn] : partitioned.functions()) {
      if (!fn->compiler().empty()) ++regions;
    }
    scope.AddArg(support::TraceArg("nir_regions", regions));
  }
  return partitioned;
}

relay::BuildOptions MakeBuildOptions(const NirOptions& options) {
  EnsureNirCodegenRegistered();
  relay::BuildOptions build_options;
  build_options.enable_fusion = options.enable_tvm_fusion;
  build_options.host_device = sim::DeviceKind::kTvmCpu;
  build_options.testbed = options.testbed;
  build_options.external_config["nir.devices"] = options.target.ToString();
  switch (options.policy) {
    case neuron::PlannerPolicy::kFirstDevice:
      build_options.external_config["nir.policy"] = "first";
      break;
    case neuron::PlannerPolicy::kDynamic:
      build_options.external_config["nir.policy"] = "dynamic";
      break;
    case neuron::PlannerPolicy::kGreedyCost:
      build_options.external_config["nir.policy"] = "greedy";
      break;
  }
  return build_options;
}

}  // namespace core
}  // namespace tnp
