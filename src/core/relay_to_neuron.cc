#include "core/relay_to_neuron.h"

#include <memory>

#include "neuron/support_matrix.h"
#include "relay/visitor.h"
#include "support/logging.h"
#include "support/trace.h"

namespace tnp {
namespace core {

namespace {

using neuron::NeuronOpAttrs;
using neuron::NeuronOpType;
using neuron::Operation;
using relay::Attrs;
using relay::Call;

NeuronOpAttrs ConvAttrs(const Attrs& attrs) {
  NeuronOpAttrs a;
  a.strides = attrs.GetInts("strides", {1, 1});
  a.padding = attrs.GetInts("padding", {0, 0});
  a.dilation = attrs.GetInts("dilation", {1, 1});
  a.groups = attrs.GetInt("groups", 1);
  return a;
}

NeuronOpAttrs PoolAttrs(const Attrs& attrs) {
  NeuronOpAttrs a;
  a.pool_size = attrs.RequireInts("pool_size");
  a.strides = attrs.GetInts("strides", a.pool_size);
  a.padding = attrs.GetInts("padding", {0, 0});
  a.count_include_pad = attrs.GetInt("count_include_pad", 0) != 0;
  return a;
}

QuantParams AttrQuant(const Attrs& attrs, const char* scale_key, const char* zp_key) {
  return QuantParams(static_cast<float>(attrs.RequireDouble(scale_key)),
                     static_cast<std::int32_t>(attrs.RequireInt(zp_key)));
}

/// Quant params of the operand feeding slot 0 (pass-through ops).
QuantParams PassThroughQuant(const NodeEntry& entry, RelayToNeuronConverter& converter) {
  if (entry.inputs.empty()) return QuantParams();
  return converter.model().operand(entry.inputs.front()).quant;
}

void Emit(RelayToNeuronConverter& converter, NeuronOpType type, NeuronOpAttrs attrs,
          const std::vector<neuron::OperandId>& inputs, neuron::OperandId output) {
  Operation op;
  op.type = type;
  op.attrs = std::move(attrs);
  op.inputs = inputs;
  op.outputs = {output};
  converter.model().AddOperation(std::move(op));
}

// ------------------------------------------------------------ handler impls

/// Handler defined by two lambdas (keeps the dictionary compact).
class LambdaHandler final : public OpHandler {
 public:
  using CreateFn = std::function<void(const Call&, NodeEntry&, RelayToNeuronConverter&)>;

  LambdaHandler(std::vector<NeuronOpType> lowers_to, CreateFn create)
      : lowers_to_(std::move(lowers_to)), create_(std::move(create)) {}

  void CreateOp(const Call& call, NodeEntry& entry,
                RelayToNeuronConverter& converter) const override {
    create_(call, entry, converter);
  }

  std::vector<NeuronOpType> LowersTo() const override { return lowers_to_; }

 private:
  std::vector<NeuronOpType> lowers_to_;
  CreateFn create_;
};

}  // namespace

// ---------------------------------------------------------------- converter

RelayToNeuronConverter::RelayToNeuronConverter() = default;

neuron::OperandId RelayToNeuronConverter::MakeOutputOperand(const relay::Expr& expr,
                                                            QuantParams quant) {
  const relay::TensorType& type = expr.checked_type().AsTensor();
  neuron::Operand operand;
  operand.name = "t" + std::to_string(temp_counter_++);
  operand.shape = type.shape;
  operand.dtype = type.dtype;
  operand.quant = quant;
  operand.kind = neuron::OperandKind::kTemporary;
  return model_.AddOperand(std::move(operand));
}

neuron::OperandId RelayToNeuronConverter::OperandOf(const relay::ExprPtr& expr) const {
  const auto it = node_entry_dict_.find(expr.get());
  TNP_CHECK(it != node_entry_dict_.end()) << "expression not converted yet";
  TNP_CHECK_EQ(it->second.outputs.size(), 1u) << "expected single-output node";
  return it->second.outputs.front();
}

void RelayToNeuronConverter::EnsureOperandQuant(neuron::OperandId id,
                                                const QuantParams& quant) {
  neuron::Operand& operand = model_.operand(id);
  if (!operand.quant.valid && quant.valid) {
    operand.quant = quant;
    if (operand.data.defined()) operand.data.set_quant(quant);
  }
}

void RelayToNeuronConverter::VisitVar(const relay::VarPtr& var) {
  // Listing 1, visit_var: convert to a Neuron input operand; inputs and
  // outputs of the entry are the same operand.
  const relay::TensorType& type = var->checked_type().AsTensor();
  neuron::Operand operand;
  operand.name = var->name();
  operand.shape = type.shape;
  operand.dtype = type.dtype;
  operand.kind = neuron::OperandKind::kInput;
  const neuron::OperandId id = model_.AddOperand(std::move(operand));

  NodeEntry entry;
  entry.inputs = {id};
  entry.outputs = {id};
  node_entry_dict_[var.get()] = std::move(entry);
}

void RelayToNeuronConverter::VisitConstant(const relay::ConstantPtr& constant) {
  const neuron::OperandId id =
      model_.AddConstant("c" + std::to_string(temp_counter_++), constant->data());
  NodeEntry entry;
  entry.inputs = {id};
  entry.outputs = {id};
  node_entry_dict_[constant.get()] = std::move(entry);
}

void RelayToNeuronConverter::VisitTuple(const relay::TuplePtr& tuple) {
  // Listing 1, visit_tuple: gather the fields' outputs.
  NodeEntry entry;
  for (const auto& field : tuple->fields()) {
    const NodeEntry& field_entry = node_entry_dict_.at(field.get());
    entry.inputs.insert(entry.inputs.end(), field_entry.outputs.begin(),
                        field_entry.outputs.end());
  }
  entry.outputs = entry.inputs;
  node_entry_dict_[tuple.get()] = std::move(entry);
}

void RelayToNeuronConverter::VisitTupleGetItem(const relay::TupleGetItemPtr& get) {
  const NodeEntry& tuple_entry = node_entry_dict_.at(get->tuple().get());
  TNP_CHECK(get->index() >= 0 &&
            get->index() < static_cast<int>(tuple_entry.outputs.size()));
  NodeEntry entry;
  entry.inputs = {tuple_entry.outputs[static_cast<std::size_t>(get->index())]};
  entry.outputs = entry.inputs;
  node_entry_dict_[get.get()] = std::move(entry);
}

void RelayToNeuronConverter::VisitCall(const relay::CallPtr& call) {
  if (call->callee_kind() != relay::CalleeKind::kOp) {
    TNP_THROW(kUnsupportedOp)
        << "Relay->Neuron conversion supports plain operator calls only "
        << "(run conversion before fusion, or on partitioned regions)";
  }
  // Listing 1, visit_call: args were already visited (post-order DFS by
  // ExprVisitor); collect their outputs, then let the handler build the op.
  NodeEntry entry;
  for (const auto& arg : call->args()) {
    const NodeEntry& arg_entry = node_entry_dict_.at(arg.get());
    entry.inputs.insert(entry.inputs.end(), arg_entry.outputs.begin(),
                        arg_entry.outputs.end());
  }

  const std::string& op_name = call->op_name();
  if (!OpHandlerDict::Global().Has(op_name)) {
    TNP_THROW(kUnsupportedOp) << "no Neuron IR mapping for Relay operator '" << op_name << "'";
  }
  OpHandlerDict::Global().Get(op_name).CreateOp(*call, entry, *this);
  TNP_CHECK(!entry.outputs.empty()) << "handler for '" << op_name << "' produced no outputs";
  node_entry_dict_[call.get()] = std::move(entry);
}

neuron::NeuronModel RelayToNeuronConverter::Convert(const relay::FunctionPtr& fn) {
  TNP_CHECK(fn->checked_type().defined())
      << "Relay->Neuron conversion requires inferred types";
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("convert", "RelayToNeuron",
                support::TraceArg("relay_nodes",
                                  static_cast<int>(relay::PostOrder(fn->body()).size())));
  }
  model_ = neuron::NeuronModel();
  node_entry_dict_.clear();
  temp_counter_ = 0;

  std::vector<neuron::OperandId> model_inputs;
  for (const auto& param : fn->params()) {
    Visit(param);
    model_inputs.push_back(OperandOf(param));
  }
  Visit(fn->body());

  model_.SetModelInputs(std::move(model_inputs));
  model_.SetModelOutputs(node_entry_dict_.at(fn->body().get()).outputs);
  model_.Validate();
  if (scope.armed()) {
    scope.AddArg(support::TraceArg("neuron_ops",
                                   static_cast<int>(model_.operations().size())));
  }
  return std::move(model_);
}

// ----------------------------------------------------------- handler table

OpHandlerDict::OpHandlerDict() {
  const auto add = [this](const std::string& name, std::vector<NeuronOpType> lowers_to,
                          LambdaHandler::CreateFn fn) {
    handlers_[name] = std::make_unique<LambdaHandler>(std::move(lowers_to), std::move(fn));
  };

  // --- convolution / dense (float) ---
  add("nn.conv2d", {NeuronOpType::kConv2d},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kConv2d, ConvAttrs(call.attrs()), entry.inputs, out);
        entry.outputs = {out};
      });
  add("nn.dense", {NeuronOpType::kFullyConnected},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kFullyConnected, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- QNN convolution / dense: operator-oriented -> tensor-oriented ---
  add("qnn.conv2d", {NeuronOpType::kConv2d},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        cvt.EnsureOperandQuant(entry.inputs.at(0),
                               AttrQuant(call.attrs(), "input_scale", "input_zero_point"));
        cvt.EnsureOperandQuant(entry.inputs.at(1),
                               AttrQuant(call.attrs(), "weight_scale", "weight_zero_point"));
        const neuron::OperandId out = cvt.MakeOutputOperand(
            call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
        Emit(cvt, NeuronOpType::kConv2d, ConvAttrs(call.attrs()), entry.inputs, out);
        entry.outputs = {out};
      });
  add("qnn.dense", {NeuronOpType::kFullyConnected},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        cvt.EnsureOperandQuant(entry.inputs.at(0),
                               AttrQuant(call.attrs(), "input_scale", "input_zero_point"));
        cvt.EnsureOperandQuant(entry.inputs.at(1),
                               AttrQuant(call.attrs(), "weight_scale", "weight_zero_point"));
        const neuron::OperandId out = cvt.MakeOutputOperand(
            call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
        Emit(cvt, NeuronOpType::kFullyConnected, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- elementwise binary (float) ---
  const auto binary = [&add](const std::string& name, NeuronOpType type) {
    add(name, {type}, [type](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
      const neuron::OperandId out = cvt.MakeOutputOperand(call);
      Emit(cvt, type, NeuronOpAttrs(), entry.inputs, out);
      entry.outputs = {out};
    });
  };
  binary("add", NeuronOpType::kAdd);
  binary("subtract", NeuronOpType::kSub);
  binary("multiply", NeuronOpType::kMul);
  binary("divide", NeuronOpType::kDiv);
  binary("maximum", NeuronOpType::kMax);
  binary("minimum", NeuronOpType::kMin);

  // nn.bias_add lowers to ADD (the bias constant broadcasts along channels).
  add("nn.bias_add", {NeuronOpType::kAdd},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        // Reshape the bias constant to (1, C, 1, 1) broadcast form when the
        // data is NCHW; Neuron's ADD broadcasts like the host kernel.
        const neuron::OperandId data_id = entry.inputs.at(0);
        neuron::OperandId bias_id = entry.inputs.at(1);
        const neuron::Operand& data = cvt.model().operand(data_id);
        const neuron::Operand& bias = cvt.model().operand(bias_id);
        if (data.shape.rank() == 4 && bias.shape.rank() == 1) {
          if (bias.kind != neuron::OperandKind::kConstant) {
            TNP_THROW(kUnsupportedOp)
                << "nn.bias_add with a non-constant bias has no Neuron lowering";
          }
          neuron::Operand reshaped = bias;
          reshaped.shape = Shape({1, bias.shape[0], 1, 1});
          reshaped.data = reshaped.data.Reshape(reshaped.shape);
          bias_id = cvt.model().AddOperand(std::move(reshaped));
        }
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kAdd, NeuronOpAttrs(), {data_id, bias_id}, out);
        entry.outputs = {out};
      });

  // --- QNN elementwise ---
  const auto qnn_binary = [&add](const std::string& name, NeuronOpType type) {
    add(name, {type}, [type](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
      cvt.EnsureOperandQuant(entry.inputs.at(0),
                             AttrQuant(call.attrs(), "lhs_scale", "lhs_zero_point"));
      cvt.EnsureOperandQuant(entry.inputs.at(1),
                             AttrQuant(call.attrs(), "rhs_scale", "rhs_zero_point"));
      const neuron::OperandId out = cvt.MakeOutputOperand(
          call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
      Emit(cvt, type, NeuronOpAttrs(), entry.inputs, out);
      entry.outputs = {out};
    });
  };
  qnn_binary("qnn.add", NeuronOpType::kAdd);
  qnn_binary("qnn.mul", NeuronOpType::kMul);

  // --- activations ---
  add("nn.relu", {NeuronOpType::kRelu},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kRelu, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });
  add("qnn.relu", {NeuronOpType::kRelu},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kRelu, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });
  add("clip", {NeuronOpType::kClip},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        NeuronOpAttrs attrs;
        attrs.clip_min = static_cast<float>(call.attrs().RequireDouble("a_min"));
        attrs.clip_max = static_cast<float>(call.attrs().RequireDouble("a_max"));
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kClip, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- pooling (quant params pass through) ---
  const auto pool = [&add](const std::string& name, NeuronOpType type) {
    add(name, {type}, [type](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
      const neuron::OperandId out = cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
      Emit(cvt, type, PoolAttrs(call.attrs()), entry.inputs, out);
      entry.outputs = {out};
    });
  };
  pool("nn.max_pool2d", NeuronOpType::kMaxPool2d);
  pool("nn.avg_pool2d", NeuronOpType::kAvgPool2d);
  add("nn.global_avg_pool2d", {NeuronOpType::kGlobalAvgPool2d},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kGlobalAvgPool2d, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- softmax / batch norm ---
  add("nn.softmax", {NeuronOpType::kSoftmax},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        NeuronOpAttrs attrs;
        attrs.axis = static_cast<int>(call.attrs().GetInt("axis", -1));
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kSoftmax, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });
  add("nn.batch_norm", {NeuronOpType::kBatchNorm},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        NeuronOpAttrs attrs;
        attrs.epsilon = static_cast<float>(call.attrs().GetDouble("epsilon", 1e-5));
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kBatchNorm, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- data movement ---
  const auto reshape_like = [&add](const std::string& name) {
    add(name, {NeuronOpType::kReshape},
        [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
          NeuronOpAttrs attrs;
          attrs.newshape = call.checked_type().AsTensor().shape.dims();
          const neuron::OperandId out =
              cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
          Emit(cvt, NeuronOpType::kReshape, std::move(attrs), entry.inputs, out);
          entry.outputs = {out};
        });
  };
  reshape_like("reshape");
  reshape_like("nn.batch_flatten");

  add("concatenate", {NeuronOpType::kConcat},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        NeuronOpAttrs attrs;
        attrs.axis = static_cast<int>(call.attrs().GetInt("axis", 0));
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kConcat, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });
  add("qnn.concatenate", {NeuronOpType::kConcat},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const auto scales = call.attrs().GetDoubles("input_scales", {});
        const auto zps = call.attrs().GetInts("input_zero_points", {});
        TNP_CHECK_EQ(scales.size(), entry.inputs.size());
        for (std::size_t i = 0; i < entry.inputs.size(); ++i) {
          cvt.EnsureOperandQuant(entry.inputs[i],
                                 QuantParams(static_cast<float>(scales[i]),
                                             static_cast<std::int32_t>(zps[i])));
        }
        NeuronOpAttrs attrs;
        attrs.axis = static_cast<int>(call.attrs().GetInt("axis", 0));
        const neuron::OperandId out = cvt.MakeOutputOperand(
            call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
        Emit(cvt, NeuronOpType::kConcat, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });

  add("nn.pad", {NeuronOpType::kPad},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        NeuronOpAttrs attrs;
        attrs.pad_before = call.attrs().RequireInts("pad_before");
        attrs.pad_after = call.attrs().RequireInts("pad_after");
        attrs.pad_value = call.attrs().GetDouble("pad_value", 0.0);
        const neuron::OperandId out =
            cvt.MakeOutputOperand(call, PassThroughQuant(entry, cvt));
        Emit(cvt, NeuronOpType::kPad, std::move(attrs), entry.inputs, out);
        entry.outputs = {out};
      });

  // --- quantize / dequantize / requantize ---
  add("qnn.quantize", {NeuronOpType::kQuantize},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        const neuron::OperandId out = cvt.MakeOutputOperand(
            call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
        Emit(cvt, NeuronOpType::kQuantize, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });
  add("qnn.dequantize", {NeuronOpType::kDequantize},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        cvt.EnsureOperandQuant(entry.inputs.at(0),
                               AttrQuant(call.attrs(), "input_scale", "input_zero_point"));
        const neuron::OperandId out = cvt.MakeOutputOperand(call);
        Emit(cvt, NeuronOpType::kDequantize, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });
  add("qnn.requantize", {NeuronOpType::kRequantize},
      [](const Call& call, NodeEntry& entry, RelayToNeuronConverter& cvt) {
        cvt.EnsureOperandQuant(entry.inputs.at(0),
                               AttrQuant(call.attrs(), "input_scale", "input_zero_point"));
        const neuron::OperandId out = cvt.MakeOutputOperand(
            call, AttrQuant(call.attrs(), "output_scale", "output_zero_point"));
        Emit(cvt, NeuronOpType::kRequantize, NeuronOpAttrs(), entry.inputs, out);
        entry.outputs = {out};
      });
}

const OpHandlerDict& OpHandlerDict::Global() {
  static const OpHandlerDict* dict = new OpHandlerDict();
  return *dict;
}

const OpHandler& OpHandlerDict::Get(const std::string& relay_op) const {
  const auto it = handlers_.find(relay_op);
  if (it == handlers_.end()) {
    TNP_THROW(kUnsupportedOp) << "no Neuron IR mapping for Relay operator '" << relay_op << "'";
  }
  return *it->second;
}

std::vector<std::string> OpHandlerDict::SupportedRelayOps() const {
  std::vector<std::string> names;
  names.reserve(handlers_.size());
  for (const auto& [name, handler] : handlers_) names.push_back(name);
  return names;
}

bool NirSupported(const relay::Call& call, const std::vector<sim::DeviceKind>& devices) {
  if (call.callee_kind() != relay::CalleeKind::kOp) return false;
  if (!OpHandlerDict::Global().Has(call.op_name())) return false;
  for (const neuron::NeuronOpType type :
       OpHandlerDict::Global().Get(call.op_name()).LowersTo()) {
    bool supported = false;
    for (const sim::DeviceKind device : devices) {
      if (neuron::DeviceSupports(device, type)) {
        supported = true;
        break;
      }
    }
    if (!supported) return false;
  }
  return true;
}

}  // namespace core
}  // namespace tnp
