// Computation scheduling (paper Section 5.1) and pipeline scheduling
// (Section 5.2).
//
// Computation scheduling is model-level: profile every flow permutation per
// model and pin each model to its fastest *supported* flow. Pipeline
// scheduling adds the resource-exclusivity constraint (models must not use
// the mobile CPU or APU simultaneously) and overlaps the dependent
// three-model chain across frames; the paper's prototype moves the object
// detection model from CPU+APU to CPU-only so it can run concurrently with
// the APU-resident emotion model of the previous frame.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/flows.h"
#include "sim/timeline.h"

namespace tnp {
namespace core {

/// Per-flow latency of one model (missing entries = unsupported flow).
struct ModelProfile {
  std::string model;
  /// Metrics-registry prefix under which ProfileModel published this
  /// profile's per-flow latencies as gauges ("<prefix>/<flow>/us"). Unique
  /// per ProfileModel call so repeated profiling (ablation benches) never
  /// overwrites an earlier profile. Empty for hand-built profiles.
  std::string metrics_prefix;
  std::map<FlowKind, double> latency_us;
  std::map<FlowKind, std::string> errors;  ///< why an unsupported flow failed
  /// Resources the compiled model actually occupies per flow (from
  /// InferenceSession::UsedResources). Falls back to FlowResources(flow)
  /// when absent (hand-built profiles in tests).
  std::map<FlowKind, std::vector<sim::Resource>> resources;

  std::vector<sim::Resource> ResourcesOf(FlowKind flow) const {
    const auto it = resources.find(flow);
    return it != resources.end() ? it->second : FlowResources(flow);
  }
};

/// Estimate latency of every flow permutation with the static simulator.
///
/// Trace-driven: each flow's simulated latency is emitted as an explicit-
/// duration "scheduler" span (tracing is force-enabled for the call), and
/// the returned profile is read back from those recorded spans. Latencies
/// are also published to the metrics registry under `metrics_prefix`.
ModelProfile ProfileModel(const relay::Module& module, const std::string& name,
                          const FlowCompileSettings& settings = {});

struct Assignment {
  FlowKind flow = FlowKind::kTvmOnly;
  double latency_us = 0.0;
};

/// Flow assignment for serving one model: the primary (fastest) flow plus
/// the next-best CPU-only flow the server degrades to when the primary
/// resource's queue saturates. `cpu_fallback` is absent when the primary is
/// already CPU-only or the model supports no CPU-only flow.
struct ServePlan {
  Assignment primary;
  std::optional<Assignment> cpu_fallback;
};

class ComputationScheduler {
 public:
  /// Fastest supported flow (the Section 5.1 model-level policy).
  static Assignment BestFlow(const ModelProfile& profile);

  /// Fastest supported flow whose resource usage is within `allowed`.
  static std::optional<Assignment> BestFlowWithin(const ModelProfile& profile,
                                                  const std::vector<sim::Resource>& allowed);

  /// Primary + graceful-degradation assignment for the serving runtime.
  /// Throws (like BestFlow) when the model supports no flow at all.
  static ServePlan PlanForServing(const ModelProfile& profile);
};

// ---------------------------------------------------------------- pipeline

struct PipelineStage {
  std::string name;
  FlowKind flow = FlowKind::kTvmOnly;
  double latency_us = 0.0;
  /// Actual resource set (empty = derive conservatively from the flow).
  std::vector<sim::Resource> resource_set;

  std::vector<sim::Resource> resources() const {
    return resource_set.empty() ? FlowResources(flow) : resource_set;
  }
};

struct PipelineResult {
  std::vector<PipelineStage> stages;
  sim::Timeline timeline;
  double makespan_us = 0.0;
  double sequential_us = 0.0;  ///< no-overlap baseline
  double speedup = 1.0;
  double throughput_fps = 0.0;
};

/// Simulate `num_frames` frames through the dependent stage chain with
/// exclusive resource use (stage s of frame f waits for stage s-1 of the
/// same frame; resources serialize everything else).
PipelineResult SchedulePipeline(const std::vector<PipelineStage>& stages, int num_frames);

/// Pick a flow per stage maximizing pipelined throughput under resource
/// exclusivity, by exhaustive search over supported flow combinations (the
/// "harder computation scheduling" the paper leaves as future work —
/// tractable here because there are at most 7^3 combinations).
std::vector<PipelineStage> ChoosePipelineAssignment(const std::vector<ModelProfile>& profiles,
                                                    int num_frames = 16);

/// The paper's Figure-5 prototype policy: every stage takes its best flow,
/// except that the *first* stage (object detection, the producer for the
/// next frame) is moved to its best CPU-only flow so it never contends with
/// downstream APU work.
std::vector<PipelineStage> PaperPrototypeAssignment(const std::vector<ModelProfile>& profiles);

}  // namespace core
}  // namespace tnp
