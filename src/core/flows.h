// The seven compilation/execution permutations of the paper's evaluation
// (Section 5/6):
//   TVM-only, TVM BYOC with {CPU, APU, CPU+APU}, NeuroPilot-only with
//   {CPU, APU, CPU+APU}.
//
// CompileFlow returns a uniform InferenceSession for each, or a
// FlowUnsupported error carrying why (NeuroPilot-only flows fail when the
// model contains ops outside Neuron's vocabulary or outside the enabled
// devices' support — the paper's missing Figure-4/6 bars).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/nir.h"
#include "relay/module.h"

namespace tnp {
namespace core {

enum class FlowKind : std::uint8_t {
  kTvmOnly,
  kByocCpu,
  kByocApu,
  kByocCpuApu,
  kNpCpu,
  kNpApu,
  kNpCpuApu,
};

inline constexpr FlowKind kAllFlows[] = {
    FlowKind::kTvmOnly, FlowKind::kByocCpu,  FlowKind::kByocApu, FlowKind::kByocCpuApu,
    FlowKind::kNpCpu,   FlowKind::kNpApu,    FlowKind::kNpCpuApu,
};

const char* FlowName(FlowKind flow);

/// Resources a flow occupies while running (pipeline exclusivity, Fig. 5).
std::vector<sim::Resource> FlowResources(FlowKind flow);

/// Uniform inference handle over all seven flows.
class InferenceSession {
 public:
  virtual ~InferenceSession() = default;

  virtual void SetInput(const std::string& name, NDArray value) = 0;
  virtual void Run() = 0;
  virtual int NumOutputs() const = 0;
  virtual NDArray GetOutput(int index = 0) const = 0;

  /// Simulated time of the last Run().
  virtual const sim::SimClock& last_clock() const = 0;

  /// Static latency estimate: walks the compiled program without executing
  /// kernels (usable at full model scale).
  virtual sim::SimClock EstimateLatency() const = 0;

  /// Number of NIR subgraphs (0 for TVM-only; 1 for NeuroPilot-only).
  virtual int NumPartitions() const = 0;
  /// Total ops inside NIR subgraphs.
  virtual int NumExternalOps() const = 0;

  /// Physical resources this compiled model actually occupies. Tighter than
  /// FlowResources(flow): e.g. a BYOC(APU) model whose graph offloads
  /// completely has no host ops and occupies only the APU — which is what
  /// lets the paper's pipeline overlap it with CPU-resident detection.
  virtual std::vector<sim::Resource> UsedResources() const = 0;
};

using InferenceSessionPtr = std::shared_ptr<InferenceSession>;

/// Abstract compiled-artifact cache consulted by CompileFlow (load-or-build).
/// Keys are opaque content strings assembled by CompileFlow — the serialized
/// module bytes plus flow and settings — which the implementation hashes
/// together with its on-disk format version. Implemented by
/// artifact::ArtifactStore; declared here so core/ does not depend on the
/// artifact layer.
class CompiledArtifactCache {
 public:
  virtual ~CompiledArtifactCache() = default;

  /// Return the cached compiled module, or nullptr on a clean miss (no entry
  /// for the key). A present-but-corrupt entry throws a typed error — the
  /// cache never silently recompiles over stale or damaged bytes.
  virtual relay::CompiledModulePtr TryLoadModule(const std::string& key) = 0;
  virtual void SaveModule(const std::string& key,
                          const relay::CompiledModule& compiled) = 0;

  /// Same contract for standalone NeuronPackages (NeuroPilot-only flows).
  virtual neuron::NeuronPackagePtr TryLoadPackage(const std::string& key) = 0;
  virtual void SavePackage(const std::string& key,
                           const neuron::NeuronPackage& package) = 0;
};

struct FlowCompileSettings {
  const sim::Testbed* testbed = &sim::Testbed::Dimensity800();
  neuron::PlannerPolicy policy = neuron::PlannerPolicy::kGreedyCost;
  bool enable_tvm_fusion = true;
  /// Optional load-or-build cache: CompileFlow maps a stored artifact
  /// instead of compiling when the (model, flow, settings) key hits, and
  /// publishes freshly compiled artifacts back. Null disables caching.
  /// Only the built-in testbed is cacheable; custom testbeds bypass the
  /// cache (their cost tables cannot be rebound by name on load).
  std::shared_ptr<CompiledArtifactCache> artifact_cache;
};

/// Compile `module` under `flow`. Throws tnp::Error (kUnsupportedOp /
/// kCompileError) when the flow cannot run the model.
InferenceSessionPtr CompileFlow(const relay::Module& module, FlowKind flow,
                                const FlowCompileSettings& settings = {});

/// Non-throwing variant for benchmark tables: returns nullptr and fills
/// `error` when unsupported.
InferenceSessionPtr TryCompileFlow(const relay::Module& module, FlowKind flow,
                                   std::string* error,
                                   const FlowCompileSettings& settings = {});

}  // namespace core
}  // namespace tnp
