// Load generation against an InferenceServer: simulated camera streams in
// closed-loop (each client waits for its response before submitting the
// next frame — measures capacity) and open-loop (requests arrive on a fixed
// schedule regardless of completions — measures overload behaviour: shed,
// fallback, queue bounds).
//
// Streams reuse one set of input tensors and pre-allocated output buffers
// per client, so a warm serving loop driven by these helpers performs zero
// tensor heap allocations (the acceptance criterion the throughput bench
// asserts).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/server.h"

namespace tnp {
namespace serve {

/// One simulated client stream: which model it hits and the tensors it
/// sends. `inputs` and `output_buffers` are reused across every request of
/// the stream (a closed-loop client has at most one request in flight, so
/// reuse is race-free; open-loop streams must leave output_buffers empty).
struct ClientStream {
  std::string model;
  std::vector<std::pair<std::string, NDArray>> inputs;
  std::vector<NDArray> output_buffers;
  int priority = 0;
  /// Per-request deadline relative to submission (0 = none).
  double relative_deadline_us = 0.0;
  /// Closed-loop inter-frame gap: the stream "thinks" (camera exposure,
  /// pre-processing, network) for this long between receiving one response
  /// and submitting the next frame. One such stream leaves the device idle
  /// most of the time; multiplexing many of them is where serving
  /// throughput scaling comes from (0 = submit back-to-back).
  double think_time_us = 0.0;
};

struct LoadResult {
  std::int64_t submitted = 0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t errors = 0;
  std::int64_t fell_back = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;  ///< completed-ok requests per second

  void Count(const ServeResponse& response) {
    switch (response.status) {
      case ServeStatus::kOk: ++ok; break;
      case ServeStatus::kShed: ++shed; break;
      case ServeStatus::kExpired: ++expired; break;
      case ServeStatus::kError: ++errors; break;
    }
    if (response.fell_back) ++fell_back;
  }
};

inline ServeRequest MakeRequest(const ClientStream& stream, InferenceServer& server,
                                std::uint64_t client_id) {
  ServeRequest request;
  request.model = stream.model;
  request.inputs = stream.inputs;
  request.output_buffers = stream.output_buffers;
  request.priority = stream.priority;
  if (stream.relative_deadline_us > 0.0) {
    request.deadline_us = server.NowUs() + stream.relative_deadline_us;
  }
  request.client_id = client_id;
  return request;
}

/// Closed loop: one thread per stream, each submitting `requests_per_client`
/// back-to-back requests (submit -> wait -> submit).
inline LoadResult RunClosedLoop(InferenceServer& server,
                                const std::vector<ClientStream>& streams,
                                int requests_per_client) {
  std::vector<LoadResult> partials(streams.size());
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  for (std::size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&server, &streams, &partials, c, requests_per_client] {
      const ClientStream& stream = streams[c];
      LoadResult& partial = partials[c];
      for (int i = 0; i < requests_per_client; ++i) {
        std::future<ServeResponse> future =
            server.Submit(MakeRequest(stream, server, static_cast<std::uint64_t>(c)));
        ++partial.submitted;
        partial.Count(future.get());
        if (stream.think_time_us > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::micro>(stream.think_time_us));
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  LoadResult total;
  for (const LoadResult& partial : partials) {
    total.submitted += partial.submitted;
    total.ok += partial.ok;
    total.shed += partial.shed;
    total.expired += partial.expired;
    total.errors += partial.errors;
    total.fell_back += partial.fell_back;
  }
  total.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  total.throughput_rps = total.wall_ms > 0.0 ? total.ok / (total.wall_ms / 1000.0) : 0.0;
  return total;
}

/// Open loop: submit `total_requests` spread round-robin over `streams` at a
/// fixed aggregate `rate_rps`, never waiting for completions; futures are
/// collected and drained at the end. A rate beyond the server's capacity
/// drives the queues to their bound and forces shed/fallback decisions.
inline LoadResult RunOpenLoop(InferenceServer& server,
                              const std::vector<ClientStream>& streams,
                              int total_requests, double rate_rps) {
  LoadResult result;
  const auto start = std::chrono::steady_clock::now();
  const std::chrono::duration<double> interval(rate_rps > 0.0 ? 1.0 / rate_rps : 0.0);
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(static_cast<std::size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    const ClientStream& stream = streams[static_cast<std::size_t>(i) % streams.size()];
    futures.push_back(
        server.Submit(MakeRequest(stream, server, static_cast<std::uint64_t>(i))));
    ++result.submitted;
    if (interval.count() > 0.0) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      interval * (i + 1)));
    }
  }
  for (auto& future : futures) result.Count(future.get());
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  result.throughput_rps = result.wall_ms > 0.0 ? result.ok / (result.wall_ms / 1000.0) : 0.0;
  return result;
}

}  // namespace serve
}  // namespace tnp
