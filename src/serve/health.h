// Per-server health state machine: Healthy -> Degraded -> Unhealthy, derived
// from the SLO burn rates (support/slo.h) and the serving layer's own
// saturation signals (queue depth, shed/fallback fractions, session-pool
// occupancy).
//
// The state machine is asymmetric on purpose: it escalates *immediately*
// when any signal crosses its threshold (overload must tighten admission
// now), but recovers one level at a time only after `recovery_ticks`
// consecutive clean evaluations — hysteresis that keeps the server from
// flapping between states on a noisy boundary.
//
// Consequences of each state:
//
//   - kHealthy:   nothing changes.
//   - kDegraded:  with `tighten_admission` enabled, InferenceServer::Submit
//                 sheds requests below `degraded_min_priority` at admission,
//                 preserving budget for the traffic that matters.
//   - kUnhealthy: admission tightens further (`unhealthy_min_priority`), the
//                 flight recorder fires exactly once with the transition
//                 reason (the moments *before* going unhealthy are the ones
//                 worth keeping), and /healthz answers 503 so an external
//                 balancer drains the instance.
//
// Every transition publishes the "serve/health/state" gauge, increments
// "serve/health/transitions", and emits a trace instant event. Evaluation
// runs either on the monitor's own cadence thread (Start) or deterministic-
// ally via Evaluate(HealthSignals) in tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/slo.h"
#include "support/timeseries.h"

namespace tnp {
namespace support {
class DebugHttpServer;
}  // namespace support

namespace serve {

enum class HealthState : int { kHealthy = 0, kDegraded = 1, kUnhealthy = 2 };
const char* HealthStateName(HealthState state);

/// One evaluation's inputs. The monitor fills burn/shed/fallback from the
/// time-series collector; queue/pool saturation come from the signal source
/// the server installs (tests inject the whole struct directly).
struct HealthSignals {
  double worst_burn = 0.0;        ///< worst confirmed SLO burn (min of windows)
  double queue_saturation = 0.0;  ///< max over queues of size/capacity
  double shed_fraction = 0.0;     ///< sheds / submissions over the short window
  double fallback_fraction = 0.0; ///< fallbacks / submissions over the short window
  double pool_saturation = 0.0;   ///< sessions in flight / pool capacity
};

/// Escalation thresholds per signal. A signal >= its degraded bound votes
/// for kDegraded; >= its unhealthy bound votes for kUnhealthy; the target
/// state is the worst vote. Set a bound above any reachable value to opt a
/// signal out (pool saturation defaults to opted out: a fully-busy pool is
/// normal at peak throughput).
struct HealthThresholds {
  double degraded_burn = 1.0;
  double unhealthy_burn = 6.0;
  double degraded_queue = 0.75;
  double unhealthy_queue = 1.0;
  double degraded_shed_fraction = 0.05;
  double unhealthy_shed_fraction = 0.25;
  double degraded_fallback_fraction = 2.0;  ///< opted out by default
  double unhealthy_fallback_fraction = 2.0;
  double degraded_pool = 2.0;  ///< opted out by default
  double unhealthy_pool = 2.0;
  /// Consecutive evaluations with a calmer target before the state steps
  /// *down* one level (escalation is immediate).
  int recovery_ticks = 3;
};

struct HealthOptions {
  bool enabled = true;
  /// Let the server shed low-priority work at admission while Degraded or
  /// Unhealthy. Off by default: observation never changes behaviour unless
  /// asked to.
  bool tighten_admission = false;
  /// Lowest priority still admitted in each tightened state.
  int degraded_min_priority = 1;
  int unhealthy_min_priority = 2;
  /// Cadence of the monitor's own evaluation thread (Start); 0 disables the
  /// thread, leaving evaluation to explicit Evaluate() calls.
  int auto_evaluate_period_ms = 250;
  /// Advance the time-series collector each evaluation pass. Turn off when
  /// something else (TelemetrySampler, a test's injected clock) owns Tick().
  bool auto_tick_collector = true;
  HealthThresholds thresholds;
  /// Extra SLO objectives evaluated alongside the built-in availability
  /// objective (sheds per submission, target 99%).
  std::vector<support::slo::Objective> objectives;
  support::slo::SloTrackerOptions slo;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthOptions options = {},
                         support::timeseries::Collector* collector = nullptr);
  ~HealthMonitor();  ///< Stops the cadence thread if running.

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Install the callback that fills queue/pool saturation (the server's
  /// internals). Called under no monitor lock.
  void SetSignalSource(std::function<void(HealthSignals*)> source);

  /// Start the cadence thread (no-op when disabled or period is 0).
  void Start();
  void Stop();  ///< Idempotent join.

  /// One evaluation pass: tick the collector (if owned), evaluate the SLOs,
  /// gather signals, step the state machine. Returns the resulting state.
  HealthState Evaluate();
  /// Deterministic variant for tests: SLOs are still evaluated (for gauge
  /// publication) but the state machine sees exactly `signals`.
  HealthState Evaluate(const HealthSignals& signals);

  HealthState state() const { return state_.load(std::memory_order_acquire); }
  /// Whether a request of `priority` passes the health admission gate.
  bool AdmitsPriority(int priority) const;
  /// Lowest admitted priority right now (INT_MIN when not tightening).
  int min_admit_priority() const;

  /// Signals seen by the most recent evaluation.
  HealthSignals last_signals() const;
  /// State transitions since construction.
  std::int64_t transitions() const;

  support::slo::SloTracker& slo_tracker() { return slo_; }
  const HealthOptions& options() const { return options_; }

  /// {"state": "healthy", "since_transitions": N, "signals": {...},
  ///  "objectives": [...]} — the /healthz document.
  std::string HealthzJson() const;
  /// Serve /healthz on `server`: 200 while Healthy/Degraded, 503 while
  /// Unhealthy (balancer semantics: Degraded still serves).
  void RegisterWith(support::DebugHttpServer& server);

 private:
  HealthState TargetState(const HealthSignals& signals) const;
  HealthState Step(const HealthSignals& signals);
  void Loop();

  HealthOptions options_;
  support::timeseries::Collector* collector_;
  support::slo::SloTracker slo_;

  std::atomic<HealthState> state_{HealthState::kHealthy};
  mutable std::mutex mutex_;
  std::function<void(HealthSignals*)> signal_source_;
  HealthSignals last_signals_;
  int calm_ticks_ = 0;  ///< consecutive evaluations targeting a calmer state
  std::int64_t transitions_ = 0;

  std::condition_variable cv_;
  bool thread_running_ = false;
  bool thread_stop_ = false;
  std::thread thread_;
};

}  // namespace serve
}  // namespace tnp
