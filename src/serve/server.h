// In-process inference server: multiplexes many concurrent client request
// streams onto the one-CPU/one-APU device.
//
// Architecture (one instance = one device):
//
//   Submit ──► admission control ──► per-resource RequestQueue (CPU / APU)
//                   │ full?                        │ arms the queue's pump
//                   ├─ eligible: re-route to the   ▼
//                   │  scheduler's next-best   pump task per resource on the
//                   │  CPU-only flow (serve/     shared ThreadPool:
//                   │  fallback counter)          TryPopBatch (micro-batcher)
//                   └─ otherwise: shed            → SessionPool checkout
//                      (serve/shed counter)       → ResourceLocks::Acquire
//                                                 → run batch, answer futures
//
// The server owns no threads: each queue has an event-driven pump — an
// armed/dirty flag word plus at most one live pool task — that Submit arms
// on every successful push and that drains batches until the queue is
// empty. Batch execution therefore shares workers with the kernels it
// invokes (nested ParallelFor fans out on the same pool), and the
// ResourceLocks hold marks the task as blocking so the pool back-fills a
// spare worker while a batch occupies an exclusive device.
//
// Requests route to the queue of the primary resource their model's flow
// occupies (APU when the flow touches the APU, CPU otherwise). A CPU+APU
// flow dispatches from the APU queue but locks both resources while running,
// extending pipeline_executor.h's exclusivity discipline across all clients.
//
// Every layer publishes metrics: queue-depth gauges with high-watermarks,
// shed/fallback/expired counters, end-to-end latency histograms with
// p50/p95/p99 ("serve/request/us", per-model "serve/model/<name>/us"), and
// micro-batch size ("serve/batch/size").
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline_executor.h"
#include "core/scheduler.h"
#include "relay/module.h"
#include "serve/health.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/session_pool.h"
#include "support/thread_pool.h"

namespace tnp {
namespace serve {

/// One model the server offers, with the flows the scheduler assigned to it.
/// Build by hand (tests: pick flows directly) or via MakeServedModel (profile
/// all seven flows and take the scheduler's serving plan).
struct ServedModel {
  std::string name;
  relay::Module module;
  core::ServePlan plan;
  /// Resources the compiled model occupies per flow; missing entries derive
  /// conservatively from FlowResources(flow).
  std::map<core::FlowKind, std::vector<sim::Resource>> resources;
  core::FlowCompileSettings settings;
};

/// Profile `module` across all flows and serve it on the scheduler's plan.
ServedModel MakeServedModel(const std::string& name, relay::Module module,
                            const core::FlowCompileSettings& settings = {});

struct ServerOptions {
  /// Per-resource queue bound; admission beyond it sheds or falls back.
  std::size_t queue_capacity = 16;
  /// Micro-batcher: coalesce up to this many same-session requests per
  /// dispatch, waiting at most batch_window_us after the first request
  /// (0 = drain greedily, never wait).
  std::size_t max_batch = 4;
  double batch_window_us = 0.0;
  /// Warm sessions kept per model x flow.
  std::size_t sessions_per_flow = 1;
  /// Compile every session in the constructor so the request path never
  /// compiles (serving steady state starts warm).
  bool warm_start = true;
  /// Resource-exclusivity domain; nullptr = the process-wide Global()
  /// device. Inject a private instance to host several independent servers
  /// (= several simulated devices) in one process.
  core::ResourceLocks* locks = nullptr;
  /// Health state machine (serve/health.h). Enabled by default as pure
  /// observation; set health.tighten_admission to let Degraded/Unhealthy
  /// states shed low-priority requests at admission.
  HealthOptions health;
};

class InferenceServer {
 public:
  InferenceServer(std::vector<ServedModel> models, ServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admit one request. Returns immediately; the future resolves when the
  /// request is served, shed, expired, or failed. Throws kInvalidArgument
  /// for unknown models.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Stop admitting, drain already-admitted requests, and wait for every
  /// pump task to retire. Idempotent; the destructor calls it.
  void Shutdown();

  /// Microseconds since server start (the clock Submit deadlines use).
  double NowUs() const;

  const ServedModel* FindModel(const std::string& name) const;
  const ServerOptions& options() const { return options_; }
  SessionPool& pool() { return pool_; }
  /// The server's health state machine; wired to the queues and pool via a
  /// signal source. Call health().Start() to run it on its own cadence, or
  /// health().Evaluate() from an existing one (tests, TelemetrySampler).
  HealthMonitor& health() { return *health_; }

 private:
  /// Queue a flow dispatches from: APU when the flow occupies it.
  std::size_t QueueIndexOf(const ServedModel& model, core::FlowKind flow) const;
  std::vector<sim::Resource> ResourcesOf(const ServedModel& model,
                                         core::FlowKind flow) const;
  /// Mark `queue_index`'s pump runnable, posting a pool task if none is
  /// live. Called on every successful push and at shutdown-drain.
  void ArmPump(std::size_t queue_index);
  /// The pump task body: drain batches until the queue is empty, then
  /// disarm (re-running immediately if an arm raced the disarm).
  void RunPump(std::size_t queue_index);
  void RunBatch(std::vector<QueuedRequest> batch, const std::string& queue_name);
  void Respond(QueuedRequest entry, ServeResponse response);

  static constexpr std::uint32_t kPumpArmed = 1u;
  static constexpr std::uint32_t kPumpDirty = 2u;

  /// The pump task payload: trivially copyable so it rides the pool's
  /// inline zero-allocation task slots.
  struct PumpTask {
    InferenceServer* server;
    std::size_t queue_index;
    void operator()() const { server->RunPump(queue_index); }
  };

  ServerOptions options_;
  std::map<std::string, ServedModel> models_;
  core::ResourceLocks* locks_;
  SessionPool pool_;
  std::unique_ptr<HealthMonitor> health_;
  std::size_t pool_capacity_ = 0;  ///< registered sessions (saturation denom)
  /// Indexed by sim::Resource value (kCpu, kApu).
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::array<std::atomic<std::uint32_t>, sim::kNumResources> pump_state_{};
  std::chrono::steady_clock::time_point epoch_;
  bool shutdown_ = false;
  std::mutex shutdown_mutex_;
  /// Joins every pump task. Declared last: it is destroyed (= waited on)
  /// before any member a straggling pump could still touch.
  support::TaskGroup pump_tasks_;
};

}  // namespace serve
}  // namespace tnp
