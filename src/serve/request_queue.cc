#include "serve/request_queue.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/logging.h"
#include "support/trace.h"

namespace tnp {
namespace serve {

namespace {

/// Deadline for ordering purposes: requests without one sort last.
double OrderingDeadline(const QueuedRequest& entry) {
  return entry.request.deadline_us > 0.0 ? entry.request.deadline_us
                                         : std::numeric_limits<double>::infinity();
}

/// True when `a` should dispatch before `b`.
bool Before(const QueuedRequest& a, const QueuedRequest& b) {
  if (a.request.priority != b.request.priority) {
    return a.request.priority > b.request.priority;
  }
  const double da = OrderingDeadline(a);
  const double db = OrderingDeadline(b);
  if (da != db) return da < db;
  return a.seq < b.seq;
}

}  // namespace

RequestQueue::RequestQueue(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      capacity_(capacity),
      depth_gauge_(support::metrics::Registry::Global().GetGauge("serve/queue/" + name_ +
                                                                 "/depth")),
      admitted_(support::metrics::Registry::Global().GetCounter("serve/queue/" + name_ +
                                                                "/admitted")) {
  TNP_CHECK_GT(capacity_, 0u);
}

bool RequestQueue::TryPush(QueuedRequest& entry) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    entry.seq = next_seq_++;
    items_.push_back(std::move(entry));
    RecordDepth();
    admitted_.Increment();
  }
  cv_.notify_all();
  return true;
}

std::optional<QueuedRequest> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;
  QueuedRequest entry;
  TakeAt(BestIndex(), &entry);
  return entry;
}

std::vector<QueuedRequest> RequestQueue::PopBatch(std::size_t max_batch, double window_us) {
  TNP_CHECK_GT(max_batch, 0u);
  std::vector<QueuedRequest> batch;

  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return batch;
  CollectBatchLocked(lock, max_batch, window_us, &batch);
  return batch;
}

std::vector<QueuedRequest> RequestQueue::TryPopBatch(std::size_t max_batch,
                                                     double window_us) {
  TNP_CHECK_GT(max_batch, 0u);
  std::vector<QueuedRequest> batch;

  std::unique_lock<std::mutex> lock(mutex_);
  if (items_.empty()) return batch;
  CollectBatchLocked(lock, max_batch, window_us, &batch);
  return batch;
}

void RequestQueue::CollectBatchLocked(std::unique_lock<std::mutex>& lock,
                                      std::size_t max_batch, double window_us,
                                      std::vector<QueuedRequest>* batch) {
  QueuedRequest first;
  TakeAt(BestIndex(), &first);
  const std::string key = first.session_key;
  batch->push_back(std::move(first));

  const auto window_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::micro>(window_us));
  while (batch->size() < max_batch) {
    const std::size_t index = BestIndexOf(key);
    if (index != kNpos) {
      QueuedRequest entry;
      TakeAt(index, &entry);
      batch->push_back(std::move(entry));
      continue;
    }
    if (closed_ || window_us <= 0.0) break;
    // Wait for stragglers bound for the same session; any push or Close
    // wakes us to re-scan.
    if (cv_.wait_until(lock, window_end) == std::cv_status::timeout) break;
  }
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

std::size_t RequestQueue::BestIndex() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < items_.size(); ++i) {
    if (Before(items_[i], items_[best])) best = i;
  }
  return best;
}

std::size_t RequestQueue::BestIndexOf(const std::string& session_key) const {
  std::size_t best = kNpos;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].session_key != session_key) continue;
    if (best == kNpos || Before(items_[i], items_[best])) best = i;
  }
  return best;
}

std::size_t RequestQueue::TakeAt(std::size_t index, QueuedRequest* out) {
  *out = std::move(items_[index]);
  items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(index));
  RecordDepth();
  return index;
}

void RequestQueue::RecordDepth() {
  const double depth = static_cast<double>(items_.size());
  depth_gauge_.Set(depth);
  TNP_TRACE_COUNTER("serve", "queue/" + name_ + "/depth", depth);
}

}  // namespace serve
}  // namespace tnp
