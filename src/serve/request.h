// Request/response types of the serving runtime (src/serve/).
//
// A ServeRequest names a served model and carries its input tensors; the
// server answers with a ServeResponse through a std::future. Requests may
// carry pre-allocated output buffers: when present (and shape-compatible)
// the server copies results into them, which is what lets a warm serving
// loop run with zero tensor heap allocations end to end — the same
// caller-provided-buffer discipline the MicroTVM AoT runtime uses.
#pragma once

#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/flows.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace serve {

enum class ServeStatus : std::uint8_t {
  kOk,        ///< ran to completion; outputs are valid
  kShed,      ///< rejected at admission (queue full, no eligible fallback)
  kExpired,   ///< deadline passed before dispatch
  kError,     ///< execution failed; see ServeResponse::error
};

inline const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kExpired: return "expired";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

struct ServeRequest {
  std::string model;
  std::vector<std::pair<std::string, NDArray>> inputs;

  /// Higher runs first within a queue (ties broken by deadline, then FIFO).
  int priority = 0;

  /// Absolute server-clock time (InferenceServer::NowUs) after which the
  /// request is dropped instead of dispatched. 0 = no deadline.
  double deadline_us = 0.0;

  /// Optional caller-owned result buffers (one per model output). When set
  /// and shape/dtype-compatible, outputs are copied into these tensors and
  /// no allocation happens on the serving path; otherwise the server
  /// returns freshly allocated copies.
  std::vector<NDArray> output_buffers;

  /// Client stream id, carried through to the response (load-gen bookkeeping).
  std::uint64_t client_id = 0;
};

struct ServeResponse {
  ServeStatus status = ServeStatus::kShed;
  std::string model;
  std::string error;  ///< kError only

  /// Flow the request actually ran on (the fallback flow when fell_back).
  core::FlowKind flow = core::FlowKind::kTvmOnly;
  bool fell_back = false;

  std::vector<NDArray> outputs;

  double queue_us = 0.0;  ///< admission -> dispatch
  double run_us = 0.0;    ///< wall time inside the session
  double total_us = 0.0;  ///< admission -> response
  double sim_us = 0.0;    ///< simulated device time of the run
  int batch_size = 0;     ///< size of the micro-batch this request rode in
  std::uint64_t client_id = 0;

  /// Request id minted at admission; every trace span this request caused
  /// carries the same id in the Chrome-trace export (`args.req_id`), so a
  /// response can be correlated with its spans after the fact.
  std::uint64_t req_id = 0;
};

}  // namespace serve
}  // namespace tnp
