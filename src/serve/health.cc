#include "serve/health.h"

#include <algorithm>
#include <climits>
#include <sstream>

#include "serve/attribution.h"
#include "support/debug_http.h"
#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace serve {

namespace {

using support::metrics::Registry;

/// Built-in availability objective: at most 1% of submissions shed,
/// confirmed over the standard 5s/60s window pair.
support::slo::Objective BuiltinAvailability() {
  support::slo::Objective objective;
  objective.name = "availability";
  objective.target = 0.99;
  objective.bad_counter = "serve/shed";
  objective.total_counter = "serve/submitted";
  return objective;
}

std::string FormatSignals(const HealthSignals& signals) {
  std::ostringstream out;
  out << "burn=" << signals.worst_burn << " queue=" << signals.queue_saturation
      << " shed=" << signals.shed_fraction << " fallback=" << signals.fallback_fraction
      << " pool=" << signals.pool_saturation;
  return out.str();
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnhealthy: return "unhealthy";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthOptions options,
                             support::timeseries::Collector* collector)
    : options_(std::move(options)),
      collector_(collector != nullptr ? collector
                                      : &support::timeseries::Collector::Global()),
      slo_(options_.slo, collector_) {
  if (!options_.enabled) return;
  slo_.AddObjective(BuiltinAvailability());
  for (const auto& objective : options_.objectives) slo_.AddObjective(objective);
  // Shed/fallback fractions read these windows directly (independent of any
  // SLO definition above).
  collector_->TrackCounter("serve/submitted");
  collector_->TrackCounter("serve/shed");
  collector_->TrackCounter("serve/fallback");
  Registry::Global().GetGauge("serve/health/state").Set(0.0);
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::SetSignalSource(std::function<void(HealthSignals*)> source) {
  std::lock_guard<std::mutex> lock(mutex_);
  signal_source_ = std::move(source);
}

void HealthMonitor::Start() {
  if (!options_.enabled || options_.auto_evaluate_period_ms <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_running_) return;
  thread_running_ = true;
  thread_stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HealthMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_running_) return;
    thread_stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  thread_running_ = false;
}

void HealthMonitor::Loop() {
  const auto period = std::chrono::milliseconds(options_.auto_evaluate_period_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock, period, [this] { return thread_stop_; })) {
    lock.unlock();
    Evaluate();
    lock.lock();
  }
}

HealthState HealthMonitor::Evaluate() {
  if (!options_.enabled) return state();
  if (options_.auto_tick_collector) collector_->Tick();
  slo_.Evaluate();

  HealthSignals signals;
  signals.worst_burn = slo_.worst_burn();
  const int window_s = 5;
  const support::timeseries::RateSeries* submitted =
      collector_->FindCounter("serve/submitted");
  const support::timeseries::RateSeries* shed = collector_->FindCounter("serve/shed");
  const support::timeseries::RateSeries* fallback =
      collector_->FindCounter("serve/fallback");
  const std::int64_t submissions =
      submitted != nullptr ? submitted->DeltaOver(window_s) : 0;
  if (submissions > 0) {
    if (shed != nullptr) {
      signals.shed_fraction = static_cast<double>(shed->DeltaOver(window_s)) /
                              static_cast<double>(submissions);
    }
    if (fallback != nullptr) {
      signals.fallback_fraction =
          static_cast<double>(fallback->DeltaOver(window_s)) /
          static_cast<double>(submissions);
    }
  }
  std::function<void(HealthSignals*)> source;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    source = signal_source_;
  }
  if (source) source(&signals);
  return Step(signals);
}

HealthState HealthMonitor::Evaluate(const HealthSignals& signals) {
  if (!options_.enabled) return state();
  slo_.Evaluate();  // keep the health/slo/* gauges live even under injection
  return Step(signals);
}

HealthState HealthMonitor::TargetState(const HealthSignals& signals) const {
  const HealthThresholds& t = options_.thresholds;
  auto vote = [](double value, double degraded, double unhealthy) {
    if (value >= unhealthy) return HealthState::kUnhealthy;
    if (value >= degraded) return HealthState::kDegraded;
    return HealthState::kHealthy;
  };
  HealthState target = vote(signals.worst_burn, t.degraded_burn, t.unhealthy_burn);
  target = std::max(target,
                    vote(signals.queue_saturation, t.degraded_queue, t.unhealthy_queue));
  target = std::max(target, vote(signals.shed_fraction, t.degraded_shed_fraction,
                                 t.unhealthy_shed_fraction));
  target = std::max(target, vote(signals.fallback_fraction,
                                 t.degraded_fallback_fraction,
                                 t.unhealthy_fallback_fraction));
  target = std::max(target, vote(signals.pool_saturation, t.degraded_pool,
                                 t.unhealthy_pool));
  return target;
}

HealthState HealthMonitor::Step(const HealthSignals& signals) {
  const HealthState target = TargetState(signals);
  HealthState from;
  HealthState to;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_signals_ = signals;
    from = state_.load(std::memory_order_relaxed);
    to = from;
    if (target > from) {
      // Escalation is immediate: overload has to tighten admission now.
      to = target;
      calm_ticks_ = 0;
    } else if (target < from) {
      // Recovery is hysteretic: one level per `recovery_ticks` consecutive
      // calm evaluations, so a noisy boundary cannot flap the state.
      if (++calm_ticks_ >= options_.thresholds.recovery_ticks) {
        to = static_cast<HealthState>(static_cast<int>(from) - 1);
        calm_ticks_ = 0;
      }
    } else {
      calm_ticks_ = 0;
    }
    if (to != from) {
      state_.store(to, std::memory_order_release);
      ++transitions_;
    }
  }
  Registry::Global().GetGauge("serve/health/state").Set(static_cast<double>(to));

  if (to != from) {
    const std::string detail = std::string(HealthStateName(from)) + "->" +
                               HealthStateName(to) + " " + FormatSignals(signals);
    Registry::Global().GetCounter("serve/health/transitions").Increment();
    TNP_TRACE_INSTANT("health", "state", support::TraceArg("from", HealthStateName(from)),
                      support::TraceArg("to", HealthStateName(to)),
                      support::TraceArg("burn", signals.worst_burn),
                      support::TraceArg("queue", signals.queue_saturation),
                      support::TraceArg("shed", signals.shed_fraction));
    TNP_LOG(INFO) << "health transition" << support::KV("from", HealthStateName(from))
                  << support::KV("to", HealthStateName(to))
                  << support::KV("signals", FormatSignals(signals));
    if (to == HealthState::kUnhealthy) {
      // One-shot: keep the trace ring's view of the moments before the
      // incident (cheap no-op while the recorder is disarmed).
      support::FlightRecorder::Global().RecordHealthTransition(detail);
    }
  }
  return to;
}

bool HealthMonitor::AdmitsPriority(int priority) const {
  return priority >= min_admit_priority();
}

int HealthMonitor::min_admit_priority() const {
  if (!options_.enabled || !options_.tighten_admission) return INT_MIN;
  switch (state()) {
    case HealthState::kHealthy: return INT_MIN;
    case HealthState::kDegraded: return options_.degraded_min_priority;
    case HealthState::kUnhealthy: return options_.unhealthy_min_priority;
  }
  return INT_MIN;
}

HealthSignals HealthMonitor::last_signals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_signals_;
}

std::int64_t HealthMonitor::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::string HealthMonitor::HealthzJson() const {
  const HealthState current = state();
  HealthSignals signals;
  std::int64_t transitions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    signals = last_signals_;
    transitions = transitions_;
  }
  std::ostringstream out;
  out << "{\"state\":\"" << HealthStateName(current) << "\""
      << ",\"serving\":" << (current != HealthState::kUnhealthy ? "true" : "false")
      << ",\"transitions\":" << transitions
      << ",\"min_admit_priority\":";
  const int min_priority = min_admit_priority();
  if (min_priority == INT_MIN) {
    out << "null";
  } else {
    out << min_priority;
  }
  out << ",\"signals\":{"
      << "\"worst_burn\":" << signals.worst_burn
      << ",\"queue_saturation\":" << signals.queue_saturation
      << ",\"shed_fraction\":" << signals.shed_fraction
      << ",\"fallback_fraction\":" << signals.fallback_fraction
      << ",\"pool_saturation\":" << signals.pool_saturation << "}";
  // Tail-latency attribution: which phase dominates p99 right now, and one
  // exemplar request id to chase it down with (null until the ledger has
  // completions).
  std::string worst_name;
  double worst_p99 = 0.0;
  std::uint64_t worst_exemplar = 0;
  if (attribution::Ledger::Global().WorstPhase(&worst_name, &worst_p99,
                                               &worst_exemplar)) {
    out << ",\"attribution\":{\"worst_phase\":\"" << worst_name << "\""
        << ",\"worst_phase_p99_us\":" << worst_p99
        << ",\"exemplar_req_id\":" << worst_exemplar << "}";
  } else {
    out << ",\"attribution\":null";
  }
  out << "}";
  return out.str();
}

void HealthMonitor::RegisterWith(support::DebugHttpServer& server) {
  server.Handle("/healthz", [this](const support::HttpRequest&) {
    support::HttpResponse response;
    response.content_type = "application/json";
    response.body = HealthzJson();
    response.status = state() == HealthState::kUnhealthy ? 503 : 200;
    return response;
  });
}

}  // namespace serve
}  // namespace tnp
