// Warm session pool: compiled InferenceSessions keyed by model x flow,
// checked out for exclusive use and checked back in when done.
//
// Compilation happens at most `capacity` times per key over the pool's
// lifetime; every further Checkout reuses a warm session (and with it the
// session's pre-planned arena from the static memory planner, so steady-
// state serving performs zero tensor heap allocations). Checkout blocks
// when every session of a key is in flight — the bounded request queues in
// front of the pool keep that wait short.
//
// Metrics: "serve/pool/compiles" (sessions built), "serve/pool/reuse"
// (checkouts served warm), gauge "serve/pool/in_flight".
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/flows.h"

namespace tnp {
namespace serve {

class SessionPool {
 public:
  using Factory = std::function<core::InferenceSessionPtr()>;

  /// RAII checkout: returns the session to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    explicit operator bool() const { return session_ != nullptr; }
    core::InferenceSession* operator->() const { return session_.get(); }
    core::InferenceSession& operator*() const { return *session_; }
    const core::InferenceSessionPtr& session() const { return session_; }

    /// Early checkin (idempotent).
    void Release();

   private:
    friend class SessionPool;
    Lease(SessionPool* pool, std::string key, core::InferenceSessionPtr session)
        : pool_(pool), key_(std::move(key)), session_(std::move(session)) {}

    SessionPool* pool_ = nullptr;
    std::string key_;
    core::InferenceSessionPtr session_;
  };

  /// Register a session source under `key` ("<model>/<flow>"). `capacity`
  /// bounds how many sessions may exist concurrently for the key.
  void Register(const std::string& key, Factory factory, std::size_t capacity = 1);

  bool Has(const std::string& key) const;

  /// Pre-build every registered session up to its capacity so the request
  /// path never compiles. Propagates the first factory failure.
  void WarmUp();

  /// Exclusive checkout; blocks while all of the key's sessions are in
  /// flight. Compiles lazily when below capacity and nothing is idle.
  /// Throws kInvalidArgument for unregistered keys; propagates factory
  /// (compilation) failures.
  Lease Checkout(const std::string& key);

  /// Sessions built so far for `key` (test/bench introspection).
  std::size_t CreatedCount(const std::string& key) const;

 private:
  struct Entry {
    Factory factory;
    std::size_t capacity = 1;
    std::size_t created = 0;
    std::vector<core::InferenceSessionPtr> idle;
  };

  void CheckIn(const std::string& key, core::InferenceSessionPtr session);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, Entry> entries_;
};

/// Canonical pool key for a model served on a flow.
inline std::string SessionKey(const std::string& model, core::FlowKind flow) {
  return model + "/" + core::FlowName(flow);
}

}  // namespace serve
}  // namespace tnp
