#include "serve/attribution.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "support/debug_http.h"
#include "support/flight_recorder.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace serve {
namespace attribution {

namespace {

using support::timeseries::LatencyGrid;

constexpr std::size_t kCompletionRing = 1024;
constexpr std::size_t kRetainedSlots = 16;
constexpr std::size_t kMaxRetainedSpans = 64;
constexpr double kAutoTailFloorUs = 1000.0;
constexpr double kAutoTailMeanFactor = 4.0;

/// One phase's fold state: grid-bucketed histogram + exemplar ring, all
/// fixed storage so the Complete path never allocates.
struct PhaseHist {
  std::int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, LatencyGrid::kNumBounds> buckets{};
  std::array<Exemplar, kExemplarsPerPhase> exemplars{};

  void Fold(std::uint64_t req_id, double us) {
    ++count;
    sum += us;
    if (us > max) max = us;
    ++buckets[static_cast<std::size_t>(LatencyGrid::BucketOf(us))];
    // Min-replacement: keep the kExemplarsPerPhase slowest requests seen.
    int min_index = 0;
    for (int i = 0; i < kExemplarsPerPhase; ++i) {
      if (exemplars[static_cast<std::size_t>(i)].req_id == 0) {
        exemplars[static_cast<std::size_t>(i)] = {req_id, us};
        return;
      }
      if (exemplars[static_cast<std::size_t>(i)].us <
          exemplars[static_cast<std::size_t>(min_index)].us) {
        min_index = i;
      }
    }
    if (us > exemplars[static_cast<std::size_t>(min_index)].us) {
      exemplars[static_cast<std::size_t>(min_index)] = {req_id, us};
    }
  }

  void Clear() {
    count = 0;
    sum = 0.0;
    max = 0.0;
    buckets.fill(0);
    exemplars.fill(Exemplar{});
  }
};

/// Grid percentile: the upper bound of the bucket holding the q-th sample,
/// clamped to the observed max (so a constant-valued distribution reports
/// exact percentiles at the top).
double PercentileFromGrid(const PhaseHist& hist, double q) {
  if (hist.count == 0) return 0.0;
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(hist.count))));
  std::int64_t cumulative = 0;
  const auto& bounds = LatencyGrid::Bounds();
  for (int i = 0; i < LatencyGrid::kNumBounds; ++i) {
    cumulative += static_cast<std::int64_t>(hist.buckets[static_cast<std::size_t>(i)]);
    if (cumulative >= target) return std::min(bounds[static_cast<std::size_t>(i)], hist.max);
  }
  return hist.max;
}

PhaseSummary Summarize(const PhaseHist& hist) {
  PhaseSummary summary;
  summary.count = hist.count;
  summary.sum_us = hist.sum;
  summary.max_us = hist.max;
  summary.mean_us = hist.count > 0 ? hist.sum / static_cast<double>(hist.count) : 0.0;
  summary.p50_us = PercentileFromGrid(hist, 0.50);
  summary.p95_us = PercentileFromGrid(hist, 0.95);
  summary.p99_us = PercentileFromGrid(hist, 0.99);
  std::vector<Exemplar> exemplars;
  for (const Exemplar& exemplar : hist.exemplars) {
    if (exemplar.req_id != 0) exemplars.push_back(exemplar);
  }
  std::sort(exemplars.begin(), exemplars.end(),
            [](const Exemplar& a, const Exemplar& b) { return a.us > b.us; });
  summary.exemplars = std::move(exemplars);
  return summary;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out += buffer;
}

void AppendSummaryJson(std::string& out, const PhaseSummary& summary) {
  out += "{\"count\":" + std::to_string(summary.count);
  out += ",\"mean_us\":";
  AppendDouble(out, summary.mean_us);
  out += ",\"p50_us\":";
  AppendDouble(out, summary.p50_us);
  out += ",\"p95_us\":";
  AppendDouble(out, summary.p95_us);
  out += ",\"p99_us\":";
  AppendDouble(out, summary.p99_us);
  out += ",\"max_us\":";
  AppendDouble(out, summary.max_us);
  out += ",\"exemplars\":[";
  bool first = true;
  for (const Exemplar& exemplar : summary.exemplars) {
    if (!first) out += ',';
    first = false;
    out += "{\"req_id\":" + std::to_string(exemplar.req_id) + ",\"us\":";
    AppendDouble(out, exemplar.us);
    out += "}";
  }
  out += "]}";
}

struct LedgerState {
  mutable std::mutex mutex;
  LedgerOptions options;

  std::array<PhaseHist, kNumPhases> phases{};
  PhaseHist end_to_end{};
  std::array<std::int64_t, 4> status_counts{};  ///< indexed by ServeStatus
  std::int64_t completed = 0;

  // Running mean of OK end-to-end latency: the automatic tail threshold.
  double ok_total_sum = 0.0;
  std::int64_t ok_count = 0;

  std::array<CompletionRecord, kCompletionRing> recent{};
  std::size_t recent_next = 0;
  std::size_t recent_count = 0;

  std::array<RetainedTrace, kRetainedSlots> retained{};
  std::size_t retained_next = 0;
  std::size_t retained_count = 0;
  std::uint64_t retained_seq = 0;  ///< newest-first ordering across wraps

  std::atomic<std::int64_t> alloc_events{0};

  double TailThresholdLocked() const {
    if (options.tail_slow_us > 0.0) return options.tail_slow_us;
    if (ok_count == 0) return kAutoTailFloorUs;
    return std::max(kAutoTailFloorUs,
                    kAutoTailMeanFactor * ok_total_sum / static_cast<double>(ok_count));
  }

  void ClearLocked() {
    for (PhaseHist& hist : phases) hist.Clear();
    end_to_end.Clear();
    status_counts.fill(0);
    completed = 0;
    ok_total_sum = 0.0;
    ok_count = 0;
    recent_next = 0;
    recent_count = 0;
    for (RetainedTrace& trace : retained) trace = RetainedTrace{};
    retained_next = 0;
    retained_count = 0;
    retained_seq = 0;
    alloc_events.store(0, std::memory_order_relaxed);
  }
};

LedgerState& State() {
  static LedgerState* state = new LedgerState();  // outlives static teardown
  return *state;
}

const char* RetainReason(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "slow";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kExpired: return "expired";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

/// The allocating tail path: pull this request's spans out of the tracer
/// ring (events recorded since admission whose req_id arg matches) into a
/// retained slot. Counted in alloc_events — steady state must never reach
/// here.
void RetainLocked(LedgerState& state, const PhaseStamps& stamps, ServeStatus status,
                  double total_us, const std::array<double, kNumPhases>& phase_us) {
  state.alloc_events.fetch_add(1, std::memory_order_relaxed);
  RetainedTrace& slot = state.retained[state.retained_next];
  state.retained_next = (state.retained_next + 1) % kRetainedSlots;
  if (state.retained_count < kRetainedSlots) ++state.retained_count;
  ++state.retained_seq;

  slot.req_id = stamps.req_id;
  slot.reason = RetainReason(status);
  slot.total_us = total_us;
  slot.phase_us = phase_us;
  slot.spans.clear();
  if (!state.options.retain_spans) return;

  support::Tracer& tracer = support::Tracer::Global();
  if (!tracer.enabled()) return;
  const std::string req_id_text = std::to_string(stamps.req_id);
  for (const support::TraceEvent& event : tracer.EventsSince(stamps.trace_seq)) {
    if (event.phase != support::TracePhase::kComplete) continue;
    if (event.ArgValue("req_id") != req_id_text) continue;
    RetainedSpan span;
    span.category = event.category;
    span.name = event.name;
    span.ts_us = event.ts_us;
    span.dur_us = event.dur_us;
    slot.spans.push_back(std::move(span));
    if (slot.spans.size() >= kMaxRetainedSpans) break;
  }
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAdmission: return "admission";
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kBatchAssembly: return "batch_assembly";
    case Phase::kSessionAcquire: return "session_acquire";
    case Phase::kDeviceHold: return "device_hold";
    case Phase::kExecution: return "execution";
    case Phase::kResponse: return "response";
  }
  return "?";
}

std::array<double, kNumPhases> SplitPhases(const PhaseStamps& stamps,
                                           ServeStatus status, double end_us) {
  std::array<double, kNumPhases> out{};
  // Boundaries in pipeline order; [0] is the origin, [7] the completion.
  std::array<double, kNumPhases + 1> t = {
      stamps.submit_us,  stamps.queued_us,    stamps.pop_begin_us,
      stamps.popped_us,  stamps.session_us,   stamps.run_begin_us,
      stamps.run_end_us, end_us,
  };
  // Forward-fill unset boundaries and clamp monotonic: every phase is
  // non-negative and the durations sum to t[7] - t[0] exactly.
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] <= 0.0 || t[i] < t[i - 1]) t[i] = t[i - 1];
  }
  const double total = t[kNumPhases] - t[0];
  if (status == ServeStatus::kShed) {
    // Shed requests never dispatched: their whole (tiny) lifetime is the
    // admission decision.
    out[static_cast<std::size_t>(Phase::kAdmission)] = total;
    return out;
  }
  for (std::size_t k = 0; k < kNumPhases; ++k) out[k] = t[k + 1] - t[k];
  return out;
}

Ledger::Ledger() {
  // Surface the ledger in every flight-recorder dump: post-mortems see the
  // same phase/exemplar/retained view /attribution serves live.
  support::FlightRecorder::Global().SetSection(
      "attribution", [] { return Ledger::Global().ExportJson(); });
}

Ledger& Ledger::Global() {
  static Ledger* ledger = new Ledger();  // outlives static teardown
  return *ledger;
}

void Ledger::Configure(LedgerOptions options) {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.options = options;
  state.ClearLocked();
}

void Ledger::Reset() {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.ClearLocked();
}

void Ledger::Complete(const PhaseStamps& stamps, ServeStatus status, double end_us) {
  const std::array<double, kNumPhases> phase_us = SplitPhases(stamps, status, end_us);
  double total = 0.0;
  for (const double us : phase_us) total += us;

  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  ++state.completed;
  ++state.status_counts[static_cast<std::size_t>(status)];
  for (int k = 0; k < kNumPhases; ++k) {
    state.phases[static_cast<std::size_t>(k)].Fold(stamps.req_id,
                                                   phase_us[static_cast<std::size_t>(k)]);
  }
  state.end_to_end.Fold(stamps.req_id, total);
  if (status == ServeStatus::kOk) {
    state.ok_total_sum += total;
    ++state.ok_count;
  }

  CompletionRecord& record = state.recent[state.recent_next];
  state.recent_next = (state.recent_next + 1) % kCompletionRing;
  if (state.recent_count < kCompletionRing) ++state.recent_count;
  record.req_id = stamps.req_id;
  record.status = status;
  record.total_us = total;
  record.phase_us = phase_us;

  const bool tail =
      status != ServeStatus::kOk || total >= state.TailThresholdLocked();
  if (tail) RetainLocked(state, stamps, status, total, phase_us);
}

std::int64_t Ledger::completed() const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.completed;
}

std::int64_t Ledger::alloc_events() const {
  return State().alloc_events.load(std::memory_order_relaxed);
}

PhaseSummary Ledger::Summarize(Phase phase) const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return attribution::Summarize(state.phases[static_cast<std::size_t>(phase)]);
}

PhaseSummary Ledger::EndToEnd() const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return attribution::Summarize(state.end_to_end);
}

bool Ledger::WorstPhase(std::string* name, double* p99_us,
                        std::uint64_t* exemplar_req_id) const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  int worst = -1;
  double worst_p99 = -1.0;
  for (int k = 0; k < kNumPhases; ++k) {
    const PhaseHist& hist = state.phases[static_cast<std::size_t>(k)];
    if (hist.count == 0) continue;
    const double p99 = PercentileFromGrid(hist, 0.99);
    if (p99 > worst_p99) {
      worst_p99 = p99;
      worst = k;
    }
  }
  if (worst < 0) return false;
  if (name != nullptr) *name = PhaseName(static_cast<Phase>(worst));
  if (p99_us != nullptr) *p99_us = worst_p99;
  if (exemplar_req_id != nullptr) {
    *exemplar_req_id = 0;
    const PhaseHist& hist = state.phases[static_cast<std::size_t>(worst)];
    double best = -1.0;
    for (const Exemplar& exemplar : hist.exemplars) {
      if (exemplar.req_id != 0 && exemplar.us > best) {
        best = exemplar.us;
        *exemplar_req_id = exemplar.req_id;
      }
    }
  }
  return true;
}

std::vector<CompletionRecord> Ledger::RecentCompletions(std::size_t max) const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<CompletionRecord> out;
  const std::size_t n = std::min(max, state.recent_count);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t index =
        (state.recent_next + kCompletionRing - 1 - i) % kCompletionRing;
    out.push_back(state.recent[index]);
  }
  return out;
}

std::vector<RetainedTrace> Ledger::RetainedTraces() const {
  LedgerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<RetainedTrace> out;
  out.reserve(state.retained_count);
  for (std::size_t i = 0; i < state.retained_count; ++i) {
    const std::size_t index =
        (state.retained_next + kRetainedSlots - 1 - i) % kRetainedSlots;
    out.push_back(state.retained[index]);
  }
  return out;
}

std::string Ledger::ExportJson() const {
  LedgerState& state = State();
  // Snapshot under the lock, render outside it.
  std::array<PhaseSummary, kNumPhases> phases;
  PhaseSummary end_to_end;
  std::array<std::int64_t, 4> status_counts{};
  std::int64_t completed = 0;
  std::int64_t alloc_events = 0;
  double tail_slow_us = 0.0;
  std::vector<RetainedTrace> retained;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (int k = 0; k < kNumPhases; ++k) {
      phases[static_cast<std::size_t>(k)] =
          attribution::Summarize(state.phases[static_cast<std::size_t>(k)]);
    }
    end_to_end = attribution::Summarize(state.end_to_end);
    status_counts = state.status_counts;
    completed = state.completed;
    alloc_events = state.alloc_events.load(std::memory_order_relaxed);
    tail_slow_us = state.TailThresholdLocked();
    retained.reserve(state.retained_count);
    for (std::size_t i = 0; i < state.retained_count; ++i) {
      const std::size_t index =
          (state.retained_next + kRetainedSlots - 1 - i) % kRetainedSlots;
      retained.push_back(state.retained[index]);
    }
  }

  std::string out = "{";
  out += "\"completed\":" + std::to_string(completed);
  out += ",\"ok\":" + std::to_string(status_counts[0]);
  out += ",\"shed\":" + std::to_string(status_counts[1]);
  out += ",\"expired\":" + std::to_string(status_counts[2]);
  out += ",\"error\":" + std::to_string(status_counts[3]);
  out += ",\"tail_slow_us\":";
  AppendDouble(out, tail_slow_us);
  out += ",\"alloc_events\":" + std::to_string(alloc_events);
  out += ",\"phases\":{";
  for (int k = 0; k < kNumPhases; ++k) {
    if (k > 0) out += ',';
    out += '"';
    out += PhaseName(static_cast<Phase>(k));
    out += "\":";
    AppendSummaryJson(out, phases[static_cast<std::size_t>(k)]);
  }
  out += "},\"end_to_end\":";
  AppendSummaryJson(out, end_to_end);

  std::string worst_name;
  double worst_p99 = 0.0;
  std::uint64_t worst_exemplar = 0;
  out += ",\"worst_phase\":";
  if (WorstPhase(&worst_name, &worst_p99, &worst_exemplar)) {
    AppendJsonString(out, worst_name);
    out += ",\"worst_phase_p99_us\":";
    AppendDouble(out, worst_p99);
    out += ",\"worst_phase_exemplar\":" + std::to_string(worst_exemplar);
  } else {
    out += "null,\"worst_phase_p99_us\":0,\"worst_phase_exemplar\":0";
  }

  out += ",\"retained\":[";
  bool first = true;
  for (const RetainedTrace& trace : retained) {
    if (!first) out += ',';
    first = false;
    out += "{\"req_id\":" + std::to_string(trace.req_id);
    out += ",\"reason\":";
    AppendJsonString(out, trace.reason);
    out += ",\"total_us\":";
    AppendDouble(out, trace.total_us);
    out += ",\"phases\":{";
    for (int k = 0; k < kNumPhases; ++k) {
      if (k > 0) out += ',';
      out += '"';
      out += PhaseName(static_cast<Phase>(k));
      out += "\":";
      AppendDouble(out, trace.phase_us[static_cast<std::size_t>(k)]);
    }
    out += "},\"spans\":[";
    bool first_span = true;
    for (const RetainedSpan& span : trace.spans) {
      if (!first_span) out += ',';
      first_span = false;
      out += "{\"category\":";
      AppendJsonString(out, span.category);
      out += ",\"name\":";
      AppendJsonString(out, span.name);
      out += ",\"ts_us\":";
      AppendDouble(out, span.ts_us);
      out += ",\"dur_us\":";
      AppendDouble(out, span.dur_us);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void RegisterAttributionEndpoints(support::DebugHttpServer& server) {
  server.Handle("/attribution", [](const support::HttpRequest&) {
    support::HttpResponse response;
    response.content_type = "application/json";
    response.body = Ledger::Global().ExportJson();
    return response;
  });
}

}  // namespace attribution
}  // namespace serve
}  // namespace tnp
