#include "serve/session_pool.h"

#include <utility>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace tnp {
namespace serve {

namespace {

support::metrics::Counter& Compiles() {
  static auto& counter =
      support::metrics::Registry::Global().GetCounter("serve/pool/compiles");
  return counter;
}

support::metrics::Counter& Reuses() {
  static auto& counter = support::metrics::Registry::Global().GetCounter("serve/pool/reuse");
  return counter;
}

support::metrics::Gauge& InFlight() {
  static auto& gauge = support::metrics::Registry::Global().GetGauge("serve/pool/in_flight");
  return gauge;
}

}  // namespace

SessionPool::Lease& SessionPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    key_ = std::move(other.key_);
    session_ = std::move(other.session_);
    other.pool_ = nullptr;
    other.session_ = nullptr;
  }
  return *this;
}

void SessionPool::Lease::Release() {
  if (pool_ != nullptr && session_ != nullptr) {
    pool_->CheckIn(key_, std::move(session_));
  }
  pool_ = nullptr;
  session_ = nullptr;
}

void SessionPool::Register(const std::string& key, Factory factory, std::size_t capacity) {
  TNP_CHECK_GT(capacity, 0u);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(key) > 0) return;  // first registration wins
  Entry entry;
  entry.factory = std::move(factory);
  entry.capacity = capacity;
  entries_.emplace(key, std::move(entry));
}

bool SessionPool::Has(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

void SessionPool::WarmUp() {
  TNP_TRACE_SCOPE("serve", "SessionPool::WarmUp");
  // Collect the work under the lock, compile outside it.
  std::vector<std::pair<std::string, std::size_t>> todo;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : entries_) {
      if (entry.created < entry.capacity) todo.emplace_back(key, entry.capacity - entry.created);
    }
  }
  for (const auto& [key, missing] : todo) {
    for (std::size_t i = 0; i < missing; ++i) {
      Factory factory;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry& entry = entries_.at(key);
        if (entry.created >= entry.capacity) break;
        ++entry.created;  // reserve the slot before the slow build
        factory = entry.factory;
      }
      core::InferenceSessionPtr session;
      try {
        session = factory();
        TNP_CHECK(session != nullptr) << "session factory for '" << key << "' returned null";
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        --entries_.at(key).created;
        throw;
      }
      Compiles().Increment();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.at(key).idle.push_back(std::move(session));
      }
      cv_.notify_all();
    }
  }
}

SessionPool::Lease SessionPool::Checkout(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    TNP_THROW(kInvalidArgument) << "no session registered under '" << key << "'";
  }
  Entry& entry = it->second;
  for (;;) {
    if (!entry.idle.empty()) {
      core::InferenceSessionPtr session = std::move(entry.idle.back());
      entry.idle.pop_back();
      Reuses().Increment();
      InFlight().Add(1.0);
      return Lease(this, key, std::move(session));
    }
    if (entry.created < entry.capacity) {
      ++entry.created;  // reserve before the slow build
      lock.unlock();
      core::InferenceSessionPtr session;
      try {
        TNP_TRACE_SCOPE("serve", "SessionPool::compile:" + key);
        session = entry.factory();
        TNP_CHECK(session != nullptr) << "session factory for '" << key << "' returned null";
      } catch (...) {
        lock.lock();
        --entry.created;
        cv_.notify_all();
        throw;
      }
      Compiles().Increment();
      InFlight().Add(1.0);
      return Lease(this, key, std::move(session));
    }
    cv_.wait(lock);
  }
}

std::size_t SessionPool::CreatedCount(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second.created : 0;
}

void SessionPool::CheckIn(const std::string& key, core::InferenceSessionPtr session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.at(key).idle.push_back(std::move(session));
    InFlight().Add(-1.0);
  }
  cv_.notify_all();
}

}  // namespace serve
}  // namespace tnp
