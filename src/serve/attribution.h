// Per-request critical-path attribution: where did each admitted request's
// latency actually go?
//
// The server stamps a small trivially-copyable PhaseStamps record (riding
// inside QueuedRequest, so it crosses the queue's thread handoff for free)
// with monotonic boundary timestamps as the request moves through the
// pipeline. At completion, Ledger::Complete folds the stamps into seven
// named phases:
//
//   admission        Submit entry -> queued (routing, health gate, push)
//   queue_wait       queued -> the pump's TryPopBatch call that took it
//   batch_assembly   pop begin -> batch handed to RunBatch (straggler window)
//   session_acquire  batch start -> SessionPool checkout returned
//   device_hold      session held -> this request's own run begins
//                    (ResourceLocks wait + earlier batch members' runs)
//   execution        the request's own SetInput/Run/GetOutput
//   response         run end -> promise fulfilled
//
// Unset stamps forward-fill and every boundary clamps monotonic, so the
// phase durations ALWAYS sum exactly to the ledger's end-to-end time — the
// decomposition is conservative and complete by construction. Requests shed
// at admission attribute their whole lifetime to `admission`.
//
// The fold path is alloc-free: per-phase histograms live on the shared
// timeseries::LatencyGrid geometric bucket grid in fixed arrays, p95/p99
// exports carry *exemplars* (the req_ids of the slowest requests per phase,
// kept in fixed min-replacement rings), and recent per-request records sit
// in a fixed ring for tests and debugging. The only allocating branch is
// tail-based trace retention — keeping the full span tree for slow / shed /
// expired / error requests — which runs only for that tail and counts every
// excursion in `alloc_events` (bench-gated at zero for the steady state).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "serve/request.h"
#include "support/timeseries.h"

namespace tnp {
namespace support {
class DebugHttpServer;
}  // namespace support

namespace serve {
namespace attribution {

enum class Phase : int {
  kAdmission = 0,
  kQueueWait,
  kBatchAssembly,
  kSessionAcquire,
  kDeviceHold,
  kExecution,
  kResponse,
};
constexpr int kNumPhases = 7;
const char* PhaseName(Phase phase);

/// Boundary timestamps (server clock, microseconds) stamped as the request
/// flows; zero = "never reached". Trivially copyable on purpose: it travels
/// inside QueuedRequest through the bounded queues with no extra
/// allocation.
struct PhaseStamps {
  std::uint64_t req_id = 0;
  double submit_us = 0.0;     ///< Submit entry (== QueuedRequest::enqueue_us)
  double queued_us = 0.0;     ///< about to TryPush into a queue
  double pop_begin_us = 0.0;  ///< the pump's TryPopBatch call began
  double popped_us = 0.0;     ///< batch handed to RunBatch
  double session_us = 0.0;    ///< SessionPool checkout returned
  double run_begin_us = 0.0;  ///< this request's own dispatch began
  double run_end_us = 0.0;    ///< this request's own run finished
  /// Tracer sequence at admission: tail retention replays only events
  /// recorded after this point when pulling the request's span tree.
  std::uint64_t trace_seq = 0;
};
static_assert(std::is_trivially_copyable_v<PhaseStamps>,
              "PhaseStamps rides QueuedRequest across thread handoffs");

struct Exemplar {
  std::uint64_t req_id = 0;
  double us = 0.0;
};
constexpr int kExemplarsPerPhase = 4;

/// Aggregate view of one phase (or of end-to-end latency).
struct PhaseSummary {
  std::int64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Slowest requests of this phase, worst-first; at most
  /// kExemplarsPerPhase entries, zero req_ids filtered out.
  std::vector<Exemplar> exemplars;
};

/// One completed request, as retained in the recent-completions ring.
struct CompletionRecord {
  std::uint64_t req_id = 0;
  ServeStatus status = ServeStatus::kOk;
  double total_us = 0.0;  ///< ledger end-to-end (completion - submit)
  std::array<double, kNumPhases> phase_us{};
};

/// A span kept by tail-based retention (copied out of the tracer ring).
struct RetainedSpan {
  std::string category;
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct RetainedTrace {
  std::uint64_t req_id = 0;
  const char* reason = "";  ///< "slow" | "shed" | "expired" | "error"
  double total_us = 0.0;
  std::array<double, kNumPhases> phase_us{};
  std::vector<RetainedSpan> spans;  ///< empty when tracing is disabled
};

struct LedgerOptions {
  /// End-to-end latency at which an OK request counts as tail-slow and its
  /// span tree is retained. 0 = automatic: 4x the running mean of completed
  /// OK requests, floored at 1000us, so retention self-scales to the
  /// workload instead of needing per-deployment tuning.
  double tail_slow_us = 0.0;
  /// Keep span trees at all (phase records are always retained).
  bool retain_spans = true;
};

/// Process-wide attribution ledger. Complete() is the only hot-path entry:
/// one mutex acquisition plus fixed-array arithmetic, no heap in steady
/// state.
class Ledger {
 public:
  static Ledger& Global();

  /// Replace options and clear all folded state (not a hot-path call).
  void Configure(LedgerOptions options);
  /// Clear folded state, keep options.
  void Reset();

  /// Fold one finished request. `end_us` is the completion time on the same
  /// clock as the stamps (InferenceServer::NowUs).
  void Complete(const PhaseStamps& stamps, ServeStatus status, double end_us);

  std::int64_t completed() const;
  /// Heap allocations taken on the Complete path (tail retention only) —
  /// the bench gate's numerator, together with the profiler's counter.
  std::int64_t alloc_events() const;

  PhaseSummary Summarize(Phase phase) const;
  PhaseSummary EndToEnd() const;

  /// The phase with the largest p99 among phases with samples. Returns
  /// false when nothing completed yet.
  bool WorstPhase(std::string* name, double* p99_us,
                  std::uint64_t* exemplar_req_id) const;

  /// Newest-first recent completions (bounded by the fixed ring).
  std::vector<CompletionRecord> RecentCompletions(std::size_t max = 64) const;
  /// Newest-first retained tail traces.
  std::vector<RetainedTrace> RetainedTraces() const;

  /// Deterministic-schema JSON (served at /attribution): keys always
  /// present, phases in declaration order:
  ///   {"completed":N,"ok":N,"shed":N,"expired":N,"error":N,
  ///    "tail_slow_us":X,"alloc_events":N,
  ///    "phases":{"admission":{"count":..,"mean_us":..,"p50_us":..,
  ///              "p95_us":..,"p99_us":..,"max_us":..,
  ///              "exemplars":[{"req_id":..,"us":..}, ...]}, ...},
  ///    "end_to_end":{...same shape...},
  ///    "worst_phase":"..."|null,
  ///    "retained":[{"req_id":..,"reason":"..","total_us":..,
  ///                 "phases":{...},"spans":[{"category":..,"name":..,
  ///                 "ts_us":..,"dur_us":..}, ...]}, ...]}
  std::string ExportJson() const;

 private:
  Ledger();
};

/// Split `stamps` + `end_us` into the seven phase durations (forward-filled,
/// monotonically clamped — the sum equals `end_us - stamps.submit_us`
/// exactly). Exposed for tests; Complete uses it internally.
std::array<double, kNumPhases> SplitPhases(const PhaseStamps& stamps,
                                           ServeStatus status, double end_us);

/// Register the /attribution endpoint (Ledger::Global's ExportJson).
void RegisterAttributionEndpoints(support::DebugHttpServer& server);

}  // namespace attribution
}  // namespace serve
}  // namespace tnp
