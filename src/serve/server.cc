#include "serve/server.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <utility>

#include "serve/attribution.h"
#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/trace.h"
#include "support/trace_context.h"

namespace tnp {
namespace serve {

namespace {

using support::metrics::Registry;

support::metrics::Counter& Submitted() {
  static auto& counter = Registry::Global().GetCounter("serve/submitted");
  return counter;
}
support::metrics::Counter& Shed() {
  static auto& counter = Registry::Global().GetCounter("serve/shed");
  return counter;
}
support::metrics::Counter& Fallbacks() {
  static auto& counter = Registry::Global().GetCounter("serve/fallback");
  return counter;
}
support::metrics::Counter& Expired() {
  static auto& counter = Registry::Global().GetCounter("serve/expired");
  return counter;
}
/// Per-priority shed attribution ("serve/shed/p<N>") — what the bench and
/// the health layer use to check that tightening spares high priorities.
void RecordShedAt(int priority) {
  Shed().Increment();
  Registry::Global().GetCounter("serve/shed/p" + std::to_string(priority)).Increment();
  // Overload signal: arms the flight recorder's shed-storm detector (cheap
  // no-op while the recorder is disarmed).
  support::FlightRecorder::Global().RecordShed();
}
support::metrics::Counter& Completed() {
  static auto& counter = Registry::Global().GetCounter("serve/completed");
  return counter;
}

/// Admitted request ids of a batch as "id1,id2,..." — the batch span's link
/// to its member requests (evaluated only when tracing is enabled).
std::string JoinRequestIds(const std::vector<QueuedRequest>& batch) {
  std::string out;
  for (const auto& entry : batch) {
    if (!out.empty()) out += ",";
    out += std::to_string(entry.trace.req_id);
  }
  return out;
}

/// Copy `src` into the caller-provided `dst` when compatible; returns false
/// (leaving dst untouched) on shape/dtype mismatch.
bool CopyIntoBuffer(const NDArray& src, NDArray& dst) {
  if (!dst.defined() || dst.dtype() != src.dtype() || !(dst.shape() == src.shape())) {
    return false;
  }
  std::memcpy(dst.RawData(), src.RawData(), src.SizeBytes());
  dst.set_quant(src.quant());
  return true;
}

}  // namespace

ServedModel MakeServedModel(const std::string& name, relay::Module module,
                            const core::FlowCompileSettings& settings) {
  const core::ModelProfile profile = core::ProfileModel(module, name, settings);
  ServedModel served;
  served.name = name;
  served.module = std::move(module);
  served.plan = core::ComputationScheduler::PlanForServing(profile);
  served.resources = profile.resources;
  served.settings = settings;
  return served;
}

InferenceServer::InferenceServer(std::vector<ServedModel> models, ServerOptions options)
    : options_(options),
      locks_(options.locks != nullptr ? options.locks : &core::ResourceLocks::Global()),
      epoch_(std::chrono::steady_clock::now()) {
  TNP_CHECK(!models.empty()) << "server needs at least one model";
  TNP_TRACE_SCOPE("serve", "InferenceServer::start");

  for (auto& model : models) {
    const std::string name = model.name;
    TNP_CHECK(models_.emplace(name, std::move(model)).second)
        << "duplicate served model '" << name << "'";
  }

  for (const auto& [name, model] : models_) {
    std::vector<core::FlowKind> flows = {model.plan.primary.flow};
    if (model.plan.cpu_fallback.has_value()) flows.push_back(model.plan.cpu_fallback->flow);
    for (const core::FlowKind flow : flows) {
      const relay::Module module = model.module;
      const core::FlowCompileSettings settings = model.settings;
      pool_.Register(
          SessionKey(name, flow),
          [module, flow, settings] { return core::CompileFlow(module, flow, settings); },
          options_.sessions_per_flow);
      pool_capacity_ += options_.sessions_per_flow;
    }
  }
  if (options_.warm_start) pool_.WarmUp();

  queues_.resize(sim::kNumResources);
  for (int r = 0; r < sim::kNumResources; ++r) {
    std::string name = sim::ResourceName(static_cast<sim::Resource>(r));
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    queues_[static_cast<std::size_t>(r)] =
        std::make_unique<RequestQueue>(name, options_.queue_capacity);
  }
  health_ = std::make_unique<HealthMonitor>(options_.health);
  health_->SetSignalSource([this](HealthSignals* signals) {
    for (const auto& queue : queues_) {
      if (queue->capacity() == 0) continue;
      signals->queue_saturation =
          std::max(signals->queue_saturation,
                   static_cast<double>(queue->size()) /
                       static_cast<double>(queue->capacity()));
    }
    if (pool_capacity_ > 0) {
      signals->pool_saturation =
          Registry::Global().GetGauge("serve/pool/in_flight").value() /
          static_cast<double>(pool_capacity_);
    }
  });
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  if (health_ != nullptr) health_->Stop();
  for (auto& queue : queues_) queue->Close();
  // Arm every pump once after closing: whatever is still queued gets
  // drained even if the pump had gone idle, and TaskGroup::Wait joins the
  // lot (the waiting thread help-executes pending pump tasks, so shutdown
  // completes even on a saturated pool).
  for (std::size_t r = 0; r < queues_.size(); ++r) ArmPump(r);
  pump_tasks_.Wait();
}

double InferenceServer::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

const ServedModel* InferenceServer::FindModel(const std::string& name) const {
  const auto it = models_.find(name);
  return it != models_.end() ? &it->second : nullptr;
}

std::vector<sim::Resource> InferenceServer::ResourcesOf(const ServedModel& model,
                                                        core::FlowKind flow) const {
  const auto it = model.resources.find(flow);
  return it != model.resources.end() ? it->second : core::FlowResources(flow);
}

std::size_t InferenceServer::QueueIndexOf(const ServedModel& model,
                                          core::FlowKind flow) const {
  for (const sim::Resource resource : ResourcesOf(model, flow)) {
    if (resource == sim::Resource::kApu) {
      return static_cast<std::size_t>(sim::Resource::kApu);
    }
  }
  return static_cast<std::size_t>(sim::Resource::kCpu);
}

std::future<ServeResponse> InferenceServer::Submit(ServeRequest request) {
  const ServedModel* model = FindModel(request.model);
  if (model == nullptr) {
    TNP_THROW(kInvalidArgument) << "no served model named '" << request.model << "'";
  }
  Submitted().Increment();

  QueuedRequest entry;
  entry.flow = model->plan.primary.flow;
  entry.session_key = SessionKey(request.model, entry.flow);
  entry.enqueue_us = NowUs();
  // Mint the request's trace identity at admission; it travels inside the
  // QueuedRequest across the queue's thread handoff, so every span the
  // request causes — here, at dispatch, inside the session — carries the
  // same req_id in the export.
  entry.trace = support::TraceContext::NewRequest();
  entry.trace_enqueue_us = support::Tracer::Global().NowUs();
  // Attribution stamps: submit_us anchors the phase decomposition, trace_seq
  // remembers where this request's spans start in the tracer's ring so the
  // ledger can retain the span tree of a slow request at completion.
  entry.stamps.req_id = entry.trace.req_id;
  entry.stamps.submit_us = entry.enqueue_us;
  entry.stamps.trace_seq = support::Tracer::Global().sequence();
  entry.request = std::move(request);
  std::future<ServeResponse> future = entry.promise.get_future();

  const std::string model_name = entry.request.model;
  const int priority = entry.request.priority;
  support::TraceContextScope trace_scope(entry.trace);

  // Health admission gate: while Degraded/Unhealthy (and tightening is
  // enabled) requests below the state's minimum priority shed immediately,
  // before they can displace higher-priority work in the queues.
  if (health_ != nullptr && !health_->AdmitsPriority(priority)) {
    RecordShedAt(priority);
    TNP_TRACE_INSTANT("serve.request", "shed", support::TraceArg("model", model_name),
                      support::TraceArg("priority", priority),
                      support::TraceArg("health",
                                        HealthStateName(health_->state())));
    TNP_LOG(DEBUG) << "shed by health gate" << support::KV("model", model_name)
                   << support::KV("priority", priority)
                   << support::KV("state", HealthStateName(health_->state()));
    ServeResponse response;
    response.status = ServeStatus::kShed;
    Respond(std::move(entry), std::move(response));
    return future;
  }

  const std::size_t primary_queue = QueueIndexOf(*model, entry.flow);
  entry.stamps.queued_us = NowUs();
  if (queues_[primary_queue]->TryPush(entry)) {
    TNP_TRACE_INSTANT("serve.request", "submit", support::TraceArg("model", model_name),
                      support::TraceArg("priority", priority),
                      support::TraceArg("queue", queues_[primary_queue]->name()));
    ArmPump(primary_queue);
    return future;
  }

  // Admission control. The primary queue is saturated: degrade eligible
  // requests to the scheduler's next-best CPU-only flow (a different queue,
  // the same answer, more latency), and shed explicitly otherwise — bounded
  // queues never grow to hide overload.
  if (model->plan.cpu_fallback.has_value()) {
    const core::FlowKind fallback_flow = model->plan.cpu_fallback->flow;
    const std::size_t fallback_queue = QueueIndexOf(*model, fallback_flow);
    if (fallback_queue != primary_queue) {
      entry.flow = fallback_flow;
      entry.session_key = SessionKey(entry.request.model, fallback_flow);
      entry.fell_back = true;
      entry.stamps.queued_us = NowUs();
      if (queues_[fallback_queue]->TryPush(entry)) {
        Fallbacks().Increment();
        TNP_TRACE_INSTANT("serve.request", "submit",
                          support::TraceArg("model", model_name),
                          support::TraceArg("priority", priority),
                          support::TraceArg("queue", queues_[fallback_queue]->name()),
                          support::TraceArg("fell_back", true));
        ArmPump(fallback_queue);
        return future;
      }
    }
  }

  RecordShedAt(priority);
  TNP_TRACE_INSTANT("serve.request", "shed", support::TraceArg("model", model_name),
                    support::TraceArg("priority", priority));
  TNP_LOG(DEBUG) << "shed at admission" << support::KV("model", model_name)
                 << support::KV("priority", priority);
  ServeResponse response;
  response.status = ServeStatus::kShed;
  Respond(std::move(entry), std::move(response));
  return future;
}

void InferenceServer::ArmPump(std::size_t queue_index) {
  const std::uint32_t old =
      pump_state_[queue_index].fetch_or(kPumpArmed | kPumpDirty);
  if ((old & kPumpArmed) == 0) {
    pump_tasks_.Run(PumpTask{this, queue_index});
  }
}

void InferenceServer::RunPump(std::size_t queue_index) {
  support::profiler::LabelScope prof_label("serve:pump");
  std::atomic<std::uint32_t>& state = pump_state_[queue_index];
  RequestQueue& queue = *queues_[queue_index];
  for (;;) {
    state.fetch_and(~kPumpDirty);
    for (;;) {
      std::vector<QueuedRequest> batch;
      const double pop_begin_us = NowUs();
      {
        // The straggler window (batch_window_us) parks this worker inside
        // TryPopBatch; declare it so the pool back-fills a spare.
        support::ThreadPool::BlockingScope blocking;
        batch = queue.TryPopBatch(options_.max_batch, options_.batch_window_us);
      }
      if (batch.empty()) break;
      const double popped_us = NowUs();
      for (auto& entry : batch) {
        entry.stamps.pop_begin_us = pop_begin_us;
        entry.stamps.popped_us = popped_us;
      }
      RunBatch(std::move(batch), queue.name());
    }
    std::uint32_t expected = kPumpArmed;
    if (state.compare_exchange_strong(expected, 0)) return;
    // An arm raced the drain: go around again so no push is ever stranded.
  }
}

void InferenceServer::RunBatch(std::vector<QueuedRequest> batch,
                               const std::string& queue_name) {
  support::profiler::LabelScope prof_label("serve:batch");
  static auto& batch_size_hist = Registry::Global().GetHistogram("serve/batch/size");
  static auto& queue_wait_hist = Registry::Global().GetHistogram("serve/queue_wait/us");
  static auto& run_hist = Registry::Global().GetHistogram("serve/run/us");
  static auto& request_hist = Registry::Global().GetHistogram("serve/request/us");

  // Drop entries whose deadline passed while queued. Expiry is recorded per
  // deadline class: "serve/expired/p<priority>/late_us" histograms how far
  // past its deadline each dropped request of that priority was.
  std::vector<QueuedRequest> live;
  live.reserve(batch.size());
  for (auto& entry : batch) {
    const double deadline = entry.request.deadline_us;
    const double now = NowUs();
    if (deadline > 0.0 && now > deadline) {
      Expired().Increment();
      Registry::Global()
          .GetHistogram("serve/expired/p" + std::to_string(entry.request.priority) +
                        "/late_us")
          .Record(now - deadline);
      support::TraceContextScope trace_scope(entry.trace);
      TNP_TRACE_INSTANT("serve.request", "expired",
                        support::TraceArg("model", entry.request.model),
                        support::TraceArg("priority", entry.request.priority),
                        support::TraceArg("late_us", now - deadline));
      TNP_LOG(DEBUG) << "expired in queue" << support::KV("model", entry.request.model)
                     << support::KV("priority", entry.request.priority)
                     << support::KV("late_us", now - deadline);
      ServeResponse response;
      response.status = ServeStatus::kExpired;
      Respond(std::move(entry), std::move(response));
      continue;
    }
    live.push_back(std::move(entry));
  }
  if (live.empty()) return;

  batch_size_hist.Record(static_cast<double>(live.size()));
  // By value: entries are moved into Respond() while the loop still runs.
  const std::string session_key = live.front().session_key;
  const ServedModel* model = FindModel(live.front().request.model);
  TNP_CHECK(model != nullptr);
  const core::FlowKind flow = live.front().flow;

  // The batch span links every member request: a micro-batched request's
  // critical path crosses this shared span, so the span lists all member
  // req_ids instead of claiming a single owner.
  TNP_TRACE_SCOPE("serve", "batch:" + session_key,
                  support::TraceArg("batch", static_cast<int>(live.size())),
                  support::TraceArg("req_ids", JoinRequestIds(live)));

  SessionPool::Lease lease = [&] {
    // Checkout can wait for a session to come back; declare the park so the
    // pool keeps its target concurrency while we do.
    support::ThreadPool::BlockingScope blocking;
    return pool_.Checkout(session_key);
  }();
  {
    const double session_us = NowUs();
    for (auto& entry : live) entry.stamps.session_us = session_us;
  }

  // Exclusive-resource discipline across all clients: hold every resource
  // the flow occupies, in fixed order (same protocol — and the same lock
  // domain unless one was injected — as the pipeline executor). The hold
  // also declares this pump task blocking, so the pool back-fills a spare
  // worker while the batch occupies the device.
  core::ResourceLocks::Hold hold = locks_->Acquire(ResourcesOf(*model, flow));

  for (auto& entry : live) {
    // Explicit handoff: re-install the context minted at admission, so the
    // spans below — and everything the session nests under them (flow run,
    // GraphExecutor, Neuron execute, kernels) — tag this request.
    support::TraceContextScope trace_scope(entry.trace);
    const double dispatch_us = NowUs();
    entry.stamps.run_begin_us = dispatch_us;
    queue_wait_hist.Record(dispatch_us - entry.enqueue_us);
    // Queue-wait span, stamped retroactively now that the wait is over
    // (admission -> dispatch, in the tracer timebase).
    support::Tracer::Global().Emit(
        "serve.request", "queue:" + queue_name, entry.trace_enqueue_us,
        support::Tracer::Global().NowUs() - entry.trace_enqueue_us,
        {support::TraceArg("model", entry.request.model)});

    ServeResponse response;
    response.model = entry.request.model;
    response.flow = entry.flow;
    response.fell_back = entry.fell_back;
    response.batch_size = static_cast<int>(live.size());
    try {
      for (auto& [input_name, value] : entry.request.inputs) {
        lease->SetInput(input_name, value);
      }
      {
        TNP_TRACE_SCOPE("serve.request", "run:" + session_key,
                        support::TraceArg("fell_back", entry.fell_back));
        lease->Run();
      }
      response.sim_us = lease->last_clock().total_us();
      const int num_outputs = lease->NumOutputs();
      response.outputs.reserve(static_cast<std::size_t>(num_outputs));
      for (int i = 0; i < num_outputs; ++i) {
        NDArray produced = lease->GetOutput(i);
        if (static_cast<std::size_t>(i) < entry.request.output_buffers.size() &&
            CopyIntoBuffer(produced, entry.request.output_buffers[static_cast<std::size_t>(i)])) {
          // Zero-allocation path: result lives in the caller's buffer, safe
          // past the session's next run.
          response.outputs.push_back(entry.request.output_buffers[static_cast<std::size_t>(i)]);
        } else {
          // No compatible buffer: deep-copy out of the session arena so the
          // response stays valid after the session is re-leased.
          response.outputs.push_back(produced.CopyDeep());
        }
      }
      response.status = ServeStatus::kOk;
      Completed().Increment();
    } catch (const std::exception& e) {
      response.status = ServeStatus::kError;
      response.error = e.what();
      response.outputs.clear();
    }

    const double end_us = NowUs();
    entry.stamps.run_end_us = end_us;
    response.queue_us = dispatch_us - entry.enqueue_us;
    response.run_us = end_us - dispatch_us;
    response.total_us = end_us - entry.enqueue_us;
    if (response.status == ServeStatus::kOk) {
      run_hist.Record(response.run_us);
      request_hist.Record(response.total_us);
      Registry::Global()
          .GetHistogram("serve/model/" + response.model + "/us")
          .Record(response.total_us);
    }
    Respond(std::move(entry), std::move(response));
  }
}

void InferenceServer::Respond(QueuedRequest entry, ServeResponse response) {
  response.client_id = entry.request.client_id;
  response.req_id = entry.trace.req_id;
  if (response.model.empty()) response.model = entry.request.model;
  if (response.total_us == 0.0) response.total_us = NowUs() - entry.enqueue_us;
  // Fold this request's lifetime into the attribution ledger before the
  // promise fires: the completion ring and phase histograms are consistent
  // by the time the client observes the response.
  attribution::Ledger::Global().Complete(entry.stamps, response.status, NowUs());
  entry.promise.set_value(std::move(response));
}

}  // namespace serve
}  // namespace tnp
