// Bounded, admission-controlled request queue with deadline/priority
// ordering and micro-batch extraction.
//
// One queue exists per physical resource (CPU, APU). Admission is explicit:
// TryPush refuses when the queue is at capacity instead of growing without
// bound — the caller decides whether to fall back to another queue or shed
// the request. Dispatch order is best-first: highest priority, then earliest
// deadline, then FIFO. PopBatch implements the dynamic micro-batcher: it
// blocks for the best request, then coalesces further requests bound for the
// same model x flow session (up to a batch-size cap, optionally waiting a
// short window for stragglers) so one session checkout and one resource-lock
// acquisition amortize over the whole batch.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/attribution.h"
#include "serve/request.h"
#include "support/metrics.h"
#include "support/trace_context.h"

namespace tnp {
namespace serve {

/// One admitted request as it flows through the server: the client request
/// plus the promise that answers it and the flow the scheduler routed it to.
struct QueuedRequest {
  ServeRequest request;
  std::promise<ServeResponse> promise;
  core::FlowKind flow = core::FlowKind::kTvmOnly;
  /// Session-pool key ("<model>/<flow>"); batches coalesce on this.
  std::string session_key;
  bool fell_back = false;
  double enqueue_us = 0.0;  ///< server-clock admission time
  std::uint64_t seq = 0;    ///< FIFO tiebreak, assigned by the queue
  /// Trace identity minted at admission; the executor re-installs it at
  /// dispatch so the request's spans stay causally linked across the
  /// queue's thread handoff.
  support::TraceContext trace;
  double trace_enqueue_us = 0.0;  ///< tracer-timebase admission time
  /// Phase boundary timestamps for critical-path attribution (trivially
  /// copyable; stamped by the server as the request moves, folded by
  /// attribution::Ledger at completion).
  attribution::PhaseStamps stamps;
};

class RequestQueue {
 public:
  /// `name` becomes the metrics suffix: gauge "serve/queue/<name>/depth"
  /// tracks live depth (and its high-watermark), counter
  /// "serve/queue/<name>/admitted" counts accepted pushes.
  RequestQueue(std::string name, std::size_t capacity);

  /// Admission control: false when at capacity or closed, leaving `entry`
  /// untouched so the caller can re-route or shed it. Consumes `entry` only
  /// on success. Never blocks.
  bool TryPush(QueuedRequest& entry);

  /// Best-first pop; blocks until an entry is available. Empty optional
  /// once the queue is closed and drained.
  std::optional<QueuedRequest> Pop();

  /// Micro-batcher: Pop, then coalesce entries with the same session_key
  /// (best-first among them) until `max_batch` is reached. When the queue
  /// holds fewer, waits up to `window_us` after the first pop for more to
  /// arrive; `window_us == 0` drains greedily without waiting. Returns an
  /// empty vector once closed and drained.
  std::vector<QueuedRequest> PopBatch(std::size_t max_batch, double window_us);

  /// PopBatch without the initial blocking wait: returns an empty vector
  /// immediately when the queue holds nothing (open or closed). The
  /// straggler window still applies once a first entry was taken. This is
  /// the pump-task dispatch path — event-driven consumers must never park a
  /// pool worker on an empty queue.
  std::vector<QueuedRequest> TryPopBatch(std::size_t max_batch, double window_us);

  /// Stop admitting; blocked Pop/PopBatch calls drain the remainder and
  /// then return empty.
  void Close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  /// Index of the best entry (priority desc, deadline asc, seq asc);
  /// `items_` must be non-empty. Caller holds `mutex_`.
  std::size_t BestIndex() const;
  /// Best entry restricted to `session_key`, or npos. Caller holds `mutex_`.
  std::size_t BestIndexOf(const std::string& session_key) const;
  /// Shared tail of PopBatch/TryPopBatch: take the best entry, coalesce its
  /// session, optionally wait out the straggler window. `items_` non-empty;
  /// caller holds `lock`.
  void CollectBatchLocked(std::unique_lock<std::mutex>& lock, std::size_t max_batch,
                          double window_us, std::vector<QueuedRequest>* batch);
  std::size_t TakeAt(std::size_t index, QueuedRequest* out);  ///< holds mutex_
  void RecordDepth();  ///< holds mutex_

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  const std::string name_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> items_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  support::metrics::Gauge& depth_gauge_;
  support::metrics::Counter& admitted_;
};

}  // namespace serve
}  // namespace tnp
