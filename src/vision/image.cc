#include "vision/image.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace tnp {
namespace vision {

namespace {

void CheckImage(const NDArray& image) {
  TNP_CHECK(image.defined());
  TNP_CHECK(image.dtype() == DType::kFloat32);
  TNP_CHECK_EQ(image.shape().rank(), 4);
  TNP_CHECK_EQ(image.shape()[0], 1);
}

}  // namespace

float GetPixel(const NDArray& image, int channel, int y, int x) {
  const std::int64_t height = image.shape()[2];
  const std::int64_t width = image.shape()[3];
  TNP_CHECK(y >= 0 && y < height && x >= 0 && x < width);
  return image.Data<float>()[(channel * height + y) * width + x];
}

void SetPixel(NDArray& image, int channel, int y, int x, float value) {
  const std::int64_t height = image.shape()[2];
  const std::int64_t width = image.shape()[3];
  TNP_CHECK(y >= 0 && y < height && x >= 0 && x < width);
  image.Data<float>()[(channel * height + y) * width + x] = value;
}

NDArray RgbToGray(const NDArray& frame) {
  CheckImage(frame);
  TNP_CHECK_EQ(frame.shape()[1], 3);
  const std::int64_t height = frame.shape()[2];
  const std::int64_t width = frame.shape()[3];
  NDArray gray = NDArray::Empty(Shape({1, 1, height, width}), DType::kFloat32);
  const float* in = frame.Data<float>();
  float* out = gray.Data<float>();
  const std::int64_t plane = height * width;
  for (std::int64_t i = 0; i < plane; ++i) {
    out[i] = 0.299f * in[i] + 0.587f * in[plane + i] + 0.114f * in[2 * plane + i];
  }
  return gray;
}

NDArray Crop(const NDArray& image, const Box& box) {
  CheckImage(image);
  const std::int64_t channels = image.shape()[1];
  const std::int64_t height = image.shape()[2];
  const std::int64_t width = image.shape()[3];

  const std::int64_t x0 = std::clamp<std::int64_t>(static_cast<std::int64_t>(box.x), 0, width - 1);
  const std::int64_t y0 = std::clamp<std::int64_t>(static_cast<std::int64_t>(box.y), 0, height - 1);
  const std::int64_t x1 =
      std::clamp<std::int64_t>(static_cast<std::int64_t>(box.x + box.w), x0 + 1, width);
  const std::int64_t y1 =
      std::clamp<std::int64_t>(static_cast<std::int64_t>(box.y + box.h), y0 + 1, height);

  NDArray crop = NDArray::Empty(Shape({1, channels, y1 - y0, x1 - x0}), DType::kFloat32);
  const float* in = image.Data<float>();
  float* out = crop.Data<float>();
  const std::int64_t out_h = y1 - y0;
  const std::int64_t out_w = x1 - x0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < out_h; ++y) {
      const float* src = in + (c * height + y0 + y) * width + x0;
      float* dst = out + (c * out_h + y) * out_w;
      std::copy(src, src + out_w, dst);
    }
  }
  return crop;
}

NDArray ResizeBilinear(const NDArray& image, std::int64_t out_h, std::int64_t out_w) {
  CheckImage(image);
  const std::int64_t channels = image.shape()[1];
  const std::int64_t in_h = image.shape()[2];
  const std::int64_t in_w = image.shape()[3];
  NDArray resized = NDArray::Empty(Shape({1, channels, out_h, out_w}), DType::kFloat32);

  const float* in = image.Data<float>();
  float* out = resized.Data<float>();
  const double scale_y = out_h > 1 ? static_cast<double>(in_h - 1) / (out_h - 1) : 0.0;
  const double scale_x = out_w > 1 ? static_cast<double>(in_w - 1) / (out_w - 1) : 0.0;

  for (std::int64_t c = 0; c < channels; ++c) {
    const float* plane = in + c * in_h * in_w;
    for (std::int64_t y = 0; y < out_h; ++y) {
      const double sy = y * scale_y;
      const std::int64_t y0 = static_cast<std::int64_t>(sy);
      const std::int64_t y1 = std::min(y0 + 1, in_h - 1);
      const double fy = sy - y0;
      for (std::int64_t x = 0; x < out_w; ++x) {
        const double sx = x * scale_x;
        const std::int64_t x0 = static_cast<std::int64_t>(sx);
        const std::int64_t x1 = std::min(x0 + 1, in_w - 1);
        const double fx = sx - x0;
        const double v00 = plane[y0 * in_w + x0];
        const double v01 = plane[y0 * in_w + x1];
        const double v10 = plane[y1 * in_w + x0];
        const double v11 = plane[y1 * in_w + x1];
        out[(c * out_h + y) * out_w + x] = static_cast<float>(
            v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx + v10 * fy * (1 - fx) +
            v11 * fy * fx);
      }
    }
  }
  return resized;
}

NDArray FaceCrop48(const NDArray& frame, const Box& box) {
  return ResizeBilinear(RgbToGray(Crop(frame, box)), 48, 48);
}

}  // namespace vision
}  // namespace tnp
