// Image utilities over NDArray frames.
//
// Frames are float32 NCHW (1, 3, H, W) RGB in [0, 1]; face crops handed to
// the models are (1, 1, 48, 48) grayscale.
#pragma once

#include "tensor/ndarray.h"
#include "vision/types.h"

namespace tnp {
namespace vision {

/// Luminance (0.299 R + 0.587 G + 0.114 B) of an RGB frame -> (1,1,H,W).
NDArray RgbToGray(const NDArray& frame);

/// Crop `box` (clamped to the frame) from a (1,C,H,W) image.
NDArray Crop(const NDArray& image, const Box& box);

/// Bilinear resize of a (1,C,H,W) image to (1,C,out_h,out_w).
NDArray ResizeBilinear(const NDArray& image, std::int64_t out_h, std::int64_t out_w);

/// Crop a face box and produce the (1,1,48,48) grayscale model input.
NDArray FaceCrop48(const NDArray& frame, const Box& box);

/// Pixel accessor helpers (bounds-checked in debug via TNP_CHECK).
float GetPixel(const NDArray& image, int channel, int y, int x);
void SetPixel(NDArray& image, int channel, int y, int x, float value);

}  // namespace vision
}  // namespace tnp
