// Basic geometry and label types for the application showcase.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tnp {
namespace vision {

/// Axis-aligned box in pixel coordinates (x, y = top-left corner).
struct Box {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  double Area() const { return std::max(0.0, w) * std::max(0.0, h); }
  double CenterX() const { return x + w / 2.0; }
  double CenterY() const { return y + h / 2.0; }
};

/// Intersection-over-union of two boxes.
double IoU(const Box& a, const Box& b);

/// True when the boxes overlap at all (the paper's "object box overlapped
/// the face detector box" candidate test).
bool Overlaps(const Box& a, const Box& b);

/// Scored detection.
struct Detection {
  Box box;
  double score = 0.0;
  int label = 0;
};

/// Greedy non-maximum suppression; keeps detections in descending score
/// order, dropping any with IoU > `iou_threshold` against a kept one.
std::vector<Detection> Nms(std::vector<Detection> detections, double iou_threshold);

/// The seven basic emotions of the paper's emotion-detection model.
enum class Emotion : std::uint8_t {
  kAngry = 0,
  kDisgusted,
  kFearful,
  kHappy,
  kNeutral,
  kSad,
  kSurprised,
};

inline constexpr int kNumEmotions = 7;

const char* EmotionName(Emotion emotion);

}  // namespace vision
}  // namespace tnp
