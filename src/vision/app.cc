#include "vision/app.h"

#include <chrono>

#include "core/pipeline_executor.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "vision/image.h"
#include "zoo/zoo.h"

namespace tnp {
namespace vision {

namespace {

double ClockDeltaUs(const core::InferenceSessionPtr& session) {
  return session->last_clock().total_us();
}

}  // namespace

ShowcaseApp::ShowcaseApp(const ShowcaseConfig& config) : config_(config) {
  if (config_.run_object_model) {
    zoo::ZooOptions options;
    options.image_size = config_.object_image_size;
    options.width = config_.object_width;
    options.seed = config_.seed;
    const relay::Module ssd = zoo::Build("mobilenet_ssd_quant", options);
    detection_session_ = core::CompileFlow(ssd, config_.detection_flow, config_.compile);
  }
  antispoof_session_ =
      core::CompileFlow(AntiSpoofFunctionalModule(), config_.antispoof_flow, config_.compile);
  emotion_session_ =
      core::CompileFlow(EmotionFunctionalModule(), config_.emotion_flow, config_.compile);
}

FrameResult ShowcaseApp::DetectStage(const NDArray& frame, int frame_index,
                                     StageClocks& clocks) {
  TNP_TRACE_SCOPE("vision", "DetectStage", support::TraceArg("frame", frame_index));
  static support::metrics::Counter& frames =
      support::metrics::Registry::Global().GetCounter("vision/frames");
  frames.Increment();
  FrameResult result;
  result.frame_index = frame_index;
  result.faces = DetectFaces(frame);

  if (config_.run_object_model) {
    // Feed the frame (resized to the SSD input) through the object model.
    const NDArray ssd_input = ResizeBilinear(frame, config_.object_image_size,
                                             config_.object_image_size);
    detection_session_->SetInput("t0", ssd_input);
    detection_session_->Run();
    clocks.detection_us += ClockDeltaUs(detection_session_);
    if (config_.use_model_boxes) {
      SsdDecodeConfig decode;
      decode.image_size = frame.shape()[3];
      result.bodies = DecodeSsd(detection_session_->GetOutput(0),
                                detection_session_->GetOutput(1), decode);
    }
  }
  if (!config_.use_model_boxes) {
    result.bodies = DetectBodies(frame);
  }

  // The paper's candidate gate: a face box must overlap an object box. The
  // face box is inflated slightly — the classical detector returns *tight*
  // pattern boxes, and a face sitting flush on top of its body would
  // otherwise only touch, not overlap.
  for (const auto& face : result.faces) {
    const Box inflated{face.box.x - face.box.w * 0.15, face.box.y - face.box.h * 0.15,
                       face.box.w * 1.3, face.box.h * 1.3};
    for (const auto& body : result.bodies) {
      if (Overlaps(inflated, body.box)) {
        result.results.push_back(FaceResult{face.box, 0.0, false, -1});
        break;
      }
    }
  }
  result.num_candidates = static_cast<int>(result.results.size());
  return result;
}

void ShowcaseApp::AntiSpoofStage(const NDArray& frame, FrameResult& result,
                                 StageClocks& clocks) {
  TNP_TRACE_SCOPE("vision", "AntiSpoofStage",
                  support::TraceArg("faces", static_cast<int>(result.results.size())));
  for (auto& face : result.results) {
    const NDArray crop = FaceCrop48(frame, face.box);
    antispoof_session_->SetInput("face", crop);
    antispoof_session_->Run();
    clocks.antispoof_us += ClockDeltaUs(antispoof_session_);
    const NDArray score = antispoof_session_->GetOutput(0);
    face.antispoof_score = score.Data<float>()[0];
    face.spoof = IsSpoof(score);
  }
}

void ShowcaseApp::EmotionStage(const NDArray& frame, FrameResult& result,
                               StageClocks& clocks) {
  TNP_TRACE_SCOPE("vision", "EmotionStage",
                  support::TraceArg("faces", static_cast<int>(result.results.size())));
  for (auto& face : result.results) {
    if (face.spoof) continue;  // only real faces are emotion-classified
    const NDArray crop = FaceCrop48(frame, face.box);
    emotion_session_->SetInput("face", crop);
    emotion_session_->Run();
    clocks.emotion_us += ClockDeltaUs(emotion_session_);
    face.emotion = ArgmaxEmotion(emotion_session_->GetOutput(0));
  }
}

FrameResult ShowcaseApp::ProcessFrame(const NDArray& frame, int frame_index) {
  StageClocks clocks;
  FrameResult result = DetectStage(frame, frame_index, clocks);
  AntiSpoofStage(frame, result, clocks);
  EmotionStage(frame, result, clocks);
  return result;
}

RunSummary ShowcaseApp::RunSequential(const Scene& scene, int num_frames) {
  RunSummary summary;
  StageClocks clocks;
  const auto start = std::chrono::steady_clock::now();
  for (int f = 0; f < num_frames; ++f) {
    const NDArray frame = RenderFrame(scene, f);
    FrameResult result = DetectStage(frame, f, clocks);
    AntiSpoofStage(frame, result, clocks);
    EmotionStage(frame, result, clocks);
    summary.frames.push_back(std::move(result));
  }
  const auto end = std::chrono::steady_clock::now();
  summary.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  summary.sim_detection_ms = clocks.detection_us / 1000.0;
  summary.sim_antispoof_ms = clocks.antispoof_us / 1000.0;
  summary.sim_emotion_ms = clocks.emotion_us / 1000.0;
  return summary;
}

RunSummary ShowcaseApp::RunPipelined(const Scene& scene, int num_frames) {
  struct Packet {
    int frame_index = 0;
    NDArray frame;
    FrameResult result;
  };

  StageClocks clocks;
  std::mutex clock_mutex;

  using Pipeline = core::Pipeline<Packet>;
  std::vector<Pipeline::Stage> stages;
  // Lock the resources each compiled model *actually* occupies (a fully
  // offloaded emotion model holds only the APU, so it overlaps with the
  // CPU-resident object detection of the next frame).
  const auto detection_resources = detection_session_
                                       ? detection_session_->UsedResources()
                                       : std::vector<sim::Resource>{sim::Resource::kCpu};
  stages.push_back(Pipeline::Stage{
      "obj-det", detection_resources,
      [this, &clocks, &clock_mutex](Packet packet) -> std::optional<Packet> {
        StageClocks local;
        packet.result = DetectStage(packet.frame, packet.frame_index, local);
        std::lock_guard<std::mutex> lock(clock_mutex);
        clocks.detection_us += local.detection_us;
        return packet;
      }});
  stages.push_back(Pipeline::Stage{
      "anti-spoof", antispoof_session_->UsedResources(),
      [this, &clocks, &clock_mutex](Packet packet) -> std::optional<Packet> {
        StageClocks local;
        AntiSpoofStage(packet.frame, packet.result, local);
        std::lock_guard<std::mutex> lock(clock_mutex);
        clocks.antispoof_us += local.antispoof_us;
        return packet;
      }});
  stages.push_back(Pipeline::Stage{
      "emotion", emotion_session_->UsedResources(),
      [this, &clocks, &clock_mutex](Packet packet) -> std::optional<Packet> {
        StageClocks local;
        EmotionStage(packet.frame, packet.result, local);
        std::lock_guard<std::mutex> lock(clock_mutex);
        clocks.emotion_us += local.emotion_us;
        return packet;
      }});

  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(num_frames));
  for (int f = 0; f < num_frames; ++f) {
    packets.push_back(Packet{f, RenderFrame(scene, f), FrameResult{}});
  }

  Pipeline pipeline(std::move(stages));
  const auto start = std::chrono::steady_clock::now();
  std::vector<Packet> processed = pipeline.Run(std::move(packets));
  const auto end = std::chrono::steady_clock::now();

  RunSummary summary;
  summary.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  summary.sim_detection_ms = clocks.detection_us / 1000.0;
  summary.sim_antispoof_ms = clocks.antispoof_us / 1000.0;
  summary.sim_emotion_ms = clocks.emotion_us / 1000.0;
  for (auto& packet : processed) summary.frames.push_back(std::move(packet.result));
  return summary;
}

double ShowcaseApp::DetectionStageUs() const {
  return detection_session_ ? detection_session_->EstimateLatency().total_us() : 0.0;
}

double ShowcaseApp::AntiSpoofStageUs() const {
  return antispoof_session_->EstimateLatency().total_us();
}

double ShowcaseApp::EmotionStageUs() const {
  return emotion_session_->EstimateLatency().total_us();
}

}  // namespace vision
}  // namespace tnp
