#include "vision/models.h"

#include <cmath>

#include "frontend/common.h"
#include "relay/pass.h"
#include "vision/scene.h"

namespace tnp {
namespace vision {

namespace {

using frontend::TypedCall;
using frontend::TypedVar;
using relay::Attrs;
using relay::ExprPtr;

constexpr int kCrop = kFaceCropSize;

ExprPtr Const(NDArray data) {
  auto constant = relay::MakeConstant(std::move(data));
  constant->set_checked_type(
      relay::Type::Tensor(constant->data().shape(), constant->data().dtype()));
  return constant;
}

/// Mouth band in face-normalized coordinates (must match scene.cc DrawFace).
bool InMouthBandRow(int y, int extent) {
  const double v = (y + 0.5) / extent;
  return v > 0.60 && v < 0.85;
}

}  // namespace

relay::Module AntiSpoofFunctionalModule() {
  auto input = TypedVar("face", Shape({1, 1, kCrop, kCrop}), DType::kFloat32);

  // 3x3 Laplacian kernel (zero-sum: flat regions -> 0 response).
  NDArray laplacian = NDArray::Zeros(Shape({1, 1, 3, 3}), DType::kFloat32);
  {
    float* k = laplacian.Data<float>();
    const float weights[9] = {-1, -1, -1, -1, 8, -1, -1, -1, -1};
    for (int i = 0; i < 9; ++i) k[i] = weights[i] / 8.0f;
  }

  ExprPtr x = TypedCall("nn.conv2d", {input, Const(std::move(laplacian)),
                                      frontend::ZeroBiasF32(1)},
                        Attrs().SetInts("strides", {1, 1}).SetInts("padding", {0, 0}));
  // Texture energy = squared edge response.
  x = TypedCall("multiply", {x, x});

  // Mask out the mouth band (emotion stripes would add energy on spoof
  // faces too) and the eye-blob borders; keep the rest of the face.
  const int conv_extent = kCrop - 2;  // valid 3x3 conv output extent
  NDArray mask = NDArray::Zeros(Shape({1, 1, conv_extent, conv_extent}), DType::kFloat32);
  {
    float* m = mask.Data<float>();
    int kept = 0;
    constexpr int kBorder = 4;  // detector boxes spill a little background in
    for (int y = 0; y < conv_extent; ++y) {
      const double v = (y + 1 + 0.5) / kCrop;  // +1: conv removed one border row
      const bool in_mouth = v > 0.55 && v < 0.90;
      const bool in_eyes = v > 0.18 && v < 0.44;  // eye-blob edges are common-mode
      const bool y_border = y < kBorder || y >= conv_extent - kBorder;
      for (int x_pos = 0; x_pos < conv_extent; ++x_pos) {
        const bool x_border = x_pos < kBorder || x_pos >= conv_extent - kBorder;
        const bool keep = !(in_mouth || in_eyes || x_border || y_border);
        m[y * conv_extent + x_pos] = keep ? 1.0f : 0.0f;
        kept += keep ? 1 : 0;
      }
    }
    // Normalize so the following global mean equals the mean over *kept*
    // pixels only (otherwise the masked zeros dilute the energy).
    const float renorm = static_cast<float>(conv_extent * conv_extent) /
                         static_cast<float>(std::max(kept, 1));
    for (int i = 0; i < conv_extent * conv_extent; ++i) m[i] *= renorm;
  }
  x = TypedCall("multiply", {x, Const(std::move(mask))});
  x = TypedCall("nn.global_avg_pool2d", {x});
  x = TypedCall("nn.batch_flatten", {x});

  // score = sigmoid(gain * (energy - threshold)).
  // Measured on rendered scenes (48x48 crops, after the bilinear resize
  // low-passes the 2x2 texture grain): real faces ~1.7e-3 masked Laplacian
  // energy, spoof faces <= 3e-4. Threshold sits between with a gain that
  // saturates the sigmoid on both sides.
  const float kThreshold = 4.0e-4f;
  const float kGain = 20000.0f;
  NDArray weight = NDArray::Full(Shape({1, 1}), DType::kFloat32, kGain);
  NDArray bias = NDArray::Full(Shape({1}), DType::kFloat32, -kGain * kThreshold);
  x = TypedCall("nn.dense", {x, Const(std::move(weight)), Const(std::move(bias))});
  x = TypedCall("sigmoid", {x});

  relay::Module module(relay::MakeFunction({input}, x));
  return relay::InferType().Run(module);
}

relay::Module EmotionFunctionalModule() {
  auto input = TypedVar("face", Shape({1, 1, kCrop, kCrop}), DType::kFloat32);

  // Quadrature matched filters over the mouth band: kernels 2m / 2m+1 are
  // the cos / sin gratings of emotion m's stripe frequency.
  NDArray filters = NDArray::Zeros(Shape({2 * kNumEmotions, 1, kCrop, kCrop}),
                                   DType::kFloat32);
  {
    float* data = filters.Data<float>();
    // Normalize so a perfectly matching stripe of unit amplitude gives a
    // response of ~0.5 regardless of band size.
    int band_rows = 0;
    for (int y = 0; y < kCrop; ++y) band_rows += InMouthBandRow(y, kCrop) ? 1 : 0;
    const float norm = 1.0f / (static_cast<float>(band_rows) * kCrop);
    for (int m = 0; m < kNumEmotions; ++m) {
      const double frequency = SceneStyle::EmotionFrequency(static_cast<Emotion>(m));
      for (int y = 0; y < kCrop; ++y) {
        if (!InMouthBandRow(y, kCrop)) continue;
        for (int x = 0; x < kCrop; ++x) {
          const double u = (x + 0.5) / kCrop;
          const double phase = 2.0 * M_PI * frequency * u;
          data[((2 * m) * kCrop + y) * kCrop + x] = static_cast<float>(std::cos(phase)) * norm;
          data[((2 * m + 1) * kCrop + y) * kCrop + x] =
              static_cast<float>(std::sin(phase)) * norm;
        }
      }
    }
  }

  ExprPtr x = TypedCall("nn.conv2d",
                        {input, Const(std::move(filters)),
                         frontend::ZeroBiasF32(2 * kNumEmotions)},
                        Attrs().SetInts("strides", {1, 1}).SetInts("padding", {0, 0}));
  // (1, 14, 1, 1) responses -> energies.
  x = TypedCall("multiply", {x, x});

  // Pair cos^2 + sin^2 with a 1x1 conv: weight (7, 14, 1, 1).
  NDArray pair = NDArray::Zeros(Shape({kNumEmotions, 2 * kNumEmotions, 1, 1}),
                                DType::kFloat32);
  {
    float* w = pair.Data<float>();
    for (int m = 0; m < kNumEmotions; ++m) {
      w[m * 2 * kNumEmotions + 2 * m] = 1.0f;
      w[m * 2 * kNumEmotions + 2 * m + 1] = 1.0f;
    }
  }
  x = TypedCall("nn.conv2d", {x, Const(std::move(pair)),
                              frontend::ZeroBiasF32(kNumEmotions)},
                Attrs().SetInts("strides", {1, 1}).SetInts("padding", {0, 0}));
  x = TypedCall("nn.batch_flatten", {x});

  // Scale energies so softmax is decisive: a matching stripe of amplitude
  // 0.3 yields energy ~(0.3/2)^2 = 0.0225; mismatches are orders smaller.
  NDArray scale = NDArray::Zeros(Shape({kNumEmotions, kNumEmotions}), DType::kFloat32);
  {
    float* w = scale.Data<float>();
    for (int m = 0; m < kNumEmotions; ++m) w[m * kNumEmotions + m] = 2000.0f;
  }
  x = TypedCall("nn.dense", {x, Const(std::move(scale)),
                             frontend::ZeroBiasF32(kNumEmotions)});
  x = TypedCall("nn.softmax", {x}, Attrs().SetInt("axis", -1));

  relay::Module module(relay::MakeFunction({input}, x));
  return relay::InferType().Run(module);
}

bool IsSpoof(const NDArray& anti_spoof_output) {
  TNP_CHECK(anti_spoof_output.defined());
  TNP_CHECK_GE(anti_spoof_output.NumElements(), 1);
  return anti_spoof_output.Data<float>()[0] < 0.5f;
}

int ArgmaxEmotion(const NDArray& emotion_output) {
  TNP_CHECK(emotion_output.defined());
  TNP_CHECK_EQ(emotion_output.NumElements(), kNumEmotions);
  const float* p = emotion_output.Data<float>();
  int best = 0;
  for (int i = 1; i < kNumEmotions; ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

}  // namespace vision
}  // namespace tnp
