// Hand-constructed ("functional") models for the application showcase.
//
// The zoo's DeePixBiS / emotion-CNN replicas carry seeded random weights —
// right for latency studies, useless for actual classification. The two
// models below have analytically constructed weights matched to the
// synthetic scene generator, so the end-to-end showcase genuinely works and
// is assertable, while still being ordinary Relay modules that run through
// the full BYOC compile/partition/execute stack:
//
//  * AntiSpoofFunctionalModule — a Laplacian micro-texture energy detector
//    (the cue pixel-wise anti-spoofing models like DeePixBiS learn): conv
//    (Laplacian) -> square -> masked mean -> dense threshold -> sigmoid.
//    Real faces (textured) score > 0.5, spoof faces (flat) score < 0.5.
//  * EmotionFunctionalModule — a quadrature matched-filter bank over the
//    mouth band: one (cos, sin) kernel pair per emotion stripe frequency,
//    energies combined by a 1x1 conv, softmax over the 7 emotions.
//
// Both consume the (1,1,48,48) grayscale face crop from FaceCrop48.
#pragma once

#include "relay/module.h"
#include "tensor/ndarray.h"

namespace tnp {
namespace vision {

inline constexpr int kFaceCropSize = 48;

relay::Module AntiSpoofFunctionalModule();
relay::Module EmotionFunctionalModule();

/// Decision helpers over raw model outputs.
/// Anti-spoof output is (1,1): P(real face); spoof when < 0.5.
bool IsSpoof(const NDArray& anti_spoof_output);

/// Emotion output is (1,7) softmax; returns the argmax emotion index.
int ArgmaxEmotion(const NDArray& emotion_output);

}  // namespace vision
}  // namespace tnp
