// The application showcase (paper Section 4, Figure 1):
//
//   frame -> object detector + face detector -> overlap gate ->
//   anti-spoofing model -> emotion detection model
//
// Three models from three frameworks run through the BYOC stack: the
// quantized Mobilenet-SSD (TFLite import) provides the object-detection
// stage, and the two functional models (vision/models.h) provide working
// anti-spoofing and emotion classification. Each stage is pinned to a flow
// permutation (Section 5.1 computation scheduling); RunPipelined overlaps
// stages across frames under exclusive resource use (Section 5.2,
// Figure 5) using the threaded pipeline executor.
#pragma once

#include <memory>

#include "core/flows.h"
#include "vision/detector.h"
#include "vision/models.h"
#include "vision/scene.h"

namespace tnp {
namespace vision {

struct ShowcaseConfig {
  /// Stage -> flow assignment. Defaults follow the paper's Figure-5
  /// prototype: object detection moved to CPU-only for exclusive resource
  /// use, anti-spoofing on CPU+APU, emotion on the APU alone.
  core::FlowKind detection_flow = core::FlowKind::kByocCpu;
  core::FlowKind antispoof_flow = core::FlowKind::kByocCpuApu;
  core::FlowKind emotion_flow = core::FlowKind::kNpApu;

  /// Run the Mobilenet-SSD model every frame (timing + decode plumbing). The
  /// candidate boxes still come from the classical detectors unless
  /// `use_model_boxes` is set.
  bool run_object_model = true;
  bool use_model_boxes = false;

  /// SSD input resolution (small default keeps numerics fast; the latency
  /// accounting is unaffected because stage latencies can also be taken
  /// from the static simulator at canonical scale).
  int object_image_size = 96;
  double object_width = 0.25;

  std::uint64_t seed = 2022;

  /// Shared compile settings for all three stage sessions. Setting
  /// `compile.artifact_cache` (e.g. an artifact::ArtifactStore) turns
  /// construction into load-or-build: stages whose compiled artifact is in
  /// the store are mapped from disk instead of rebuilt.
  core::FlowCompileSettings compile;
};

struct FaceResult {
  Box box;
  double antispoof_score = 0.0;
  bool spoof = false;
  /// Valid only when !spoof (spoof faces are not emotion-classified).
  int emotion = -1;
};

struct FrameResult {
  int frame_index = 0;
  std::vector<Detection> bodies;
  std::vector<Detection> faces;
  int num_candidates = 0;  ///< faces overlapping a body box
  std::vector<FaceResult> results;
};

struct RunSummary {
  std::vector<FrameResult> frames;
  double wall_ms = 0.0;
  /// Accumulated simulated time per stage (all frames).
  double sim_detection_ms = 0.0;
  double sim_antispoof_ms = 0.0;
  double sim_emotion_ms = 0.0;
  double SimTotalMs() const { return sim_detection_ms + sim_antispoof_ms + sim_emotion_ms; }
};

class ShowcaseApp {
 public:
  explicit ShowcaseApp(const ShowcaseConfig& config = {});

  /// Run the three-stage cascade on one frame.
  FrameResult ProcessFrame(const NDArray& frame, int frame_index);

  /// Render + process `num_frames` frames one after another.
  RunSummary RunSequential(const Scene& scene, int num_frames);

  /// Same work, but stages overlap across frames on the threaded pipeline
  /// executor with exclusive CPU/APU use.
  RunSummary RunPipelined(const Scene& scene, int num_frames);

  /// Per-stage simulated latency for one representative frame (used by the
  /// scheduling benches).
  double DetectionStageUs() const;
  double AntiSpoofStageUs() const;
  double EmotionStageUs() const;

  const ShowcaseConfig& config() const { return config_; }

 private:
  struct StageClocks {
    double detection_us = 0.0;
    double antispoof_us = 0.0;
    double emotion_us = 0.0;
  };

  FrameResult DetectStage(const NDArray& frame, int frame_index, StageClocks& clocks);
  void AntiSpoofStage(const NDArray& frame, FrameResult& result, StageClocks& clocks);
  void EmotionStage(const NDArray& frame, FrameResult& result, StageClocks& clocks);

  ShowcaseConfig config_;
  core::InferenceSessionPtr detection_session_;
  core::InferenceSessionPtr antispoof_session_;
  core::InferenceSessionPtr emotion_session_;
};

}  // namespace vision
}  // namespace tnp
