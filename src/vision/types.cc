#include "vision/types.h"

namespace tnp {
namespace vision {

double IoU(const Box& a, const Box& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.x + a.w, b.x + b.w);
  const double y1 = std::min(a.y + a.h, b.y + b.h);
  const double inter = std::max(0.0, x1 - x0) * std::max(0.0, y1 - y0);
  const double uni = a.Area() + b.Area() - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

bool Overlaps(const Box& a, const Box& b) {
  return a.x < b.x + b.w && b.x < a.x + a.w && a.y < b.y + b.h && b.y < a.y + a.h;
}

std::vector<Detection> Nms(std::vector<Detection> detections, double iou_threshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> kept;
  for (const auto& candidate : detections) {
    bool suppressed = false;
    for (const auto& keep : kept) {
      if (IoU(candidate.box, keep.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

const char* EmotionName(Emotion emotion) {
  switch (emotion) {
    case Emotion::kAngry: return "angry";
    case Emotion::kDisgusted: return "disgusted";
    case Emotion::kFearful: return "fearful";
    case Emotion::kHappy: return "happy";
    case Emotion::kNeutral: return "neutral";
    case Emotion::kSad: return "sad";
    case Emotion::kSurprised: return "surprised";
  }
  return "?";
}

}  // namespace vision
}  // namespace tnp
