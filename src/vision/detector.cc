#include "vision/detector.h"

#include <cmath>

#include "support/logging.h"

namespace tnp {
namespace vision {

namespace {

/// Integral image of a per-pixel {0,1} colour-match mask.
class MatchIntegral {
 public:
  MatchIntegral(const NDArray& frame, float r, float g, float b, double tolerance) {
    TNP_CHECK_EQ(frame.shape().rank(), 4);
    height_ = frame.shape()[2];
    width_ = frame.shape()[3];
    integral_.assign(static_cast<std::size_t>((height_ + 1) * (width_ + 1)), 0);

    const float* data = frame.Data<float>();
    const std::int64_t plane = height_ * width_;
    for (std::int64_t y = 0; y < height_; ++y) {
      for (std::int64_t x = 0; x < width_; ++x) {
        const float pr = data[y * width_ + x];
        const float pg = data[plane + y * width_ + x];
        const float pb = data[2 * plane + y * width_ + x];
        const bool match = std::fabs(pr - r) < tolerance && std::fabs(pg - g) < tolerance &&
                           std::fabs(pb - b) < tolerance;
        At(y + 1, x + 1) = At(y, x + 1) + At(y + 1, x) - At(y, x) + (match ? 1 : 0);
      }
    }
  }

  /// Count of matching pixels in [y0,y1) x [x0,x1).
  std::int64_t Count(std::int64_t y0, std::int64_t x0, std::int64_t y1, std::int64_t x1) const {
    return At(y1, x1) - At(y0, x1) - At(y1, x0) + At(y0, x0);
  }

  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }

 private:
  std::int64_t& At(std::int64_t y, std::int64_t x) {
    return integral_[static_cast<std::size_t>(y * (width_ + 1) + x)];
  }
  std::int64_t At(std::int64_t y, std::int64_t x) const {
    return integral_[static_cast<std::size_t>(y * (width_ + 1) + x)];
  }

  std::int64_t height_ = 0;
  std::int64_t width_ = 0;
  std::vector<std::int64_t> integral_;
};

/// Snap a detection to the tight bounding box of matching pixels inside a
/// slightly inflated window (the synthetic patterns are contiguous, so the
/// tight box localizes almost exactly).
Box RefineBox(const MatchIntegral& integral, const Box& box) {
  const std::int64_t x0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.x - box.w * 0.3));
  const std::int64_t y0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.y - box.h * 0.3));
  const std::int64_t x1 =
      std::min(integral.width(), static_cast<std::int64_t>(box.x + box.w * 1.3));
  const std::int64_t y1 =
      std::min(integral.height(), static_cast<std::int64_t>(box.y + box.h * 1.3));
  if (x1 <= x0 + 1 || y1 <= y0 + 1) return box;

  constexpr double kLineDensity = 0.30;
  std::int64_t top = -1;
  std::int64_t bottom = -1;
  for (std::int64_t y = y0; y < y1; ++y) {
    const double density = static_cast<double>(integral.Count(y, x0, y + 1, x1)) /
                           static_cast<double>(x1 - x0);
    if (density >= kLineDensity) {
      if (top < 0) top = y;
      bottom = y + 1;
    }
  }
  std::int64_t left = -1;
  std::int64_t right = -1;
  for (std::int64_t x = x0; x < x1; ++x) {
    const double density = static_cast<double>(integral.Count(y0, x, y1, x + 1)) /
                           static_cast<double>(y1 - y0);
    if (density >= kLineDensity) {
      if (left < 0) left = x;
      right = x + 1;
    }
  }
  if (top < 0 || left < 0 || bottom - top < 8 || right - left < 8) return box;
  return Box{static_cast<double>(left), static_cast<double>(top),
             static_cast<double>(right - left), static_cast<double>(bottom - top)};
}

std::vector<Detection> SlidingWindows(const MatchIntegral& integral,
                                      const SlidingWindowConfig& config, double aspect) {
  std::vector<Detection> detections;
  for (const int size : config.window_sizes) {
    const std::int64_t window_w = size;
    const std::int64_t window_h = static_cast<std::int64_t>(size * aspect);
    if (window_h > integral.height() || window_w > integral.width()) continue;
    const double area = static_cast<double>(window_w * window_h);
    for (std::int64_t y = 0; y + window_h <= integral.height(); y += config.stride) {
      for (std::int64_t x = 0; x + window_w <= integral.width(); x += config.stride) {
        const double fill =
            static_cast<double>(integral.Count(y, x, y + window_h, x + window_w)) / area;
        if (fill >= config.min_fill) {
          detections.push_back(Detection{
              Box{static_cast<double>(x), static_cast<double>(y),
                  static_cast<double>(window_w), static_cast<double>(window_h)},
              fill, 0});
        }
      }
    }
  }
  detections = Nms(std::move(detections), config.nms_iou);
  // Refine survivors to tight boxes, then dedupe the now-identical ones.
  for (auto& detection : detections) detection.box = RefineBox(integral, detection.box);
  return Nms(std::move(detections), 0.5);
}

}  // namespace

std::vector<Detection> DetectFaces(const NDArray& frame, const SceneStyle& style,
                                   const SlidingWindowConfig& config) {
  // The mouth/eye offsets shift all channels equally, so a generous
  // tolerance around the skin tone still matches most of the face while
  // rejecting background and clothing.
  const MatchIntegral integral(frame, style.skin_r, style.skin_g, style.skin_b,
                               config.color_tolerance * 2.2);
  return SlidingWindows(integral, config, /*aspect=*/1.0);
}

std::vector<Detection> DetectBodies(const NDArray& frame, const SceneStyle& style,
                                    SlidingWindowConfig config) {
  config.window_sizes = {64, 80, 96, 112, 128};
  config.stride = 6;
  const MatchIntegral integral(frame, style.body_r, style.body_g, style.body_b,
                               config.color_tolerance);
  return SlidingWindows(integral, config, /*aspect=*/1.25);
}

std::vector<Detection> DecodeSsd(const NDArray& boxes, const NDArray& scores,
                                 const SsdDecodeConfig& config) {
  TNP_CHECK(boxes.dtype() == DType::kFloat32 && scores.dtype() == DType::kFloat32);
  const std::int64_t num_box_values = boxes.NumElements();
  const std::int64_t num_score_values = scores.NumElements();
  const std::int64_t cells_total = num_box_values / (config.num_anchors * 4);
  TNP_CHECK_EQ(num_score_values, cells_total * config.num_anchors * config.num_classes);

  // A regular anchor grid matching the flattened head layout: anchors vary
  // fastest over (anchor, cell) in emission order; cell positions are laid
  // out on a sqrt(cells)-sized grid per feature map (approximated as one
  // combined grid — with synthetic weights this decoder demonstrates the
  // output plumbing, not detection accuracy).
  const std::int64_t grid = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::sqrt(static_cast<double>(cells_total))));
  const double cell_px = static_cast<double>(config.image_size) / static_cast<double>(grid);

  const float* box_data = boxes.Data<float>();
  const float* score_data = scores.Data<float>();

  std::vector<Detection> detections;
  for (std::int64_t cell = 0; cell < cells_total; ++cell) {
    const double cx = (static_cast<double>(cell % grid) + 0.5) * cell_px;
    const double cy = (static_cast<double>((cell / grid) % grid) + 0.5) * cell_px;
    for (int anchor = 0; anchor < config.num_anchors; ++anchor) {
      const std::int64_t box_base = (cell * config.num_anchors + anchor) * 4;
      if (box_base + 3 >= num_box_values) break;
      const double anchor_size = cell_px * (1.0 + 0.5 * anchor);
      const double dx = box_data[box_base + 0];
      const double dy = box_data[box_base + 1];
      const double dw = box_data[box_base + 2];
      const double dh = box_data[box_base + 3];
      const double w = anchor_size * std::exp(std::min(4.0, dw * 0.2));
      const double h = anchor_size * std::exp(std::min(4.0, dh * 0.2));
      const double center_x = cx + dx * 0.1 * anchor_size;
      const double center_y = cy + dy * 0.1 * anchor_size;

      const std::int64_t score_base =
          (cell * config.num_anchors + anchor) * config.num_classes;
      double best_score = 0.0;
      int best_class = 0;
      for (int c = 1; c < config.num_classes; ++c) {  // class 0 = background
        if (score_base + c >= num_score_values) break;
        if (score_data[score_base + c] > best_score) {
          best_score = score_data[score_base + c];
          best_class = c;
        }
      }
      if (best_score >= config.threshold) {
        detections.push_back(Detection{Box{center_x - w / 2.0, center_y - h / 2.0, w, h},
                                       best_score, best_class});
      }
    }
  }
  return Nms(std::move(detections), config.nms_iou);
}

}  // namespace vision
}  // namespace tnp
