#include "vision/scene.h"

#include <cmath>

#include "support/logging.h"
#include "support/rng.h"
#include "vision/image.h"

namespace tnp {
namespace vision {

namespace {

/// Deterministic per-pixel noise in [-1, 1] (stable across runs).
float HashNoise(std::int64_t x, std::int64_t y, std::uint64_t salt) {
  std::uint64_t h = (static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL) ^ salt;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<float>(static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0);
}

void FillRect(NDArray& frame, const Box& box, float r, float g, float b) {
  const std::int64_t height = frame.shape()[2];
  const std::int64_t width = frame.shape()[3];
  const std::int64_t x0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.x));
  const std::int64_t y0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.y));
  const std::int64_t x1 = std::min(width, static_cast<std::int64_t>(box.x + box.w));
  const std::int64_t y1 = std::min(height, static_cast<std::int64_t>(box.y + box.h));
  float* data = frame.Data<float>();
  const std::int64_t plane = height * width;
  for (std::int64_t y = y0; y < y1; ++y) {
    for (std::int64_t x = x0; x < x1; ++x) {
      data[y * width + x] = r;
      data[plane + y * width + x] = g;
      data[2 * plane + y * width + x] = b;
    }
  }
}

/// Draw one face pattern into `frame` at `box`.
void DrawFace(NDArray& frame, const Box& box, Emotion emotion, bool spoof,
              const SceneStyle& style) {
  const std::int64_t height = frame.shape()[2];
  const std::int64_t width = frame.shape()[3];
  const std::int64_t x0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.x));
  const std::int64_t y0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(box.y));
  const std::int64_t x1 = std::min(width, static_cast<std::int64_t>(box.x + box.w));
  const std::int64_t y1 = std::min(height, static_cast<std::int64_t>(box.y + box.h));
  if (x1 <= x0 || y1 <= y0) return;

  float* data = frame.Data<float>();
  const std::int64_t plane = height * width;
  const double frequency = SceneStyle::EmotionFrequency(emotion);

  for (std::int64_t y = y0; y < y1; ++y) {
    const double v = (y - box.y) / box.h;  // 0 at top of face, 1 at bottom
    for (std::int64_t x = x0; x < x1; ++x) {
      const double u = (x - box.x) / box.w;

      float luminance_offset = 0.0f;
      // Eyes: two dark blobs in the upper third.
      const bool in_left_eye = v > 0.22 && v < 0.40 && u > 0.18 && u < 0.36;
      const bool in_right_eye = v > 0.22 && v < 0.40 && u > 0.64 && u < 0.82;
      if (in_left_eye || in_right_eye) luminance_offset -= 0.40f;

      // Mouth: vertical stripes whose frequency encodes the emotion.
      const bool in_mouth = v > 0.60 && v < 0.85 && u > 0.15 && u < 0.85;
      if (in_mouth) {
        luminance_offset += style.stripe_amplitude *
                            static_cast<float>(std::cos(2.0 * M_PI * frequency * u));
      }

      // Real faces carry micro-texture everywhere except the mouth band
      // (keeping the emotion stripes clean); spoof faces are flat. The
      // texture is blocky (2x2-pixel grain) so it survives the bilinear
      // resize of the 48x48 face crop.
      if (!spoof && !in_mouth) {
        luminance_offset += style.texture_amplitude * HashNoise(x / 2, y / 2, 0x7ac3);
      }

      data[y * width + x] = style.skin_r + luminance_offset;
      data[plane + y * width + x] = style.skin_g + luminance_offset;
      data[2 * plane + y * width + x] = style.skin_b + luminance_offset;
    }
  }
}

}  // namespace

Scene Scene::Random(std::int64_t width, std::int64_t height, int num_persons, int num_posters,
                    std::uint64_t seed) {
  TNP_CHECK_GE(width, 160);
  TNP_CHECK_GE(height, 120);
  support::SplitMix64 rng(seed);
  Scene scene;
  scene.width = width;
  scene.height = height;

  // Entities are rejection-sampled so they never overlap: the classical
  // detectors localize by tight colour bounding boxes, which requires
  // spatially separated patterns (real detectors handle occlusion; that is
  // not the phenomenon this substrate needs to model).
  const auto clear_of_everything = [&scene](const Box& box) {
    const auto inflated = Box{box.x - 6, box.y - 6, box.w + 12, box.h + 12};
    for (const auto& person : scene.persons) {
      if (Overlaps(inflated, person.body) || Overlaps(inflated, person.face)) return false;
    }
    for (const auto& poster : scene.posters) {
      if (Overlaps(inflated, poster.face)) return false;
    }
    return true;
  };

  for (int i = 0; i < num_persons; ++i) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Person person;
      const double face_size = rng.Uniform(36.0, 52.0);
      const double body_w = face_size * rng.Uniform(1.5, 1.9);
      const double body_h = face_size * rng.Uniform(1.8, 2.2);
      const double x = rng.Uniform(4.0, std::max(5.0, static_cast<double>(width) - body_w - 8.0));
      const double body_y = rng.Uniform(
          face_size + 8.0,
          std::max(face_size + 9.0, static_cast<double>(height) - body_h - 4.0));
      person.body = Box{x, body_y, body_w, body_h};
      // Face sits on top of (and overlapping) the body.
      person.face = Box{x + (body_w - face_size) / 2.0, body_y - face_size * 0.8, face_size,
                        face_size};
      person.spoof = (i % 2) == 1;
      person.emotion = static_cast<Emotion>(i % kNumEmotions);
      person.velocity_x = 0.0;  // keep layouts non-overlapping across frames
      // Footprint covers the union of face and body extents.
      const double left = std::min(person.face.x, person.body.x);
      const double right = std::max(person.face.x + person.face.w,
                                    person.body.x + person.body.w);
      const Box footprint{left, person.face.y, right - left,
                          person.body.y + person.body.h - person.face.y};
      if (clear_of_everything(footprint)) {
        scene.persons.push_back(person);
        break;
      }
    }
  }

  for (int i = 0; i < num_posters; ++i) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      const double face_size = rng.Uniform(34.0, 44.0);
      Poster poster;
      poster.face = Box{rng.Uniform(2.0, std::max(3.0, static_cast<double>(width) - face_size - 2.0)),
                        2.0, face_size, face_size};
      if (clear_of_everything(poster.face)) {
        scene.posters.push_back(poster);
        break;
      }
    }
  }
  return scene;
}

std::vector<Person> PersonsAtFrame(const Scene& scene, int frame_index) {
  std::vector<Person> persons = scene.persons;
  for (auto& person : persons) {
    const double range =
        std::max(1.0, static_cast<double>(scene.width) - person.body.w - 8.0);
    const double face_dx = person.face.x - person.body.x;
    // Bounce between the frame edges (triangle wave over position).
    double position = person.body.x - 4.0 + person.velocity_x * frame_index;
    double wrapped = std::fmod(position, 2.0 * range);
    if (wrapped < 0) wrapped += 2.0 * range;
    person.body.x = 4.0 + (wrapped <= range ? wrapped : 2.0 * range - wrapped);
    person.face.x = person.body.x + face_dx;
  }
  return persons;
}

NDArray RenderFrame(const Scene& scene, int frame_index, const SceneStyle& style) {
  NDArray frame = NDArray::Empty(Shape({1, 3, scene.height, scene.width}), DType::kFloat32);
  float* data = frame.Data<float>();
  const std::int64_t plane = scene.height * scene.width;

  // Background: flat grey + per-pixel noise (per-frame salt so video isn't
  // static).
  for (std::int64_t y = 0; y < scene.height; ++y) {
    for (std::int64_t x = 0; x < scene.width; ++x) {
      const float noise =
          style.noise * HashNoise(x, y, 0x1234 + static_cast<std::uint64_t>(frame_index));
      data[y * scene.width + x] = style.background + noise;
      data[plane + y * scene.width + x] = style.background + noise;
      data[2 * plane + y * scene.width + x] = style.background + noise;
    }
  }

  for (const auto& poster : scene.posters) {
    // Posters are printed faces: flat (spoof-like), neutral emotion.
    DrawFace(frame, poster.face, Emotion::kNeutral, /*spoof=*/true, style);
  }
  for (const auto& person : PersonsAtFrame(scene, frame_index)) {
    FillRect(frame, person.body, style.body_r, style.body_g, style.body_b);
    DrawFace(frame, person.face, person.emotion, person.spoof, style);
  }
  return frame;
}

}  // namespace vision
}  // namespace tnp
