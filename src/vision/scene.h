// Synthetic video scenes with ground truth.
//
// The paper's showcase runs on real video; offline we generate procedural
// frames that carry the *signal structure* each model needs:
//  * faces are skin-coloured patterns with eye blobs and a mouth whose
//    stripe frequency encodes the person's emotion (one frequency per
//    emotion, in face-normalized coordinates, so it survives crop+resize);
//  * real faces carry high-frequency surface texture; presentation-attack
//    (spoof) faces are the same pattern but textureless/flat — exactly the
//    micro-texture cue pixel-wise anti-spoofing models exploit;
//  * persons are clothing-coloured body rectangles with the face on top;
//    wall "posters" are bare faces with no body, which the showcase's
//    overlap gate (object box x face box) must reject.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ndarray.h"
#include "vision/types.h"

namespace tnp {
namespace vision {

struct Person {
  Box body;
  Box face;
  bool spoof = false;  ///< presentation attack (photo held in front)
  Emotion emotion = Emotion::kNeutral;
  double velocity_x = 0.0;  ///< pixels per frame (horizontal drift)
};

struct Poster {
  Box face;  ///< a bare face on the wall; never overlaps a person's body
};

struct Scene {
  std::int64_t width = 320;
  std::int64_t height = 240;
  std::vector<Person> persons;
  std::vector<Poster> posters;

  /// Deterministic random scene with `num_persons` moving persons (faces
  /// alternating real/spoof, emotions cycling) and `num_posters` posters.
  static Scene Random(std::int64_t width, std::int64_t height, int num_persons,
                      int num_posters, std::uint64_t seed);
};

/// Scene colour / pattern constants (shared with the classical detectors
/// and the hand-weighted functional models).
struct SceneStyle {
  // Skin tone of face patterns.
  float skin_r = 0.82f;
  float skin_g = 0.62f;
  float skin_b = 0.50f;
  // Clothing colour of person bodies.
  float body_r = 0.25f;
  float body_g = 0.35f;
  float body_b = 0.75f;
  // Background base + noise amplitude.
  float background = 0.35f;
  float noise = 0.04f;
  // Mouth stripe amplitude; stripe frequency of emotion k is 2 + 2k cycles
  // across the face width.
  float stripe_amplitude = 0.30f;
  // Real-face texture amplitude (zero on spoof faces).
  float texture_amplitude = 0.12f;

  static double EmotionFrequency(Emotion emotion) {
    return 2.0 + 2.0 * static_cast<int>(emotion);
  }
};

/// Render one frame of the scene (persons advance by `frame_index` x their
/// velocity, wrapping around). Returns a (1,3,H,W) float RGB image in [0,1].
NDArray RenderFrame(const Scene& scene, int frame_index, const SceneStyle& style = {});

/// Person positions at a given frame (ground truth for assertions).
std::vector<Person> PersonsAtFrame(const Scene& scene, int frame_index);

}  // namespace vision
}  // namespace tnp
