// Classical detectors over synthetic frames, plus the SSD output decoder.
//
// The showcase needs candidate boxes per frame. Two sources exist:
//  * the classical colour-matched sliding-window detectors below (reliable
//    on the synthetic scenes — these drive the end-to-end assertions), and
//  * DecodeSsd, which decodes the Mobilenet-SSD graph outputs (with seeded
//    synthetic weights its detections are arbitrary, but it exercises the
//    full model-output plumbing the paper's app uses).
#pragma once

#include "tensor/ndarray.h"
#include "vision/scene.h"
#include "vision/types.h"

namespace tnp {
namespace vision {

struct SlidingWindowConfig {
  std::vector<int> window_sizes = {32, 40, 48, 56, 64};
  int stride = 4;
  double min_fill = 0.55;    ///< fraction of matching pixels to fire
  double nms_iou = 0.3;
  double color_tolerance = 0.10;
};

/// Detect face-coloured regions (skin tone from SceneStyle).
std::vector<Detection> DetectFaces(const NDArray& frame, const SceneStyle& style = {},
                                   const SlidingWindowConfig& config = {});

/// Detect person bodies (clothing colour from SceneStyle). Uses taller
/// windows (bodies are ~2x higher than wide).
std::vector<Detection> DetectBodies(const NDArray& frame, const SceneStyle& style = {},
                                    SlidingWindowConfig config = {});

/// Decode the SSD head outputs (boxes: (1, A*4*cells...), scores:
/// (1, A*C*cells...)) against a regular anchor grid. Returns detections
/// with score above `threshold` after NMS.
struct SsdDecodeConfig {
  int num_anchors = 3;
  int num_classes = 21;
  double threshold = 0.6;
  double nms_iou = 0.45;
  std::int64_t image_size = 300;
};

std::vector<Detection> DecodeSsd(const NDArray& boxes, const NDArray& scores,
                                 const SsdDecodeConfig& config);

}  // namespace vision
}  // namespace tnp
