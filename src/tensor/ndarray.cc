#include "tensor/ndarray.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/metrics.h"

namespace tnp {

namespace {

// Process-local mirrors of the registry counters: reading a plain atomic is
// cheap and survives Registry::Reset() (the registry counters are the
// observable metric; these back TotalAllocations for tests).
std::atomic<std::int64_t> g_total_allocs{0};
std::atomic<std::int64_t> g_total_alloc_bytes{0};

void CountAllocation(std::size_t bytes) {
  static support::metrics::Counter& allocs =
      support::metrics::Registry::Global().GetCounter("tensor/allocs");
  static support::metrics::Counter& alloc_bytes =
      support::metrics::Registry::Global().GetCounter("tensor/alloc_bytes");
  allocs.Increment();
  alloc_bytes.Increment(static_cast<std::int64_t>(bytes));
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_alloc_bytes.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
}

}  // namespace

NDArray::Storage::Storage(std::size_t bytes_in) : bytes(bytes_in) {
  // Always allocate at least one byte so zero-element tensors have distinct,
  // valid storage.
  const std::size_t alloc = std::max<std::size_t>(bytes, 1);
  // 64-byte alignment for cache-line-aligned kernel access.
  const std::size_t aligned = (alloc + 63) / 64 * 64;
  data = std::aligned_alloc(64, aligned);
  TNP_CHECK(data != nullptr) << "allocation of " << aligned << " bytes failed";
  CountAllocation(aligned);
}

NDArray::Storage::Storage(void* external, std::size_t bytes_in,
                          std::shared_ptr<const void> keep_alive_in)
    : data(external), bytes(bytes_in), owned(false), keep_alive(std::move(keep_alive_in)) {}

NDArray::Storage::~Storage() {
  if (owned) std::free(data);
}

std::int64_t NDArray::TotalAllocations() {
  return g_total_allocs.load(std::memory_order_relaxed);
}

std::int64_t NDArray::TotalAllocatedBytes() {
  return g_total_alloc_bytes.load(std::memory_order_relaxed);
}

NDArray NDArray::ViewOver(void* data, std::size_t bytes, Shape shape, DType dtype,
                          std::shared_ptr<const void> keep_alive) {
  TNP_CHECK(data != nullptr);
  const std::size_t needed =
      static_cast<std::size_t>(shape.NumElements()) * DTypeBytes(dtype);
  TNP_CHECK(bytes >= needed) << "view of " << bytes << " bytes cannot hold shape "
                             << shape.ToString();
  return NDArray(std::make_shared<Storage>(data, bytes, std::move(keep_alive)),
                 std::move(shape), dtype);
}

NDArray NDArray::Empty(Shape shape, DType dtype) {
  const std::size_t bytes = static_cast<std::size_t>(shape.NumElements()) * DTypeBytes(dtype);
  return NDArray(std::make_shared<Storage>(bytes), std::move(shape), dtype);
}

NDArray NDArray::Zeros(Shape shape, DType dtype) {
  NDArray array = Empty(std::move(shape), dtype);
  std::memset(array.storage_->data, 0, array.SizeBytes());
  return array;
}

NDArray NDArray::Full(Shape shape, DType dtype, double value) {
  NDArray array = Empty(std::move(shape), dtype);
  const std::int64_t n = array.NumElements();
  switch (dtype) {
    case DType::kFloat32: {
      float* p = array.Data<float>();
      std::fill(p, p + n, static_cast<float>(value));
      break;
    }
    case DType::kInt8: {
      std::int8_t* p = array.Data<std::int8_t>();
      std::fill(p, p + n, static_cast<std::int8_t>(value));
      break;
    }
    case DType::kUInt8: {
      std::uint8_t* p = array.Data<std::uint8_t>();
      std::fill(p, p + n, static_cast<std::uint8_t>(value));
      break;
    }
    case DType::kInt32: {
      std::int32_t* p = array.Data<std::int32_t>();
      std::fill(p, p + n, static_cast<std::int32_t>(value));
      break;
    }
    case DType::kInt64: {
      std::int64_t* p = array.Data<std::int64_t>();
      std::fill(p, p + n, static_cast<std::int64_t>(value));
      break;
    }
    case DType::kBool: {
      bool* p = array.Data<bool>();
      std::fill(p, p + n, value != 0.0);
      break;
    }
  }
  return array;
}

NDArray NDArray::RandomNormal(Shape shape, std::uint64_t seed, float stddev) {
  NDArray array = Empty(std::move(shape), DType::kFloat32);
  support::SplitMix64 rng(seed);
  float* p = array.Data<float>();
  const std::int64_t n = array.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.Normal()) * stddev;
  }
  return array;
}

NDArray NDArray::RandomInt8(Shape shape, std::uint64_t seed, int lo, int hi) {
  NDArray array = Empty(std::move(shape), DType::kInt8);
  support::SplitMix64 rng(seed);
  std::int8_t* p = array.Data<std::int8_t>();
  const std::int64_t n = array.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::int8_t>(rng.UniformInt(lo, hi));
  }
  return array;
}

NDArray NDArray::CopyDeep() const {
  TNP_CHECK(defined());
  NDArray copy = Empty(shape_, dtype_);
  std::memcpy(copy.storage_->data, storage_->data, SizeBytes());
  copy.quant_ = quant_;
  return copy;
}

NDArray NDArray::Reshape(Shape new_shape) const {
  TNP_CHECK(defined());
  TNP_CHECK_EQ(new_shape.NumElements(), NumElements())
      << "reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  NDArray view(storage_, std::move(new_shape), dtype_);
  view.quant_ = quant_;
  return view;
}

double NDArray::MaxAbsDiff(const NDArray& a, const NDArray& b) {
  TNP_CHECK(a.defined() && b.defined());
  TNP_CHECK(a.dtype() == DType::kFloat32 && b.dtype() == DType::kFloat32);
  TNP_CHECK(a.shape() == b.shape()) << a.shape().ToString() << " vs " << b.shape().ToString();
  const float* pa = a.Data<float>();
  const float* pb = b.Data<float>();
  double max_diff = 0.0;
  const std::int64_t n = a.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::fabs(pa[i] - pb[i])));
  }
  return max_diff;
}

bool NDArray::BitEqual(const NDArray& a, const NDArray& b) {
  if (!a.defined() || !b.defined()) return a.defined() == b.defined();
  if (a.dtype() != b.dtype() || a.shape() != b.shape()) return false;
  return std::memcmp(a.RawData(), b.RawData(), a.SizeBytes()) == 0;
}

std::string NDArray::ToString(std::int64_t max_elements) const {
  if (!defined()) return "NDArray(null)";
  std::ostringstream os;
  os << "NDArray" << shape_.ToString() << " " << DTypeName(dtype_) << " [";
  const std::int64_t n = std::min(max_elements, NumElements());
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != 0) os << ", ";
    switch (dtype_) {
      case DType::kFloat32: os << Data<float>()[i]; break;
      case DType::kInt8: os << static_cast<int>(Data<std::int8_t>()[i]); break;
      case DType::kUInt8: os << static_cast<int>(Data<std::uint8_t>()[i]); break;
      case DType::kInt32: os << Data<std::int32_t>()[i]; break;
      case DType::kInt64: os << Data<std::int64_t>()[i]; break;
      case DType::kBool: os << (Data<bool>()[i] ? "true" : "false"); break;
    }
  }
  if (NumElements() > n) os << ", ...";
  os << "]";
  return os.str();
}

}  // namespace tnp
