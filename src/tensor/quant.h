// Per-tensor affine quantization parameters.
//
// real_value = scale * (quantized_value - zero_point)
//
// Relay QNN carries these as *operator* attributes (operator-oriented); the
// Neuron IR carries them on *tensors* (tensor-oriented). Converting between
// the two representations is the paper's Section 3.3 ("Augment QNN flow").
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace tnp {

struct QuantParams {
  float scale = 0.0f;
  std::int32_t zero_point = 0;
  bool valid = false;

  QuantParams() = default;
  QuantParams(float scale_in, std::int32_t zero_point_in)
      : scale(scale_in), zero_point(zero_point_in), valid(true) {}

  static QuantParams None() { return QuantParams(); }

  bool operator==(const QuantParams& other) const noexcept {
    if (valid != other.valid) return false;
    if (!valid) return true;
    return scale == other.scale && zero_point == other.zero_point;
  }
  bool operator!=(const QuantParams& other) const noexcept { return !(*this == other); }

  /// Quantize a real value to int8 with round-to-nearest and saturation.
  std::int8_t Quantize(float real) const {
    const float q = std::nearbyint(real / scale) + static_cast<float>(zero_point);
    if (q < -128.0f) return -128;
    if (q > 127.0f) return 127;
    return static_cast<std::int8_t>(q);
  }

  float Dequantize(std::int8_t q) const {
    return scale * (static_cast<float>(q) - static_cast<float>(zero_point));
  }

  std::string ToString() const {
    if (!valid) return "none";
    return "scale=" + std::to_string(scale) + " zp=" + std::to_string(zero_point);
  }
};

}  // namespace tnp
