// Tensor shapes. All shapes in this stack are static (the paper's models are
// fixed-shape vision networks), which keeps type inference total and lets the
// device cost model price every operator exactly.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tnp {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { Validate(); }

  int rank() const noexcept { return static_cast<int>(dims_.size()); }
  bool empty() const noexcept { return dims_.empty(); }

  std::int64_t operator[](int axis) const;

  /// Dim with negative-axis support (-1 == last axis).
  std::int64_t Dim(int axis) const;

  /// Total number of elements (1 for a rank-0 scalar).
  std::int64_t NumElements() const noexcept;

  const std::vector<std::int64_t>& dims() const noexcept { return dims_; }

  /// Row-major strides in elements.
  std::vector<std::int64_t> Strides() const;

  std::string ToString() const;

  bool operator==(const Shape& other) const noexcept { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const noexcept { return dims_ != other.dims_; }

 private:
  void Validate() const;

  std::vector<std::int64_t> dims_;
};

std::ostream& operator<<(std::ostream& os, const Shape& shape);

}  // namespace tnp
