// Element data types. The stack supports the types that appear in the
// paper's evaluation: float32 models and int8 (QNN) quantized models, plus
// the integer types needed as accumulators / indices.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.h"

namespace tnp {

enum class DType : std::uint8_t {
  kFloat32,
  kInt8,
  kUInt8,
  kInt32,
  kInt64,
  kBool,
};

inline std::size_t DTypeBytes(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return 4;
    case DType::kInt8: return 1;
    case DType::kUInt8: return 1;
    case DType::kInt32: return 4;
    case DType::kInt64: return 8;
    case DType::kBool: return 1;
  }
  throw InternalError("unknown dtype");
}

inline const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "float32";
    case DType::kInt8: return "int8";
    case DType::kUInt8: return "uint8";
    case DType::kInt32: return "int32";
    case DType::kInt64: return "int64";
    case DType::kBool: return "bool";
  }
  return "?";
}

/// Parse a dtype name as it appears in model files ("float32", "int8", ...).
inline DType DTypeFromName(const std::string& name) {
  if (name == "float32") return DType::kFloat32;
  if (name == "int8") return DType::kInt8;
  if (name == "uint8") return DType::kUInt8;
  if (name == "int32") return DType::kInt32;
  if (name == "int64") return DType::kInt64;
  if (name == "bool") return DType::kBool;
  throw Error(ErrorKind::kParseError, "unknown dtype name '" + name + "'");
}

/// True for the quantized storage types carried by QNN models.
inline bool IsQuantizedStorageType(DType dtype) {
  return dtype == DType::kInt8 || dtype == DType::kUInt8;
}

/// Map a C++ scalar type to its DType tag at compile time.
template <typename T>
struct DTypeOf;
template <> struct DTypeOf<float> { static constexpr DType value = DType::kFloat32; };
template <> struct DTypeOf<std::int8_t> { static constexpr DType value = DType::kInt8; };
template <> struct DTypeOf<std::uint8_t> { static constexpr DType value = DType::kUInt8; };
template <> struct DTypeOf<std::int32_t> { static constexpr DType value = DType::kInt32; };
template <> struct DTypeOf<std::int64_t> { static constexpr DType value = DType::kInt64; };
template <> struct DTypeOf<bool> { static constexpr DType value = DType::kBool; };

}  // namespace tnp
