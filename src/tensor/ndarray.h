// NDArray: dense, row-major, reference-counted host tensor.
//
// Copying an NDArray is cheap (shared storage). CopyDeep() clones storage.
// Storage is 64-byte aligned so kernels can assume cache-line alignment.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/logging.h"
#include "support/rng.h"
#include "tensor/dtype.h"
#include "tensor/quant.h"
#include "tensor/shape.h"

namespace tnp {

class NDArray {
 public:
  /// Default-constructed NDArray is "null"; defined() is false.
  NDArray() = default;

  /// Allocate an uninitialized array.
  static NDArray Empty(Shape shape, DType dtype);

  /// Allocate and zero-fill.
  static NDArray Zeros(Shape shape, DType dtype);

  /// Allocate and fill with a single value (value cast to the dtype).
  static NDArray Full(Shape shape, DType dtype, double value);

  /// Copy from a host vector (size must equal NumElements).
  template <typename T>
  static NDArray FromVector(Shape shape, const std::vector<T>& values) {
    NDArray array = Empty(std::move(shape), DTypeOf<T>::value);
    TNP_CHECK_EQ(static_cast<std::int64_t>(values.size()), array.NumElements());
    std::copy(values.begin(), values.end(), array.Data<T>());
    return array;
  }

  /// Seeded N(0, stddev) float32 initializer (synthetic weights).
  static NDArray RandomNormal(Shape shape, std::uint64_t seed, float stddev = 0.1f);

  /// Seeded uniform int8 initializer in [lo, hi] (synthetic quantized weights).
  static NDArray RandomInt8(Shape shape, std::uint64_t seed, int lo = -127, int hi = 127);

  /// Non-owning view over externally managed memory (e.g. a planned arena
  /// region). `data` must stay valid while the view or any copy of it lives;
  /// pass `keep_alive` to pin the backing allocation. `bytes` must cover the
  /// shape. Views are not counted as tensor allocations.
  static NDArray ViewOver(void* data, std::size_t bytes, Shape shape, DType dtype,
                          std::shared_ptr<const void> keep_alive = nullptr);

  /// True when the storage is a non-owning view (ViewOver).
  bool IsView() const noexcept { return storage_ != nullptr && !storage_->owned; }

  bool defined() const noexcept { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  DType dtype() const noexcept { return dtype_; }
  std::int64_t NumElements() const { return shape_.NumElements(); }
  std::size_t SizeBytes() const { return static_cast<std::size_t>(NumElements()) * DTypeBytes(dtype_); }

  /// Per-tensor quantization parameters (valid only for quantized tensors).
  const QuantParams& quant() const noexcept { return quant_; }
  void set_quant(QuantParams quant) { quant_ = quant; }

  /// Typed raw pointers; dtype-checked.
  template <typename T>
  T* Data() {
    TNP_CHECK(defined());
    TNP_CHECK(DTypeOf<T>::value == dtype_)
        << "dtype mismatch: stored " << DTypeName(dtype_) << " accessed as "
        << DTypeName(DTypeOf<T>::value);
    return reinterpret_cast<T*>(storage_->data);
  }
  template <typename T>
  const T* Data() const {
    TNP_CHECK(defined());
    TNP_CHECK(DTypeOf<T>::value == dtype_)
        << "dtype mismatch: stored " << DTypeName(dtype_) << " accessed as "
        << DTypeName(DTypeOf<T>::value);
    return reinterpret_cast<const T*>(storage_->data);
  }

  template <typename T>
  std::span<T> Span() { return std::span<T>(Data<T>(), static_cast<std::size_t>(NumElements())); }
  template <typename T>
  std::span<const T> Span() const {
    return std::span<const T>(Data<T>(), static_cast<std::size_t>(NumElements()));
  }

  void* RawData() { TNP_CHECK(defined()); return storage_->data; }
  const void* RawData() const { TNP_CHECK(defined()); return storage_->data; }

  /// Deep copy (new storage, same contents/metadata).
  NDArray CopyDeep() const;

  /// Same data reinterpreted with a new shape (element count must match).
  NDArray Reshape(Shape new_shape) const;

  /// Elementwise max-abs difference against another float32 array.
  static double MaxAbsDiff(const NDArray& a, const NDArray& b);

  /// True if same dtype/shape and bytes identical.
  static bool BitEqual(const NDArray& a, const NDArray& b);

  std::string ToString(std::int64_t max_elements = 8) const;

  /// Total owning allocations / bytes since process start (also published
  /// as the "tensor/allocs" and "tensor/alloc_bytes" registry counters) —
  /// the hooks the zero-allocation steady-state tests read.
  static std::int64_t TotalAllocations();
  static std::int64_t TotalAllocatedBytes();

 private:
  struct Storage {
    explicit Storage(std::size_t bytes);
    Storage(void* external, std::size_t bytes, std::shared_ptr<const void> keep_alive);
    ~Storage();
    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;
    void* data = nullptr;
    std::size_t bytes = 0;
    bool owned = true;
    std::shared_ptr<const void> keep_alive;
  };

  NDArray(std::shared_ptr<Storage> storage, Shape shape, DType dtype)
      : storage_(std::move(storage)), shape_(std::move(shape)), dtype_(dtype) {}

  std::shared_ptr<Storage> storage_;
  Shape shape_;
  DType dtype_ = DType::kFloat32;
  QuantParams quant_;
};

}  // namespace tnp
