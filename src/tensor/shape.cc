#include "tensor/shape.h"

#include <ostream>

#include "support/logging.h"

namespace tnp {

std::int64_t Shape::operator[](int axis) const {
  TNP_CHECK(axis >= 0 && axis < rank()) << "axis " << axis << " out of range for " << ToString();
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::Dim(int axis) const {
  if (axis < 0) axis += rank();
  return (*this)[axis];
}

std::int64_t Shape::NumElements() const noexcept {
  std::int64_t count = 1;
  for (const std::int64_t d : dims_) count *= d;
  return count;
}

std::vector<std::int64_t> Shape::Strides() const {
  std::vector<std::int64_t> strides(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    strides[static_cast<std::size_t>(i)] =
        strides[static_cast<std::size_t>(i) + 1] * dims_[static_cast<std::size_t>(i) + 1];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += ")";
  return out;
}

void Shape::Validate() const {
  for (const std::int64_t d : dims_) {
    TNP_CHECK_GE(d, 0) << "negative dimension in shape";
  }
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  return os << shape.ToString();
}

}  // namespace tnp
