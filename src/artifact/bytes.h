// Bounds-checked binary encoding primitives for the META section.
//
// MetaWriter appends little-endian scalars/strings/vectors to a growable
// buffer; MetaReader replays them over a borrowed byte range and throws a
// typed kParseError on ANY overrun or implausible length — hostile META
// bytes fail closed instead of reading out of bounds. Tensor *payloads* do
// not pass through here (they live in the BLOB section and are only ever
// referenced by offset), so decoding META touches a few KiB per artifact
// regardless of model size.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/logging.h"

namespace tnp {
namespace artifact {

class MetaWriter {
 public:
  void U8(std::uint8_t v) { Raw(&v, 1); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void I32(std::int32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  void I64s(const std::vector<std::int64_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (const std::int64_t x : v) I64(x);
  }
  void I32s(const std::vector<int>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (const int x : v) I32(x);
  }
  void F64s(const std::vector<double>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (const double x : v) F64(x);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  void Raw(const void* data, std::size_t bytes) {
    buffer_.append(static_cast<const char*>(data), bytes);
  }

  std::string buffer_;
};

class MetaReader {
 public:
  MetaReader(const void* data, std::size_t bytes)
      : data_(static_cast<const unsigned char*>(data)), bytes_(bytes) {}

  std::uint8_t U8() { return Scalar<std::uint8_t>(); }
  std::uint32_t U32() { return Scalar<std::uint32_t>(); }
  std::int32_t I32() { return Scalar<std::int32_t>(); }
  std::uint64_t U64() { return Scalar<std::uint64_t>(); }
  std::int64_t I64() { return Scalar<std::int64_t>(); }
  float F32() { return Scalar<float>(); }
  double F64() { return Scalar<double>(); }
  bool Bool() { return U8() != 0; }

  std::string Str() {
    const std::uint32_t size = Length();
    Need(size, "string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
    return s;
  }

  std::vector<std::int64_t> I64s() {
    const std::uint32_t count = Length();
    Need(static_cast<std::size_t>(count) * sizeof(std::int64_t), "i64 vector");
    std::vector<std::int64_t> v(count);
    for (auto& x : v) x = I64();
    return v;
  }
  std::vector<int> I32s() {
    const std::uint32_t count = Length();
    Need(static_cast<std::size_t>(count) * sizeof(std::int32_t), "i32 vector");
    std::vector<int> v(count);
    for (auto& x : v) x = I32();
    return v;
  }
  std::vector<double> F64s() {
    const std::uint32_t count = Length();
    Need(static_cast<std::size_t>(count) * sizeof(double), "f64 vector");
    std::vector<double> v(count);
    for (auto& x : v) x = F64();
    return v;
  }

  /// A count prefix for a sequence of records of unknown encoded size; the
  /// plausibility bound stops a corrupt count from driving a giant resize.
  std::uint32_t Count() { return Length(); }

  bool AtEnd() const { return pos_ == bytes_; }
  std::size_t remaining() const { return bytes_ - pos_; }

 private:
  template <typename T>
  T Scalar() {
    Need(sizeof(T), "scalar");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::uint32_t Length() {
    const std::uint32_t size = Scalar<std::uint32_t>();
    if (size > (1u << 28)) {
      TNP_THROW(kParseError) << "artifact META: implausible length " << size;
    }
    return size;
  }

  void Need(std::size_t bytes, const char* what) {
    if (bytes_ - pos_ < bytes) {
      TNP_THROW(kParseError) << "artifact META truncated reading " << what << " ("
                             << bytes << " bytes needed, " << (bytes_ - pos_)
                             << " remain)";
    }
  }

  const unsigned char* data_;
  std::size_t bytes_;
  std::size_t pos_ = 0;
};

}  // namespace artifact
}  // namespace tnp
