#include "artifact/file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "support/logging.h"
#include "support/metrics.h"

namespace tnp {
namespace artifact {

namespace {

std::atomic<std::int64_t> g_mapped_bytes{0};

support::metrics::Gauge& MappedGauge() {
  static support::metrics::Gauge& gauge =
      support::metrics::Registry::Global().GetGauge("artifact/mmap_bytes");
  return gauge;
}

support::metrics::Gauge& ResidentGauge() {
  static support::metrics::Gauge& gauge =
      support::metrics::Registry::Global().GetGauge("artifact/mmap_resident_bytes");
  return gauge;
}

}  // namespace

std::string HashHex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

// ------------------------------------------------------------- MappedFile

MappedFile::MappedFile(std::string path, unsigned char* data, std::uint64_t bytes)
    : path_(std::move(path)), data_(data), bytes_(bytes) {
  MappedGauge().Set(static_cast<double>(
      g_mapped_bytes.fetch_add(static_cast<std::int64_t>(bytes_)) +
      static_cast<std::int64_t>(bytes_)));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<std::size_t>(bytes_));
    MappedGauge().Set(static_cast<double>(
        g_mapped_bytes.fetch_sub(static_cast<std::int64_t>(bytes_)) -
        static_cast<std::int64_t>(bytes_)));
  }
}

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    TNP_THROW(kRuntimeError) << "cannot open artifact " << path << ": "
                             << std::strerror(errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    TNP_THROW(kRuntimeError) << "cannot stat artifact " << path << ": "
                             << std::strerror(err);
  }
  const auto bytes = static_cast<std::uint64_t>(st.st_size);
  if (bytes < sizeof(FileHeader)) {
    ::close(fd);
    TNP_THROW(kParseError) << "artifact " << path << " truncated: " << bytes
                           << " bytes is smaller than the header";
  }
  void* mapping = ::mmap(nullptr, static_cast<std::size_t>(bytes), PROT_READ,
                         MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping == MAP_FAILED) {
    TNP_THROW(kRuntimeError) << "cannot mmap artifact " << path << ": "
                             << std::strerror(errno);
  }
  auto file = std::shared_ptr<const MappedFile>(
      new MappedFile(path, static_cast<unsigned char*>(mapping), bytes));
  ResidentGauge().Set(static_cast<double>(file->ResidentBytes()));
  return file;
}

std::uint64_t MappedFile::ResidentBytes() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0 || bytes_ == 0) return 0;
  const std::uint64_t pages = (bytes_ + static_cast<std::uint64_t>(page) - 1) /
                              static_cast<std::uint64_t>(page);
  std::vector<unsigned char> vec(static_cast<std::size_t>(pages));
  if (::mincore(data_, static_cast<std::size_t>(bytes_), vec.data()) != 0) return 0;
  std::uint64_t resident = 0;
  for (const unsigned char entry : vec) {
    if (entry & 1u) resident += static_cast<std::uint64_t>(page);
  }
  return std::min(resident, bytes_);
}

std::int64_t MappedFile::TotalMappedBytes() { return g_mapped_bytes.load(); }

// ----------------------------------------------------------- ArtifactFile

ArtifactFile ArtifactFile::Open(const std::string& path, ArtifactKind expected_kind) {
  ArtifactFile file;
  file.mapping_ = MappedFile::Open(path);
  const unsigned char* base = file.mapping_->data();
  const std::uint64_t total = file.mapping_->bytes();

  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kMagic) {
    TNP_THROW(kParseError) << "artifact " << path << ": bad magic 0x" << std::hex
                           << header.magic << " (not a .tnpa file)";
  }
  if (header.endian != kEndianStamp) {
    TNP_THROW(kParseError) << "artifact " << path
                           << ": endianness stamp mismatch (file written on a "
                              "different byte order)";
  }
  if (header.version != kFormatVersion) {
    TNP_THROW(kParseError) << "artifact " << path << ": format version "
                           << header.version << ", this build reads only "
                           << kFormatVersion << " (no cross-version migration; "
                              "rebuild into a fresh store)";
  }
  if (header.kind != static_cast<std::uint32_t>(expected_kind)) {
    TNP_THROW(kParseError) << "artifact " << path << ": kind " << header.kind
                           << " does not match the requested artifact kind "
                           << static_cast<std::uint32_t>(expected_kind);
  }
  if (header.file_bytes != total) {
    TNP_THROW(kParseError) << "artifact " << path << " truncated: header records "
                           << header.file_bytes << " bytes, file has " << total;
  }
  const std::uint64_t table_end =
      sizeof(FileHeader) +
      static_cast<std::uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.section_count != 2 || table_end > total) {
    TNP_THROW(kParseError) << "artifact " << path << ": malformed section table ("
                           << header.section_count << " sections)";
  }

  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, base + sizeof(FileHeader) + i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.offset % kPayloadAlign != 0 || entry.offset > total ||
        entry.bytes > total - entry.offset) {
      TNP_THROW(kParseError) << "artifact " << path << ": section " << entry.id
                             << " range [" << entry.offset << ", +" << entry.bytes
                             << ") escapes the file (" << total << " bytes)";
    }
    const std::uint64_t checksum = Fnv1a(base + entry.offset, entry.bytes);
    if (checksum != entry.checksum) {
      TNP_THROW(kParseError) << "artifact " << path << ": section " << entry.id
                             << " checksum mismatch (stored "
                             << HashHex(entry.checksum) << ", computed "
                             << HashHex(checksum) << ") — payload corrupt";
    }
    SectionView view{base + entry.offset, entry.bytes};
    if (entry.id == static_cast<std::uint32_t>(SectionId::kMeta)) {
      file.meta_ = view;
    } else if (entry.id == static_cast<std::uint32_t>(SectionId::kBlob)) {
      file.blob_ = view;
    } else {
      TNP_THROW(kParseError) << "artifact " << path << ": unknown section id "
                             << entry.id;
    }
  }
  if (file.meta_.data == nullptr) {
    TNP_THROW(kParseError) << "artifact " << path << ": missing META section";
  }
  if (file.blob_.data == nullptr) {
    TNP_THROW(kParseError) << "artifact " << path << ": missing BLOB section";
  }
  return file;
}

// ---------------------------------------------------------- ArtifactWriter

std::uint64_t ArtifactWriter::AddPayload(const void* identity, const void* data,
                                         std::uint64_t bytes) {
  if (identity != nullptr) {
    for (const auto& entry : dedup_) {
      if (entry.identity == identity && entry.bytes == bytes) return entry.offset;
    }
  }
  const std::uint64_t offset = AlignUp(blob_.size(), kPayloadAlign);
  blob_.resize(static_cast<std::size_t>(offset), '\0');
  blob_.append(static_cast<const char*>(data), static_cast<std::size_t>(bytes));
  if (identity != nullptr) dedup_.push_back({identity, offset, bytes});
  return offset;
}

std::uint64_t ArtifactWriter::Commit(const std::string& meta, const std::string& path) {
  const std::uint64_t table_end = sizeof(FileHeader) + 2 * sizeof(SectionEntry);
  const std::uint64_t meta_offset = AlignUp(table_end, kPayloadAlign);
  const std::uint64_t blob_offset = AlignUp(meta_offset + meta.size(), kPayloadAlign);
  const std::uint64_t file_bytes = blob_offset + blob_.size();

  FileHeader header;
  header.kind = static_cast<std::uint32_t>(kind_);
  header.section_count = 2;
  header.file_bytes = file_bytes;

  SectionEntry sections[2];
  sections[0].id = static_cast<std::uint32_t>(SectionId::kMeta);
  sections[0].offset = meta_offset;
  sections[0].bytes = meta.size();
  sections[0].checksum = Fnv1a(meta.data(), meta.size());
  sections[1].id = static_cast<std::uint32_t>(SectionId::kBlob);
  sections[1].offset = blob_offset;
  sections[1].bytes = blob_.size();
  sections[1].checksum = Fnv1a(blob_.data(), blob_.size());

  // Unique temp name in the same directory (same filesystem → rename(2) is
  // atomic). PID + address + a process-local counter keeps concurrent
  // writers — including racing load-or-build losers — from colliding.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    TNP_THROW(kRuntimeError) << "cannot create artifact temp file " << tmp << ": "
                             << std::strerror(errno);
  }
  bool ok = std::fwrite(&header, sizeof(header), 1, out) == 1 &&
            std::fwrite(sections, sizeof(SectionEntry), 2, out) == 2;
  const auto pad_to = [&](std::uint64_t target) {
    static const char zeros[kPayloadAlign] = {};
    const auto pos = static_cast<std::uint64_t>(std::ftell(out));
    if (pos > target) return false;
    return std::fwrite(zeros, 1, static_cast<std::size_t>(target - pos), out) ==
           static_cast<std::size_t>(target - pos);
  };
  ok = ok && pad_to(meta_offset) &&
       (meta.empty() || std::fwrite(meta.data(), meta.size(), 1, out) == 1);
  ok = ok && pad_to(blob_offset) &&
       (blob_.empty() || std::fwrite(blob_.data(), blob_.size(), 1, out) == 1);
  ok = std::fflush(out) == 0 && ok;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    TNP_THROW(kRuntimeError) << "failed writing artifact temp file " << tmp;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    TNP_THROW(kRuntimeError) << "cannot publish artifact " << path << ": "
                             << std::strerror(err);
  }
  support::metrics::Registry::Global()
      .GetCounter("artifact/save_bytes")
      .Increment(static_cast<std::int64_t>(file_bytes));
  return file_bytes;
}

}  // namespace artifact
}  // namespace tnp
