// On-disk layout of a compiled-artifact file (".tnpa").
//
// The file serializes a *compiled* module — not IR. Loading is a page-in,
// not a rebuild: structural metadata (instruction stream, memory plans,
// packed-panel descriptors) lives in one compact META section that is
// decoded eagerly, while every tensor payload (constants, pre-packed weight
// panels, zero-point sum vectors) lives in a BLOB section whose bytes are
// *never parsed, never copied and never repacked* — the loader hands out
// read-only NDArray views straight into the mapping.
//
//   ┌────────────────────────────┐ offset 0
//   │ FileHeader (64 bytes)      │ magic, endianness stamp, format version,
//   │                            │ artifact kind, section count, file size
//   ├────────────────────────────┤ offset 64
//   │ SectionEntry[section_count]│ 32 bytes each: id, offset, bytes, FNV-1a
//   ├────────────────────────────┤ 64-byte aligned
//   │ META section               │ bounds-checked binary metadata
//   ├────────────────────────────┤ 64-byte aligned
//   │ BLOB section               │ tensor payloads, each 64-byte aligned
//   └────────────────────────────┘
//
// Versioning/compat policy: `kFormatVersion` is bumped on ANY change to the
// META encoding or section layout. There is no cross-version migration —
// readers reject other versions with a typed error (kParseError) and the
// content-addressed store keys include the version, so a new binary simply
// misses the old cache entries and rebuilds into fresh files. Endianness is
// stamped explicitly; artifacts do not travel between byte orders.
//
// Every read failure is a typed tnp::Error (fail closed): truncation, bad
// magic, version or endianness mismatch, out-of-range sections, checksum
// mismatch, and any META overrun. A reader never crashes on hostile bytes
// and never silently falls back to stale payloads.
#pragma once

#include <cstdint>
#include <string>

namespace tnp {
namespace artifact {

/// File magic: the bytes 'T','N','P','A' at offset 0.
inline constexpr std::uint32_t kMagic = 0x41504E54u;  // "TNPA" little-endian

/// Byte-order stamp. A reader on the opposite endianness sees 0x04030201.
inline constexpr std::uint32_t kEndianStamp = 0x01020304u;

/// Bumped on every breaking change to the META encoding or section layout.
/// v2: packed-matrix descriptors carry their GEMM config (mr/nr/kc/nc/unroll)
/// and module/package metadata records the build-time tuning fingerprint.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Payload sections start on this alignment, as does every tensor payload
/// inside the BLOB section — mmap bases are page-aligned, so file-offset
/// alignment carries over to memory alignment (NDArray's contract).
inline constexpr std::uint64_t kPayloadAlign = 64;

/// What the artifact contains (header field; also part of the store key).
enum class ArtifactKind : std::uint32_t {
  kCompiledModule = 1,  ///< relay::CompiledModule (+ its external NeuronPackages)
  kNeuronPackage = 2,   ///< standalone neuron::NeuronPackage (NP-only flows)
};

enum class SectionId : std::uint32_t {
  kMeta = 1,  ///< structural metadata (decoded eagerly, bounds-checked)
  kBlob = 2,  ///< tensor payloads (mapped, never parsed or copied)
};

#pragma pack(push, 1)
struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t endian = kEndianStamp;
  std::uint32_t version = kFormatVersion;
  std::uint32_t kind = 0;
  std::uint32_t section_count = 0;
  std::uint32_t reserved0 = 0;
  std::uint64_t file_bytes = 0;
  std::uint8_t pad[32] = {};
};
static_assert(sizeof(FileHeader) == 64, "header is one cache line");

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;    ///< absolute file offset (kPayloadAlign-ed)
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 over the section bytes
};
static_assert(sizeof(SectionEntry) == 32, "section table entries are fixed-size");
#pragma pack(pop)

/// FNV-1a 64-bit — the same content hash used for store keys and section
/// checksums (fast, dependency-free, stable across platforms).
inline std::uint64_t Fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

inline std::uint64_t Fnv1a(const std::string& text, std::uint64_t seed = 0xcbf29ce484222325ull) {
  return Fnv1a(text.data(), text.size(), seed);
}

/// Lower-case 16-hex-digit rendering (store file names).
std::string HashHex(std::uint64_t hash);

inline std::uint64_t AlignUp(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace artifact
}  // namespace tnp
