// Versioned serialization + mmap'd zero-copy loading of compiled modules.
//
// This is the layer between the compiler and the runtime that the paper's
// deployment story (§4.5) stops short of: relay/serializer.cc round-trips
// *source-level* Relay (load → re-infer types → re-run codegen → re-pack
// weights), so every process restart pays the full rebuild. The functions
// here serialize the *compiled* artifact — the linearized instruction
// stream with snapshotted op attrs, the static MemoryPlan, the Execution
// Planner's placement, and the pre-packed GEMM weight panels — so loading
// is a page-in:
//
//   * zero parsing of tensor payloads — constants and packed panels are
//     located by (offset, bytes) in the BLOB section, never decoded;
//   * zero weight repacking — panels were packed at compile time and are
//     mapped back in panel form (TotalWeightPacks() does not move);
//   * zero payload copies — every constant/panel NDArray is a read-only
//     view into the mapping (NDArray::ViewOver pinning the MappedFile).
//
// MapCompiledModule / MapNeuronPackage are the "MapArtifact" loaders: the
// returned module is immediately executable (GraphExecutor /
// NeuronExecutionSession) and produces byte-identical outputs to a fresh
// compile — enforced by tests/test_artifact.cc, which extends the
// planned-vs-legacy differential machinery over loaded modules.
//
// All load failures are typed tnp::Error (kParseError for malformed bytes,
// kRuntimeError for I/O): fail closed, never crash, never silently fall
// back to stale bytes.
#pragma once

#include <string>

#include "neuron/compiler.h"
#include "relay/build.h"

namespace tnp {
namespace artifact {

/// Serialize a compiled NeuronPackage (NP-only flows) and atomically
/// publish it to `path`. Returns the file size in bytes.
std::uint64_t SaveNeuronPackage(const neuron::NeuronPackage& package,
                                const std::string& path);

/// Serialize a CompiledModule — including every external NeuronPackage (the
/// BYOC subgraphs must be NirExternalModules; anything else is a typed
/// kInvalidArgument). Returns the file size in bytes.
std::uint64_t SaveCompiledModule(const relay::CompiledModule& compiled,
                                 const std::string& path);

/// mmap-backed loaders ("MapArtifact"): validate the file (header, version,
/// endianness, section checksums), decode META, and reconstruct an
/// executable module whose tensor payloads are read-only views into the
/// mapping. Records the "artifact/load_us" histogram.
relay::CompiledModulePtr MapCompiledModule(const std::string& path);
neuron::NeuronPackagePtr MapNeuronPackage(const std::string& path);

}  // namespace artifact
}  // namespace tnp
