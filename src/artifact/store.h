// Content-addressed on-disk store of compiled artifacts.
//
// A store is a flat directory of ".tnpa" files named by the 64-bit FNV-1a
// hash of (on-disk format version | artifact kind | caller key). CompileFlow
// passes the serialized module bytes + flow + settings as the key, so:
//
//   * any change to model weights/structure, flow, or compile options lands
//     in a different file — entries are immutable once published;
//   * a binary with a newer format version simply misses every old entry
//     and rebuilds into fresh files (no migration, no false hits);
//   * concurrent load-or-build racers converge: both compile, both publish
//     via atomic temp-file + rename, and either file is valid and
//     byte-equivalent for readers.
//
// TryLoad* returns nullptr only when the file does not exist (a clean miss,
// counted as "artifact/cache_misses"); a present-but-damaged entry throws a
// typed error instead of silently recompiling over stale bytes. Hits count
// "artifact/cache_hits" and map the artifact zero-copy (see serialize.h).
#pragma once

#include <string>

#include "artifact/format.h"
#include "core/flows.h"

namespace tnp {
namespace artifact {

class ArtifactStore final : public core::CompiledArtifactCache {
 public:
  /// Creates `directory` (and parents) when absent; throws kRuntimeError
  /// when it cannot be created.
  explicit ArtifactStore(std::string directory);

  const std::string& directory() const { return directory_; }

  /// <directory>/<16-hex FNV-1a of version|kind|key>.tnpa
  std::string PathFor(const std::string& key, ArtifactKind kind) const;

  relay::CompiledModulePtr TryLoadModule(const std::string& key) override;
  void SaveModule(const std::string& key, const relay::CompiledModule& compiled) override;
  neuron::NeuronPackagePtr TryLoadPackage(const std::string& key) override;
  void SavePackage(const std::string& key, const neuron::NeuronPackage& package) override;

 private:
  std::string directory_;
};

}  // namespace artifact
}  // namespace tnp
