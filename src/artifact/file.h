// Artifact file I/O: atomic publish on write, validated mmap on read.
//
// Writing goes through a temp file in the same directory followed by an
// atomic rename(2), so a reader (or a concurrent writer racing on the same
// content-addressed name) only ever observes complete, checksummed files —
// never a torn write. Reading maps the whole file PROT_READ and validates
// header, section table and per-section FNV-1a checksums before any byte is
// interpreted; tensor views handed out over the mapping are physically
// read-only (a stray write faults instead of corrupting the cache).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "artifact/format.h"

namespace tnp {
namespace artifact {

/// Read-only mapping of one artifact file. Shared-ptr held by every NDArray
/// view handed out over it, so the mapping outlives the loaded module for
/// exactly as long as any constant is reachable. Publishes the process-wide
/// "artifact/mmap_bytes" and "artifact/mmap_resident_bytes" gauges.
class MappedFile {
 public:
  /// Maps `path`; throws kRuntimeError when the file cannot be opened and
  /// kParseError when it is too small to even hold a header.
  static std::shared_ptr<const MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

  /// Bytes of this mapping currently resident in physical memory (mincore
  /// page walk). Refreshed into the resident gauge by ResidentBytes().
  std::uint64_t ResidentBytes() const;

  /// Sum of all live artifact mappings in the process.
  static std::int64_t TotalMappedBytes();

 private:
  MappedFile(std::string path, unsigned char* data, std::uint64_t bytes);

  std::string path_;
  unsigned char* data_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// One section located inside a validated mapping.
struct SectionView {
  const unsigned char* data = nullptr;
  std::uint64_t bytes = 0;
};

/// Open + validate an artifact file: magic, endianness stamp, format
/// version, artifact kind, section table bounds and every section checksum.
/// All failures are typed (kParseError); nothing is interpreted before its
/// checksum passes.
class ArtifactFile {
 public:
  static ArtifactFile Open(const std::string& path, ArtifactKind expected_kind);

  const SectionView& meta() const { return meta_; }
  const SectionView& blob() const { return blob_; }
  const std::shared_ptr<const MappedFile>& mapping() const { return mapping_; }

 private:
  std::shared_ptr<const MappedFile> mapping_;
  SectionView meta_;
  SectionView blob_;
};

/// Assembles META + BLOB and publishes the file atomically. The BLOB grows
/// through AddPayload, which 64-byte-aligns and deduplicates payloads by
/// source pointer (constants shared between instructions serialize once).
class ArtifactWriter {
 public:
  explicit ArtifactWriter(ArtifactKind kind) : kind_(kind) {}

  /// Append `bytes` at a 64-byte-aligned BLOB offset (deduplicated on
  /// `identity`, normally the source tensor's storage address). Returns the
  /// offset within the BLOB section.
  std::uint64_t AddPayload(const void* identity, const void* data, std::uint64_t bytes);

  /// Serialize with the given META bytes and atomically publish to `path`
  /// (temp file + rename). Returns the final file size in bytes; throws
  /// kRuntimeError on I/O failure. Counts "artifact/save_bytes".
  std::uint64_t Commit(const std::string& meta, const std::string& path);

 private:
  struct DedupEntry {
    const void* identity;
    std::uint64_t offset;
    std::uint64_t bytes;
  };

  ArtifactKind kind_;
  std::string blob_;
  std::vector<DedupEntry> dedup_;
};

}  // namespace artifact
}  // namespace tnp
