#include "artifact/serialize.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "artifact/bytes.h"
#include "artifact/file.h"
#include "core/nir.h"
#include "support/logging.h"
#include "support/metrics.h"

namespace tnp {
namespace artifact {
namespace {

// --------------------------------------------------------------- primitives

/// Enum tags are serialized as u8 and range-checked on read; a corrupt tag is
/// a parse error, never an out-of-enum value handed to a switch.
std::uint8_t CheckedTag(MetaReader& reader, std::uint8_t max, const char* what) {
  const std::uint8_t value = reader.U8();
  if (value > max) {
    TNP_THROW(kParseError) << "artifact META: invalid " << what << " tag "
                           << static_cast<int>(value);
  }
  return value;
}

DType ReadDType(MetaReader& reader) {
  return static_cast<DType>(
      CheckedTag(reader, static_cast<std::uint8_t>(DType::kBool), "dtype"));
}

/// Validate untrusted shape dims and return the element count without
/// overflow (hostile dims cannot drive a giant or wrapped multiply).
std::int64_t CheckedElements(const std::vector<std::int64_t>& dims) {
  constexpr std::int64_t kMaxElements = std::int64_t{1} << 40;
  std::int64_t elements = 1;
  for (const std::int64_t dim : dims) {
    if (dim < 0 || (dim != 0 && elements > kMaxElements / dim)) {
      TNP_THROW(kParseError) << "artifact META: implausible tensor dimension " << dim;
    }
    elements *= dim;
  }
  return elements;
}

void WriteQuant(MetaWriter& writer, const QuantParams& quant) {
  writer.Bool(quant.valid);
  writer.F32(quant.scale);
  writer.I32(quant.zero_point);
}

QuantParams ReadQuant(MetaReader& reader) {
  const bool valid = reader.Bool();
  const float scale = reader.F32();
  const std::int32_t zero_point = reader.I32();
  return valid ? QuantParams(scale, zero_point) : QuantParams::None();
}

// ----------------------------------------------------------------- tensors

/// Everything the loader needs to materialize views: the validated BLOB
/// section plus the mapping that keeps the bytes alive.
struct LoadContext {
  SectionView blob;
  std::shared_ptr<const MappedFile> mapping;
};

/// A tensor serializes as (blob offset, bytes) + shape/dtype/quant — the
/// payload goes into the BLOB section (deduplicated by storage identity) and
/// is never re-encoded.
void WriteTensor(MetaWriter& writer, ArtifactWriter& blob, const NDArray& tensor) {
  writer.Bool(tensor.defined());
  if (!tensor.defined()) return;
  const std::uint64_t offset =
      blob.AddPayload(tensor.RawData(), tensor.RawData(), tensor.SizeBytes());
  writer.U64(offset);
  writer.U64(tensor.SizeBytes());
  writer.I64s(tensor.shape().dims());
  writer.U8(static_cast<std::uint8_t>(tensor.dtype()));
  WriteQuant(writer, tensor.quant());
}

/// The zero-copy read: validate the (offset, bytes) range against the BLOB
/// section and the recorded shape, then hand out a read-only view into the
/// mapping. No payload byte is parsed or copied; a stray write faults.
NDArray ReadTensor(MetaReader& reader, const LoadContext& ctx) {
  if (!reader.Bool()) return NDArray();
  const std::uint64_t offset = reader.U64();
  const std::uint64_t bytes = reader.U64();
  const std::vector<std::int64_t> dims = reader.I64s();
  const DType dtype = ReadDType(reader);
  const QuantParams quant = ReadQuant(reader);

  if (offset % kPayloadAlign != 0 || offset > ctx.blob.bytes ||
      bytes > ctx.blob.bytes - offset) {
    TNP_THROW(kParseError) << "artifact: tensor payload range [" << offset << ", +"
                           << bytes << ") escapes the BLOB section ("
                           << ctx.blob.bytes << " bytes)";
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(CheckedElements(dims)) * DTypeBytes(dtype);
  if (bytes != expected) {
    TNP_THROW(kParseError) << "artifact: tensor payload holds " << bytes
                           << " bytes but its shape needs " << expected;
  }
  NDArray view = NDArray::ViewOver(
      const_cast<unsigned char*>(ctx.blob.data) + offset,
      static_cast<std::size_t>(bytes), Shape(dims), dtype, ctx.mapping);
  if (quant.valid) view.set_quant(quant);
  return view;
}

// ------------------------------------------------------------ packed panels

void WritePackedMatrix(MetaWriter& writer, ArtifactWriter& blob,
                       const kernels::PackedMatrix& matrix) {
  writer.U8(static_cast<std::uint8_t>(matrix.side));
  writer.U8(static_cast<std::uint8_t>(matrix.dtype));
  writer.I64(matrix.rows);
  writer.I64(matrix.cols);
  writer.I64(matrix.groups);
  writer.I64(matrix.panel);
  writer.I64(matrix.group_stride);
  writer.I64(matrix.config.mr);
  writer.I64(matrix.config.nr);
  writer.I64(matrix.config.kc);
  writer.I64(matrix.config.nc);
  writer.I64(matrix.config.unroll);
  WriteTensor(writer, blob, matrix.data);
  WriteTensor(writer, blob, matrix.sums);
}

kernels::PackedMatrixPtr ReadPackedMatrix(MetaReader& reader, const LoadContext& ctx) {
  auto matrix = std::make_shared<kernels::PackedMatrix>();
  matrix->side = static_cast<kernels::PackedMatrix::Side>(
      CheckedTag(reader, 1, "packed matrix side"));
  matrix->dtype = ReadDType(reader);
  matrix->rows = reader.I64();
  matrix->cols = reader.I64();
  matrix->groups = reader.I64();
  matrix->panel = reader.I64();
  matrix->group_stride = reader.I64();
  matrix->config.mr = static_cast<int>(reader.I64());
  matrix->config.nr = static_cast<int>(reader.I64());
  matrix->config.kc = static_cast<int>(reader.I64());
  matrix->config.nc = static_cast<int>(reader.I64());
  matrix->config.unroll = static_cast<int>(reader.I64());
  matrix->data = ReadTensor(reader, ctx);
  matrix->sums = ReadTensor(reader, ctx);
  // The micro-kernels will walk these panels without repacking — the
  // descriptor must match the packers' layout exactly.
  kernels::ValidatePackedLayout(*matrix);
  return matrix;
}

/// The unique packed panels of a module serialize once into an indexed
/// table; per-instruction / per-op references are table indices (-1 = none).
/// Runtime pack-cache keys embed data pointers and are not serializable, so
/// the loaded cache is re-keyed by table index.
struct PackedTable {
  std::vector<kernels::PackedMatrixPtr> entries;
  std::unordered_map<const kernels::PackedMatrix*, int> index;

  int IndexOf(const kernels::PackedMatrixPtr& matrix) {
    if (matrix == nullptr) return -1;
    const auto it = index.find(matrix.get());
    if (it != index.end()) return it->second;
    const int id = static_cast<int>(entries.size());
    entries.push_back(matrix);
    index.emplace(matrix.get(), id);
    return id;
  }
};

void WritePackedTable(MetaWriter& writer, ArtifactWriter& blob, const PackedTable& table) {
  writer.U32(static_cast<std::uint32_t>(table.entries.size()));
  for (const auto& entry : table.entries) WritePackedMatrix(writer, blob, *entry);
}

std::vector<kernels::PackedMatrixPtr> ReadPackedTable(MetaReader& reader,
                                                      const LoadContext& ctx,
                                                      kernels::PackedWeightsCache& cache) {
  const std::uint32_t count = reader.Count();
  std::vector<kernels::PackedMatrixPtr> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    kernels::PackedMatrixPtr matrix = ReadPackedMatrix(reader, ctx);
    table.push_back(
        cache.GetOrPack("artifact/" + std::to_string(i), [&] { return matrix; }));
  }
  return table;
}

int ReadPackedIndex(MetaReader& reader, const std::vector<kernels::PackedMatrixPtr>& table,
                    const char* what) {
  const std::int32_t index = reader.I32();
  if (index < -1 || index >= static_cast<std::int32_t>(table.size())) {
    TNP_THROW(kParseError) << "artifact: " << what << " packed-weights index " << index
                           << " escapes the panel table (" << table.size()
                           << " entries)";
  }
  return index;
}

// ----------------------------------------------------------------- testbed

/// Testbeds are referenced by name, not serialized: the artifact must bind
/// to this binary's calibrated cost tables, not a snapshot of them.
std::string TestbedName(const sim::Testbed* testbed) {
  if (testbed == &sim::Testbed::Dimensity800()) return "dimensity800";
  TNP_THROW(kInvalidArgument)
      << "artifact: only the built-in Dimensity 800 testbed is serializable "
         "(custom testbeds cannot be rebound by name on load)";
}

const sim::Testbed* TestbedByName(const std::string& name) {
  if (name == "dimensity800") return &sim::Testbed::Dimensity800();
  TNP_THROW(kParseError) << "artifact: unknown testbed '" << name << "'";
}

// ----------------------------------------------------------- neuron package

void WriteNeuronOpAttrs(MetaWriter& writer, const neuron::NeuronOpAttrs& attrs) {
  writer.I64s(attrs.strides);
  writer.I64s(attrs.padding);
  writer.I64s(attrs.dilation);
  writer.I64(attrs.groups);
  writer.I64s(attrs.pool_size);
  writer.Bool(attrs.count_include_pad);
  writer.I32(attrs.axis);
  writer.F32(attrs.alpha);
  writer.F32(attrs.clip_min);
  writer.F32(attrs.clip_max);
  writer.F32(attrs.epsilon);
  writer.I64s(attrs.newshape);
  writer.I64s(attrs.pad_before);
  writer.I64s(attrs.pad_after);
  writer.F64(attrs.pad_value);
}

neuron::NeuronOpAttrs ReadNeuronOpAttrs(MetaReader& reader) {
  neuron::NeuronOpAttrs attrs;
  attrs.strides = reader.I64s();
  attrs.padding = reader.I64s();
  attrs.dilation = reader.I64s();
  attrs.groups = reader.I64();
  attrs.pool_size = reader.I64s();
  attrs.count_include_pad = reader.Bool();
  attrs.axis = reader.I32();
  attrs.alpha = reader.F32();
  attrs.clip_min = reader.F32();
  attrs.clip_max = reader.F32();
  attrs.epsilon = reader.F32();
  attrs.newshape = reader.I64s();
  attrs.pad_before = reader.I64s();
  attrs.pad_after = reader.I64s();
  attrs.pad_value = reader.F64();
  return attrs;
}

void WritePackageMeta(MetaWriter& writer, ArtifactWriter& blob,
                      const neuron::NeuronPackage& package) {
  writer.Str(package.name);

  // CompilerOptions.
  writer.Bool(package.options.target.use_cpu);
  writer.Bool(package.options.target.use_apu);
  writer.Str(TestbedName(package.options.testbed));
  writer.U8(static_cast<std::uint8_t>(package.options.policy));
  writer.Bool(package.options.prepack_weights);
  writer.Str(package.tuning_fingerprint);

  // NeuronModel: flat operand table + operation list (NNAPI style).
  const auto& model = package.model;
  writer.U32(static_cast<std::uint32_t>(model.operands().size()));
  for (const auto& operand : model.operands()) {
    writer.Str(operand.name);
    writer.I64s(operand.shape.dims());
    writer.U8(static_cast<std::uint8_t>(operand.dtype));
    WriteQuant(writer, operand.quant);
    writer.U8(static_cast<std::uint8_t>(operand.kind));
    WriteTensor(writer, blob, operand.data);
  }
  writer.U32(static_cast<std::uint32_t>(model.operations().size()));
  for (const auto& operation : model.operations()) {
    writer.U8(static_cast<std::uint8_t>(operation.type));
    WriteNeuronOpAttrs(writer, operation.attrs);
    writer.I32s(operation.inputs);
    writer.I32s(operation.outputs);
  }
  writer.I32s(model.model_inputs());
  writer.I32s(model.model_outputs());

  // ExecutionPlan (device placement is part of the compiled artifact — the
  // planner does not rerun on load).
  writer.U32(static_cast<std::uint32_t>(package.plan.placement.size()));
  for (const sim::DeviceKind device : package.plan.placement) {
    writer.U8(static_cast<std::uint8_t>(device));
  }
  writer.F64(package.plan.estimated_us);

  // NeuronMemoryPlan.
  writer.U32(static_cast<std::uint32_t>(package.memory.operands.size()));
  for (const auto& storage : package.memory.operands) {
    writer.U8(static_cast<std::uint8_t>(storage.kind));
    writer.I64(storage.offset);
    writer.I64(storage.bytes);
  }
  writer.I64(package.memory.arena_bytes);
  writer.I64(package.memory.planned_bytes);

  // Pre-packed weight panels + the per-operation references into them.
  PackedTable table;
  std::vector<int> op_packed;
  op_packed.reserve(package.op_packed_weights.size());
  for (const auto& matrix : package.op_packed_weights) {
    op_packed.push_back(table.IndexOf(matrix));
  }
  WritePackedTable(writer, blob, table);
  writer.I32s(op_packed);
}

std::shared_ptr<neuron::NeuronPackage> ReadPackageMeta(MetaReader& reader,
                                                       const LoadContext& ctx) {
  auto package = std::make_shared<neuron::NeuronPackage>();
  package->name = reader.Str();

  package->options.target.use_cpu = reader.Bool();
  package->options.target.use_apu = reader.Bool();
  package->options.testbed = TestbedByName(reader.Str());
  package->options.policy = static_cast<neuron::PlannerPolicy>(
      CheckedTag(reader, static_cast<std::uint8_t>(neuron::PlannerPolicy::kDynamic),
                 "planner policy"));
  package->options.prepack_weights = reader.Bool();
  package->tuning_fingerprint = reader.Str();

  const std::uint32_t operand_count = reader.Count();
  for (std::uint32_t i = 0; i < operand_count; ++i) {
    neuron::Operand operand;
    operand.name = reader.Str();
    operand.shape = Shape(reader.I64s());
    operand.dtype = ReadDType(reader);
    operand.quant = ReadQuant(reader);
    operand.kind = static_cast<neuron::OperandKind>(
        CheckedTag(reader, static_cast<std::uint8_t>(neuron::OperandKind::kTemporary),
                   "operand kind"));
    operand.data = ReadTensor(reader, ctx);
    if (operand.kind == neuron::OperandKind::kConstant && !operand.data.defined()) {
      TNP_THROW(kParseError) << "artifact: constant operand '" << operand.name
                             << "' has no payload";
    }
    package->model.AddOperand(std::move(operand));
  }
  const auto check_ids = [&](const std::vector<int>& ids, const char* what) {
    for (const int id : ids) {
      if (id < 0 || id >= static_cast<int>(operand_count)) {
        TNP_THROW(kParseError) << "artifact: " << what << " operand id " << id
                               << " escapes the operand table (" << operand_count
                               << ")";
      }
    }
  };
  const std::uint32_t op_count = reader.Count();
  for (std::uint32_t i = 0; i < op_count; ++i) {
    neuron::Operation operation;
    operation.type = static_cast<neuron::NeuronOpType>(CheckedTag(
        reader, static_cast<std::uint8_t>(neuron::NeuronOpType::kRequantize),
        "neuron op type"));
    operation.attrs = ReadNeuronOpAttrs(reader);
    operation.inputs = reader.I32s();
    operation.outputs = reader.I32s();
    check_ids(operation.inputs, "operation input");
    check_ids(operation.outputs, "operation output");
    package->model.AddOperation(std::move(operation));
  }
  std::vector<int> model_inputs = reader.I32s();
  std::vector<int> model_outputs = reader.I32s();
  check_ids(model_inputs, "model input");
  check_ids(model_outputs, "model output");
  package->model.SetModelInputs(std::move(model_inputs));
  package->model.SetModelOutputs(std::move(model_outputs));
  // Structural validation (topological order, single producers) on top of
  // the range checks above — a corrupt graph fails here, not at execution.
  package->model.Validate();

  const std::uint32_t placement_count = reader.Count();
  if (placement_count != op_count) {
    TNP_THROW(kParseError) << "artifact: placement covers " << placement_count
                           << " operations, model has " << op_count;
  }
  package->plan.placement.reserve(placement_count);
  for (std::uint32_t i = 0; i < placement_count; ++i) {
    package->plan.placement.push_back(static_cast<sim::DeviceKind>(CheckedTag(
        reader, static_cast<std::uint8_t>(sim::DeviceKind::kNeuronApu), "device")));
  }
  package->plan.estimated_us = reader.F64();

  const std::uint32_t storage_count = reader.Count();
  if (storage_count != operand_count) {
    TNP_THROW(kParseError) << "artifact: memory plan covers " << storage_count
                           << " operands, model has " << operand_count;
  }
  package->memory.operands.reserve(storage_count);
  for (std::uint32_t i = 0; i < storage_count; ++i) {
    neuron::OperandStorage storage;
    storage.kind = static_cast<neuron::OperandStorage::Kind>(CheckedTag(
        reader, static_cast<std::uint8_t>(neuron::OperandStorage::Kind::kArena),
        "operand storage kind"));
    storage.offset = reader.I64();
    storage.bytes = reader.I64();
    package->memory.operands.push_back(storage);
  }
  package->memory.arena_bytes = reader.I64();
  package->memory.planned_bytes = reader.I64();
  for (const auto& storage : package->memory.operands) {
    if (storage.kind == neuron::OperandStorage::Kind::kArena &&
        (storage.offset < 0 || storage.bytes < 0 ||
         storage.offset > package->memory.arena_bytes - storage.bytes)) {
      TNP_THROW(kParseError) << "artifact: operand arena range [" << storage.offset
                             << ", +" << storage.bytes << ") escapes the arena ("
                             << package->memory.arena_bytes << " bytes)";
    }
  }

  const std::vector<kernels::PackedMatrixPtr> table =
      ReadPackedTable(reader, ctx, package->packed_weights);
  const std::vector<int> op_packed = reader.I32s();
  if (op_packed.size() != op_count) {
    TNP_THROW(kParseError) << "artifact: packed-weights list covers " << op_packed.size()
                           << " operations, model has " << op_count;
  }
  package->op_packed_weights.reserve(op_packed.size());
  for (std::size_t i = 0; i < op_packed.size(); ++i) {
    const int index = op_packed[i];
    if (index < -1 || index >= static_cast<int>(table.size())) {
      TNP_THROW(kParseError) << "artifact: operation " << i << " packed-weights index "
                             << index << " escapes the panel table (" << table.size()
                             << " entries)";
    }
    package->op_packed_weights.push_back(index < 0 ? nullptr : table[index]);
  }
  return package;
}

// ---------------------------------------------------------- relay metadata

void WriteType(MetaWriter& writer, const relay::Type& type) {
  writer.U8(static_cast<std::uint8_t>(type.kind()));
  switch (type.kind()) {
    case relay::Type::Kind::kUnknown:
      break;
    case relay::Type::Kind::kTensor:
      writer.I64s(type.AsTensor().shape.dims());
      writer.U8(static_cast<std::uint8_t>(type.AsTensor().dtype));
      break;
    case relay::Type::Kind::kTuple: {
      writer.U32(static_cast<std::uint32_t>(type.AsTuple().size()));
      for (const auto& field : type.AsTuple()) WriteType(writer, field);
      break;
    }
  }
}

relay::Type ReadType(MetaReader& reader, int depth = 0) {
  if (depth > 32) {
    TNP_THROW(kParseError) << "artifact: type nesting deeper than 32";
  }
  const auto kind = static_cast<relay::Type::Kind>(
      CheckedTag(reader, static_cast<std::uint8_t>(relay::Type::Kind::kTuple), "type kind"));
  switch (kind) {
    case relay::Type::Kind::kUnknown:
      return relay::Type();
    case relay::Type::Kind::kTensor: {
      const std::vector<std::int64_t> dims = reader.I64s();
      CheckedElements(dims);
      const DType dtype = ReadDType(reader);
      return relay::Type::Tensor(Shape(dims), dtype);
    }
    case relay::Type::Kind::kTuple: {
      const std::uint32_t count = reader.Count();
      std::vector<relay::Type> fields;
      fields.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        fields.push_back(ReadType(reader, depth + 1));
      }
      return relay::Type::Tuple(std::move(fields));
    }
  }
  TNP_THROW(kParseError) << "artifact: unreachable type kind";
}

void WriteAttrs(MetaWriter& writer, const relay::Attrs& attrs) {
  writer.U32(static_cast<std::uint32_t>(attrs.values().size()));
  for (const auto& [key, value] : attrs.values()) {  // std::map: deterministic
    writer.Str(key);
    writer.U8(static_cast<std::uint8_t>(value.index()));
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      writer.I64(*i);
    } else if (const auto* d = std::get_if<double>(&value)) {
      writer.F64(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      writer.Str(*s);
    } else if (const auto* is = std::get_if<std::vector<std::int64_t>>(&value)) {
      writer.I64s(*is);
    } else {
      writer.F64s(std::get<std::vector<double>>(value));
    }
  }
}

relay::Attrs ReadAttrs(MetaReader& reader) {
  relay::Attrs attrs;
  const std::uint32_t count = reader.Count();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key = reader.Str();
    switch (CheckedTag(reader, 4, "attribute kind")) {
      case 0: attrs.SetInt(key, reader.I64()); break;
      case 1: attrs.SetDouble(key, reader.F64()); break;
      case 2: attrs.SetString(key, reader.Str()); break;
      case 3: attrs.SetInts(key, reader.I64s()); break;
      case 4: attrs.SetDoubles(key, reader.F64s()); break;
    }
  }
  return attrs;
}

void WriteOpDesc(MetaWriter& writer, const sim::OpDesc& desc) {
  writer.U8(static_cast<std::uint8_t>(desc.category));
  writer.Str(desc.name);
  writer.I64(desc.macs);
  writer.I64(desc.input_bytes);
  writer.I64(desc.output_bytes);
  writer.I64(desc.weight_bytes);
  writer.Bool(desc.int8);
  writer.I32(desc.fused_ops);
}

sim::OpDesc ReadOpDesc(MetaReader& reader) {
  sim::OpDesc desc;
  desc.category = static_cast<sim::OpCategory>(CheckedTag(
      reader, static_cast<std::uint8_t>(sim::OpCategory::kQuantize), "op category"));
  desc.name = reader.Str();
  desc.macs = reader.I64();
  desc.input_bytes = reader.I64();
  desc.output_bytes = reader.I64();
  desc.weight_bytes = reader.I64();
  desc.int8 = reader.Bool();
  desc.fused_ops = reader.I32();
  return desc;
}

void RecordLoad(std::chrono::steady_clock::time_point start) {
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  support::metrics::Registry::Global().GetHistogram("artifact/load_us").Record(us);
}

}  // namespace

// ------------------------------------------------------------ entry points

std::uint64_t SaveNeuronPackage(const neuron::NeuronPackage& package,
                                const std::string& path) {
  ArtifactWriter blob(ArtifactKind::kNeuronPackage);
  MetaWriter writer;
  WritePackageMeta(writer, blob, package);
  return blob.Commit(writer.buffer(), path);
}

neuron::NeuronPackagePtr MapNeuronPackage(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const ArtifactFile file = ArtifactFile::Open(path, ArtifactKind::kNeuronPackage);
  const LoadContext ctx{file.blob(), file.mapping()};
  MetaReader reader(file.meta().data, static_cast<std::size_t>(file.meta().bytes));
  std::shared_ptr<neuron::NeuronPackage> package = ReadPackageMeta(reader, ctx);
  if (!reader.AtEnd()) {
    TNP_THROW(kParseError) << "artifact " << path << ": " << reader.remaining()
                           << " trailing META bytes";
  }
  RecordLoad(start);
  return package;
}

std::uint64_t SaveCompiledModule(const relay::CompiledModule& compiled,
                                 const std::string& path) {
  ArtifactWriter blob(ArtifactKind::kCompiledModule);
  MetaWriter writer;

  // BuildOptions.
  writer.Bool(compiled.options.enable_fusion);
  writer.Bool(compiled.options.prepack_weights);
  writer.Bool(compiled.options.fold_batch_norm);
  writer.U8(static_cast<std::uint8_t>(compiled.options.host_device));
  writer.Str(TestbedName(compiled.options.testbed));
  writer.U32(static_cast<std::uint32_t>(compiled.options.external_config.size()));
  for (const auto& [key, value] : compiled.options.external_config) {
    writer.Str(key);
    writer.Str(value);
  }
  writer.Str(compiled.tuning_fingerprint);

  // Externals: every BYOC subgraph must expose its NeuronPackage — that is
  // the only external this stack produces, and the only one reconstructable
  // from bytes.
  writer.U32(static_cast<std::uint32_t>(compiled.externals.size()));
  for (const auto& external : compiled.externals) {
    const auto* nir = dynamic_cast<const core::NirExternalModule*>(external.get());
    if (nir == nullptr) {
      TNP_THROW(kInvalidArgument)
          << "artifact: external module '" << external->name()
          << "' is not a NirExternalModule and cannot be serialized";
    }
    writer.Str(nir->name());
    WritePackageMeta(writer, blob, nir->package());
  }

  // Program shape before instructions, so the loader validates slots inline.
  writer.I32(compiled.num_slots);
  {
    std::vector<std::pair<std::string, int>> inputs(compiled.input_slots.begin(),
                                                    compiled.input_slots.end());
    std::sort(inputs.begin(), inputs.end());  // deterministic bytes
    writer.U32(static_cast<std::uint32_t>(inputs.size()));
    for (const auto& [name, slot] : inputs) {
      writer.Str(name);
      writer.I32(slot);
    }
  }
  writer.I32(compiled.output_slot);
  writer.I32(compiled.num_outputs);

  // Packed panel table shared by the instruction stream.
  PackedTable table;
  std::vector<int> packed_index;
  packed_index.reserve(compiled.instructions.size());
  for (const auto& inst : compiled.instructions) {
    packed_index.push_back(table.IndexOf(inst.packed_weights));
  }
  WritePackedTable(writer, blob, table);

  // Instruction stream with snapshotted attrs/types/cost descriptors.
  writer.U32(static_cast<std::uint32_t>(compiled.instructions.size()));
  for (std::size_t i = 0; i < compiled.instructions.size(); ++i) {
    const relay::Instruction& inst = compiled.instructions[i];
    writer.U8(static_cast<std::uint8_t>(inst.kind));
    writer.I32(inst.output_slot);
    writer.I32s(inst.input_slots);
    writer.Str(inst.op_name);
    WriteAttrs(writer, inst.attrs);
    WriteType(writer, inst.out_type);
    writer.I32(inst.fusion_group);
    writer.Bool(inst.charge);
    writer.I32(inst.external_index);
    writer.I32(inst.tuple_index);
    WriteTensor(writer, blob, inst.constant);
    writer.I32(packed_index[i]);
    WriteOpDesc(writer, inst.desc);
  }

  // MemoryPlan.
  writer.U32(static_cast<std::uint32_t>(compiled.memory_plan.slots.size()));
  for (const auto& slot : compiled.memory_plan.slots) {
    writer.U8(static_cast<std::uint8_t>(slot.kind));
    writer.I64(slot.offset);
    writer.I64(slot.bytes);
    writer.I32(slot.alias_of);
    writer.I64s(slot.type.shape.dims());
    writer.U8(static_cast<std::uint8_t>(slot.type.dtype));
    writer.I32(slot.first_def);
    writer.I32(slot.last_use);
  }
  writer.I64(compiled.memory_plan.arena_bytes);
  writer.I64(compiled.memory_plan.planned_bytes);
  writer.I32(compiled.memory_plan.num_arena_slots);
  writer.I32(compiled.memory_plan.num_alias_slots);

  return blob.Commit(writer.buffer(), path);
}

relay::CompiledModulePtr MapCompiledModule(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const ArtifactFile file = ArtifactFile::Open(path, ArtifactKind::kCompiledModule);
  const LoadContext ctx{file.blob(), file.mapping()};
  MetaReader reader(file.meta().data, static_cast<std::size_t>(file.meta().bytes));
  auto module = std::make_shared<relay::CompiledModule>();

  module->options.enable_fusion = reader.Bool();
  module->options.prepack_weights = reader.Bool();
  module->options.fold_batch_norm = reader.Bool();
  module->options.host_device = static_cast<sim::DeviceKind>(CheckedTag(
      reader, static_cast<std::uint8_t>(sim::DeviceKind::kNeuronApu), "host device"));
  module->options.testbed = TestbedByName(reader.Str());
  const std::uint32_t config_count = reader.Count();
  for (std::uint32_t i = 0; i < config_count; ++i) {
    std::string key = reader.Str();
    module->options.external_config[std::move(key)] = reader.Str();
  }
  module->tuning_fingerprint = reader.Str();

  const std::uint32_t external_count = reader.Count();
  module->externals.reserve(external_count);
  for (std::uint32_t i = 0; i < external_count; ++i) {
    std::string name = reader.Str();
    std::shared_ptr<neuron::NeuronPackage> package = ReadPackageMeta(reader, ctx);
    module->externals.push_back(
        std::make_shared<core::NirExternalModule>(std::move(name), std::move(package)));
  }

  module->num_slots = reader.I32();
  if (module->num_slots < 0 || module->num_slots > (1 << 28)) {
    TNP_THROW(kParseError) << "artifact: implausible slot count " << module->num_slots;
  }
  const auto check_slot = [&](int slot, const char* what) {
    if (slot < 0 || slot >= module->num_slots) {
      TNP_THROW(kParseError) << "artifact: " << what << " slot " << slot
                             << " escapes the program (" << module->num_slots
                             << " slots)";
    }
  };
  const std::uint32_t input_count = reader.Count();
  for (std::uint32_t i = 0; i < input_count; ++i) {
    std::string name = reader.Str();
    const std::int32_t slot = reader.I32();
    check_slot(slot, "graph input");
    module->input_slots.emplace(std::move(name), slot);
  }
  module->output_slot = reader.I32();
  check_slot(module->output_slot, "program output");
  module->num_outputs = reader.I32();
  if (module->num_outputs < 1) {
    TNP_THROW(kParseError) << "artifact: invalid output count " << module->num_outputs;
  }

  const std::vector<kernels::PackedMatrixPtr> table =
      ReadPackedTable(reader, ctx, module->packed_weights);

  const std::uint32_t inst_count = reader.Count();
  module->instructions.reserve(inst_count);
  for (std::uint32_t i = 0; i < inst_count; ++i) {
    relay::Instruction inst;
    inst.kind = static_cast<relay::Instruction::Kind>(CheckedTag(
        reader, static_cast<std::uint8_t>(relay::Instruction::Kind::kTupleGetItem),
        "instruction kind"));
    inst.output_slot = reader.I32();
    check_slot(inst.output_slot, "instruction output");
    inst.input_slots = reader.I32s();
    for (const int slot : inst.input_slots) check_slot(slot, "instruction input");
    inst.op_name = reader.Str();
    inst.attrs = ReadAttrs(reader);
    inst.out_type = ReadType(reader);
    inst.fusion_group = reader.I32();
    inst.charge = reader.Bool();
    inst.external_index = reader.I32();
    if (inst.kind == relay::Instruction::Kind::kCallExternal &&
        (inst.external_index < 0 ||
         inst.external_index >= static_cast<int>(module->externals.size()))) {
      TNP_THROW(kParseError) << "artifact: external index " << inst.external_index
                             << " escapes the external table ("
                             << module->externals.size() << " modules)";
    }
    inst.tuple_index = reader.I32();
    inst.constant = ReadTensor(reader, ctx);
    if (inst.kind == relay::Instruction::Kind::kConstant && !inst.constant.defined()) {
      TNP_THROW(kParseError) << "artifact: constant instruction " << i
                             << " has no payload";
    }
    const int packed = ReadPackedIndex(reader, table, "instruction");
    if (packed >= 0) inst.packed_weights = table[packed];
    inst.desc = ReadOpDesc(reader);
    module->instructions.push_back(std::move(inst));
  }

  const std::uint32_t slot_count = reader.Count();
  if (slot_count != 0 && slot_count != static_cast<std::uint32_t>(module->num_slots)) {
    TNP_THROW(kParseError) << "artifact: memory plan covers " << slot_count
                           << " slots, program has " << module->num_slots;
  }
  module->memory_plan.slots.reserve(slot_count);
  for (std::uint32_t i = 0; i < slot_count; ++i) {
    relay::SlotPlan slot;
    slot.kind = static_cast<relay::SlotPlan::Kind>(CheckedTag(
        reader, static_cast<std::uint8_t>(relay::SlotPlan::Kind::kAlias), "slot kind"));
    slot.offset = reader.I64();
    slot.bytes = reader.I64();
    slot.alias_of = reader.I32();
    if (slot.alias_of < -1 || slot.alias_of >= module->num_slots) {
      TNP_THROW(kParseError) << "artifact: slot " << i << " aliases slot "
                             << slot.alias_of << " outside the program";
    }
    const std::vector<std::int64_t> dims = reader.I64s();
    CheckedElements(dims);
    slot.type.shape = Shape(dims);
    slot.type.dtype = ReadDType(reader);
    slot.first_def = reader.I32();
    slot.last_use = reader.I32();
    module->memory_plan.slots.push_back(std::move(slot));
  }
  module->memory_plan.arena_bytes = reader.I64();
  module->memory_plan.planned_bytes = reader.I64();
  module->memory_plan.num_arena_slots = reader.I32();
  module->memory_plan.num_alias_slots = reader.I32();
  if (module->memory_plan.arena_bytes < 0) {
    TNP_THROW(kParseError) << "artifact: negative arena size";
  }
  for (std::size_t i = 0; i < module->memory_plan.slots.size(); ++i) {
    const relay::SlotPlan& slot = module->memory_plan.slots[i];
    if (slot.kind == relay::SlotPlan::Kind::kArena &&
        (slot.offset < 0 || slot.bytes < 0 ||
         slot.offset > module->memory_plan.arena_bytes - slot.bytes)) {
      TNP_THROW(kParseError) << "artifact: slot " << i << " arena range ["
                             << slot.offset << ", +" << slot.bytes
                             << ") escapes the arena ("
                             << module->memory_plan.arena_bytes << " bytes)";
    }
  }

  if (!reader.AtEnd()) {
    TNP_THROW(kParseError) << "artifact " << path << ": " << reader.remaining()
                           << " trailing META bytes";
  }
  RecordLoad(start);
  return module;
}

}  // namespace artifact
}  // namespace tnp
