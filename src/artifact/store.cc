#include "artifact/store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "artifact/serialize.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/timeseries.h"

namespace tnp {
namespace artifact {

namespace {

support::metrics::Counter& HitCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("artifact/cache_hits");
  return counter;
}

support::metrics::Counter& MissCounter() {
  static support::metrics::Counter& counter =
      support::metrics::Registry::Global().GetCounter("artifact/cache_misses");
  return counter;
}

void EnsureDirectory(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      TNP_THROW(kRuntimeError) << "cannot create artifact store directory " << prefix
                               << ": " << std::strerror(errno);
    }
    if (i < path.size()) prefix.push_back('/');
  }
}

/// The one place a miss is legitimate: the entry does not exist at all.
/// Anything else (a present file that later fails to open, map or parse)
/// propagates as a typed error from the loader.
bool EntryExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string directory) : directory_(std::move(directory)) {
  EnsureDirectory(directory_);
  // Window these in /timeseries so a cold-start (miss burst + load_us spike)
  // is visible as a rate, not just a lifetime total in /metrics.
  auto& collector = support::timeseries::Collector::Global();
  collector.TrackCounter("artifact/cache_hits");
  collector.TrackCounter("artifact/cache_misses");
  collector.TrackHistogram("artifact/load_us");
}

std::string ArtifactStore::PathFor(const std::string& key, ArtifactKind kind) const {
  // Chain version and kind into the hash seed so one caller key can never
  // alias across format revisions or artifact kinds.
  std::uint64_t hash = Fnv1a(&kFormatVersion, sizeof(kFormatVersion));
  hash = Fnv1a(&kind, sizeof(kind), hash);
  hash = Fnv1a(key.data(), key.size(), hash);
  return directory_ + "/" + HashHex(hash) + ".tnpa";
}

relay::CompiledModulePtr ArtifactStore::TryLoadModule(const std::string& key) {
  const std::string path = PathFor(key, ArtifactKind::kCompiledModule);
  if (!EntryExists(path)) {
    MissCounter().Increment();
    return nullptr;
  }
  relay::CompiledModulePtr compiled = MapCompiledModule(path);
  HitCounter().Increment();
  return compiled;
}

void ArtifactStore::SaveModule(const std::string& key,
                               const relay::CompiledModule& compiled) {
  SaveCompiledModule(compiled, PathFor(key, ArtifactKind::kCompiledModule));
}

neuron::NeuronPackagePtr ArtifactStore::TryLoadPackage(const std::string& key) {
  const std::string path = PathFor(key, ArtifactKind::kNeuronPackage);
  if (!EntryExists(path)) {
    MissCounter().Increment();
    return nullptr;
  }
  neuron::NeuronPackagePtr package = MapNeuronPackage(path);
  HitCounter().Increment();
  return package;
}

void ArtifactStore::SavePackage(const std::string& key,
                                const neuron::NeuronPackage& package) {
  SaveNeuronPackage(package, PathFor(key, ArtifactKind::kNeuronPackage));
}

}  // namespace artifact
}  // namespace tnp
