// Model zoo — every model of the paper's evaluation (Table 1 + the three
// showcase models), generated programmatically with seeded synthetic weights
// and *emitted in its original framework's model format*, then imported
// through the corresponding frontend. This keeps the paper's multi-framework
// story real: the emotion model genuinely arrives as a Keras layer list, the
// anti-spoofing model as a traced TorchScript graph, the quantized models as
// TFLite tensor tables, YOLO as a Darknet cfg, and the wider zoo as ONNX.
//
// Architectures follow the published topologies at recognizable (sometimes
// depth-reduced) scale; see DESIGN.md for the exact simplifications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relay/module.h"

namespace tnp {
namespace zoo {

struct ZooOptions {
  /// Input resolution override (0 = the model's canonical size). Tests use
  /// small sizes for fast numerics; benches use canonical sizes with the
  /// static latency simulator.
  int image_size = 0;
  /// Channel width multiplier (1.0 = canonical widths).
  double width = 1.0;
  /// Depth multiplier scaling block-repeat counts (1.0 = canonical depth).
  double depth = 1.0;
  /// Base weight seed; per-layer seeds derive from it and the model name.
  std::uint64_t seed = 2022;
};

struct ModelInfo {
  std::string name;
  std::string framework;  ///< "keras" | "pytorch" | "tflite" | "darknet" | "onnx"
  DType data_type = DType::kFloat32;
  int canonical_size = 224;
  std::string task;  ///< "classification" | "detection" | "anti-spoofing" | "emotion"
};

/// All registered models (the paper's Table 1 set + the showcase models).
const std::vector<ModelInfo>& AllModels();

/// Lookup; throws kInvalidArgument for unknown names.
const ModelInfo& Info(const std::string& name);

/// Emit the model in its framework's textual format.
std::string EmitSource(const std::string& name, const ZooOptions& options = {});

/// EmitSource + frontend::Import.
relay::Module Build(const std::string& name, const ZooOptions& options = {});

// Per-model emitters (exposed for tests).
std::string EmitEmotionCnn(const ZooOptions& options);         // keras
std::string EmitMobilenetV1(const ZooOptions& options);        // keras
std::string EmitMobilenetV2(const ZooOptions& options);        // pytorch
std::string EmitDeePixBiS(const ZooOptions& options);          // pytorch
std::string EmitInceptionResnetV2(const ZooOptions& options);  // pytorch
std::string EmitDensenet121(const ZooOptions& options);        // onnx
std::string EmitInceptionV3(const ZooOptions& options);        // onnx
std::string EmitInceptionV4(const ZooOptions& options);        // onnx
std::string EmitNasnetMobile(const ZooOptions& options);       // onnx
std::string EmitYolov3Tiny(const ZooOptions& options);         // darknet
std::string EmitYolov3(const ZooOptions& options);             // darknet (full)
std::string EmitMobilenetV1Quant(const ZooOptions& options);   // tflite
std::string EmitMobilenetV2Quant(const ZooOptions& options);   // tflite
std::string EmitInceptionV3Quant(const ZooOptions& options);   // tflite
std::string EmitMobilenetSsd(const ZooOptions& options);       // tflite (float)
std::string EmitMobilenetSsdQuant(const ZooOptions& options);  // tflite (int8)
std::string EmitResnet18(const ZooOptions& options);           // mxnet

}  // namespace zoo
}  // namespace tnp
