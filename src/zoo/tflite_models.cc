// TFLite-format emitters: the pre-quantized classification models
// (mobilenet v1/v2, inception v3) and Mobilenet-SSD (float and int8).
//
// These models exercise the paper's Section 3.3 ("Augment QNN flow"):
// quantization parameters live on *tensors* in the TFLite tables, become
// *operator* attributes in Relay QNN on import, and must be moved back onto
// Neuron operands by the converter.
#include <map>
#include <vector>

#include "kernels/common.h"
#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

namespace {

struct TensorDesc {
  std::vector<std::int64_t> shape;
  DType dtype = DType::kFloat32;
};

class TfliteWriter {
 public:
  TfliteWriter(const std::string& model_name, const ZooOptions& options)
      : seeds_(model_name, options.seed) {
    header_ << "TFLITE_MODEL v1\n";
    header_ << "name: " << model_name << "\n";
  }

  int InputF32(std::vector<std::int64_t> shape) {
    return AddTensor(std::move(shape), DType::kFloat32, "input", /*quant=*/false, 0.0f, 0, 0);
  }

  int TempS8(std::vector<std::int64_t> shape, float scale, int zero_point) {
    return AddTensor(std::move(shape), DType::kInt8, "temp", true, scale, zero_point, 0);
  }

  int TempF32(std::vector<std::int64_t> shape) {
    return AddTensor(std::move(shape), DType::kFloat32, "temp", false, 0.0f, 0, 0);
  }

  int ConstS8(std::vector<std::int64_t> shape, float scale) {
    return AddTensor(std::move(shape), DType::kInt8, "const", true, scale, 0, seeds_.Next());
  }

  int ConstS32(std::vector<std::int64_t> shape) {
    return AddTensor(std::move(shape), DType::kInt32, "const", false, 0.0f, 0, seeds_.Next());
  }

  int ConstF32(std::vector<std::int64_t> shape) {
    return AddTensor(std::move(shape), DType::kFloat32, "const", false, 0.0f, 0, seeds_.Next());
  }

  void Op(const std::string& type, const std::vector<int>& inputs, int output,
          const std::string& extra = "") {
    body_ << "op " << type << " inputs=";
    for (std::size_t i = 0; i < inputs.size(); ++i) body_ << (i ? "," : "") << inputs[i];
    body_ << " outputs=" << output;
    if (!extra.empty()) body_ << " " << extra;
    body_ << "\n";
  }

  const TensorDesc& Desc(int id) const { return descs_.at(static_cast<std::size_t>(id)); }

  /// Activation scale that drifts per layer but stays deterministic.
  float NextScale() {
    scale_step_ = (scale_step_ + 1) % 7;
    return 0.02f + 0.005f * static_cast<float>(scale_step_);
  }

  // ---- composite helpers (quantized path) ----

  /// Quantize a float input tensor to int8.
  int Quantize(int input, float scale, int zero_point) {
    const int out = TempS8(Desc(input).shape, scale, zero_point);
    Op("QUANTIZE", {input}, out);
    return out;
  }

  int Dequantize(int input) {
    const int out = TempF32(Desc(input).shape);
    Op("DEQUANTIZE", {input}, out);
    return out;
  }

  /// int8 conv (+RELU when `relu`). `groups` <= 0 means depthwise.
  int QConv(int input, std::int64_t out_channels, int kernel, int stride, int pad,
            bool depthwise, bool relu) {
    const std::vector<std::int64_t> in_shape = Desc(input).shape;  // copy: table grows below
    const std::int64_t in_channels = in_shape[1];
    const std::int64_t group_channels = depthwise ? 1 : in_channels;
    const int weight = ConstS8({out_channels, group_channels, kernel, kernel}, 0.02f);
    const int bias = ConstS32({out_channels});
    const std::int64_t out_h = OutDim(in_shape[2], kernel, stride, pad);
    const std::int64_t out_w = OutDim(in_shape[3], kernel, stride, pad);
    int out = TempS8({in_shape[0], out_channels, out_h, out_w}, NextScale(), 0);
    std::ostringstream extra;
    extra << "strides=" << stride << "x" << stride << " padding=" << pad << "x" << pad;
    Op(depthwise ? "DEPTHWISE_CONV_2D" : "CONV_2D", {input, weight, bias}, out, extra.str());
    if (relu) {
      // RELU does not rescale: the output tensor keeps its input's params.
      const int activated = TempS8(Desc(out).shape, ScaleOf(out), ZpOf(out));
      Op("RELU", {out}, activated);
      out = activated;
    }
    return out;
  }

  /// Float conv (+RELU).
  int FConv(int input, std::int64_t out_channels, int kernel, int stride, int pad, bool relu) {
    const std::vector<std::int64_t> in_shape = Desc(input).shape;  // copy: table grows below
    const int weight = ConstF32({out_channels, in_shape[1], kernel, kernel});
    const int bias = ConstF32({out_channels});
    const std::int64_t out_h = OutDim(in_shape[2], kernel, stride, pad);
    const std::int64_t out_w = OutDim(in_shape[3], kernel, stride, pad);
    int out = TempF32({in_shape[0], out_channels, out_h, out_w});
    std::ostringstream extra;
    extra << "strides=" << stride << "x" << stride << " padding=" << pad << "x" << pad;
    Op("CONV_2D", {input, weight, bias}, out, extra.str());
    if (relu) {
      const int activated = TempF32(Desc(out).shape);
      Op("RELU", {out}, activated);
      out = activated;
    }
    return out;
  }

  int Reshape(int input, const std::vector<std::int64_t>& newshape) {
    const TensorDesc& desc = Desc(input);
    int out;
    if (desc.dtype == DType::kInt8) {
      // Quant params pass through a reshape unchanged.
      out = TempS8(newshape, quant_scale_.at(static_cast<std::size_t>(input)),
                   quant_zp_.at(static_cast<std::size_t>(input)));
    } else {
      out = TempF32(newshape);
    }
    Op("RESHAPE", {input}, out);
    return out;
  }

  void Outputs(const std::vector<int>& ids) {
    body_ << "outputs ";
    for (std::size_t i = 0; i < ids.size(); ++i) body_ << (i ? "," : "") << ids[i];
    body_ << "\n";
  }

  float ScaleOf(int id) const { return quant_scale_.at(static_cast<std::size_t>(id)); }
  int ZpOf(int id) const { return quant_zp_.at(static_cast<std::size_t>(id)); }

  std::string Source() const { return header_.str() + body_.str(); }

 private:
  // `shape` is taken by value everywhere: several call sites pass
  // Desc(x).shape, a reference into descs_, which the push_back below would
  // otherwise invalidate mid-call.
  int AddTensor(std::vector<std::int64_t> shape, DType dtype, const std::string& kind,
                bool quant, float scale, int zero_point, std::uint64_t seed) {
    const int id = static_cast<int>(descs_.size());
    descs_.push_back(TensorDesc{shape, dtype});
    quant_scale_.push_back(scale);
    quant_zp_.push_back(zero_point);
    body_ << "tensor " << id << " name=t" << id << " shape=";
    for (std::size_t i = 0; i < shape.size(); ++i) body_ << (i ? "x" : "") << shape[i];
    body_ << " dtype=" << DTypeName(dtype);
    if (quant) body_ << " scale=" << scale << " zero_point=" << zero_point;
    body_ << " kind=" << kind;
    if (kind == "const") body_ << " seed=" << seed;
    body_ << "\n";
    return id;
  }

  std::ostringstream header_;
  std::ostringstream body_;
  SeedGen seeds_;
  std::vector<TensorDesc> descs_;
  std::vector<float> quant_scale_;
  std::vector<int> quant_zp_;
  int scale_step_ = 0;
};

/// Shared mobilenet-v1 quantized backbone; returns the final feature tensor.
int MobilenetV1QuantBackbone(TfliteWriter& w, const ZooOptions& options, int x,
                             std::vector<int>* taps = nullptr) {
  x = w.QConv(x, C(options, 32), 3, 2, 1, false, true);
  const auto dw_block = [&](int input, std::int64_t filters, int stride) {
    int y = w.QConv(input, w.Desc(input).shape[1], 3, stride, 1, /*depthwise=*/true, true);
    return w.QConv(y, filters, 1, 1, 0, false, true);
  };
  x = dw_block(x, C(options, 64), 1);
  x = dw_block(x, C(options, 128), 2);
  x = dw_block(x, C(options, 128), 1);
  x = dw_block(x, C(options, 256), 2);
  x = dw_block(x, C(options, 256), 1);
  x = dw_block(x, C(options, 512), 2);
  for (int i = 0; i < Rep(options, 5); ++i) x = dw_block(x, C(options, 512), 1);
  if (taps != nullptr) taps->push_back(x);  // stride-16 feature map
  x = dw_block(x, C(options, 1024), 2);
  x = dw_block(x, C(options, 1024), 1);
  if (taps != nullptr) taps->push_back(x);  // stride-32 feature map
  return x;
}

}  // namespace

std::string EmitMobilenetV1Quant(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  TfliteWriter w("mobilenet_v1_quant", options);
  int x = w.InputF32({1, 3, size, size});
  x = w.Quantize(x, 1.0f / 128.0f, 0);
  x = MobilenetV1QuantBackbone(w, options, x);

  // Global average pool expressed as a full-window AVERAGE_POOL_2D.
  const std::vector<std::int64_t> shape = w.Desc(x).shape;
  const int pooled = w.TempS8({1, shape[1], 1, 1}, w.ScaleOf(x), w.ZpOf(x));
  std::ostringstream extra;
  extra << "filter=" << shape[2] << "x" << shape[3] << " strides=1x1";
  w.Op("AVERAGE_POOL_2D", {x}, pooled, extra.str());

  int flat = w.Reshape(pooled, {1, shape[1]});
  const int weight = w.ConstS8({C(options, 1000), shape[1]}, 0.02f);
  const int bias = w.ConstS32({C(options, 1000)});
  const int logits = w.TempS8({1, C(options, 1000)}, 0.1f, 0);
  w.Op("FULLY_CONNECTED", {flat, weight, bias}, logits);
  const int logits_f32 = w.Dequantize(logits);
  const int probs = w.TempF32({1, C(options, 1000)});
  w.Op("SOFTMAX", {logits_f32}, probs);
  w.Outputs({probs});
  return w.Source();
}

std::string EmitMobilenetV2Quant(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  TfliteWriter w("mobilenet_v2_quant", options);
  int x = w.InputF32({1, 3, size, size});
  x = w.Quantize(x, 1.0f / 128.0f, 0);
  x = w.QConv(x, C(options, 32), 3, 2, 1, false, true);

  struct BlockSpec { int t; std::int64_t c; int n; int s; };
  const BlockSpec specs[] = {
      {1, C(options, 16), 1, 1},  {6, C(options, 24), Rep(options, 2), 2},
      {6, C(options, 32), Rep(options, 3), 2},  {6, C(options, 64), Rep(options, 4), 2},
      {6, C(options, 96), Rep(options, 3), 1},  {6, C(options, 160), Rep(options, 3), 2},
      {6, C(options, 320), 1, 1},
  };
  for (const auto& spec : specs) {
    for (int i = 0; i < spec.n; ++i) {
      const int stride = i == 0 ? spec.s : 1;
      const std::int64_t in_channels = w.Desc(x).shape[1];
      int y = x;
      if (spec.t != 1) y = w.QConv(y, in_channels * spec.t, 1, 1, 0, false, true);
      y = w.QConv(y, w.Desc(y).shape[1], 3, stride, 1, /*depthwise=*/true, true);
      y = w.QConv(y, spec.c, 1, 1, 0, false, false);
      if (stride == 1 && in_channels == spec.c) {
        const int sum = w.TempS8(w.Desc(y).shape, w.NextScale(), 0);
        w.Op("ADD", {y, x}, sum);
        y = sum;
      }
      x = y;
    }
  }

  x = w.QConv(x, C(options, 1280), 1, 1, 0, false, true);
  const std::vector<std::int64_t> shape = w.Desc(x).shape;
  const int pooled = w.TempS8({1, shape[1], 1, 1}, w.ScaleOf(x), w.ZpOf(x));
  std::ostringstream extra;
  extra << "filter=" << shape[2] << "x" << shape[3] << " strides=1x1";
  w.Op("AVERAGE_POOL_2D", {x}, pooled, extra.str());
  int flat = w.Reshape(pooled, {1, shape[1]});
  const int weight = w.ConstS8({C(options, 1000), shape[1]}, 0.02f);
  const int bias = w.ConstS32({C(options, 1000)});
  const int logits = w.TempS8({1, C(options, 1000)}, 0.1f, 0);
  w.Op("FULLY_CONNECTED", {flat, weight, bias}, logits);
  const int logits_f32 = w.Dequantize(logits);
  const int probs = w.TempF32({1, C(options, 1000)});
  w.Op("SOFTMAX", {logits_f32}, probs);
  w.Outputs({probs});
  return w.Source();
}

std::string EmitInceptionV3Quant(const ZooOptions& options) {
  const int size = ScaledSize(options, 299);
  TfliteWriter w("inception_v3_quant", options);
  int x = w.InputF32({1, 3, size, size});
  x = w.Quantize(x, 1.0f / 128.0f, 0);

  // Stem.
  x = w.QConv(x, C(options, 32), 3, 2, 1, false, true);
  x = w.QConv(x, C(options, 64), 3, 1, 1, false, true);
  {
    const std::vector<std::int64_t> s = w.Desc(x).shape;
    const int pooled = w.TempS8({1, s[1], OutDim(s[2], 3, 2, 1), OutDim(s[3], 3, 2, 1)},
                                w.ScaleOf(x), w.ZpOf(x));
    w.Op("MAX_POOL_2D", {x}, pooled, "filter=3x3 strides=2x2 padding=1x1");
    x = pooled;
  }
  x = w.QConv(x, C(options, 192), 3, 2, 1, false, true);

  const auto concat4 = [&](const std::vector<int>& pieces) {
    std::int64_t channels = 0;
    for (const int piece : pieces) channels += w.Desc(piece).shape[1];
    const std::vector<std::int64_t> s0 = w.Desc(pieces[0]).shape;
    const int out = w.TempS8({1, channels, s0[2], s0[3]}, w.NextScale(), 0);
    w.Op("CONCATENATION", pieces, out, "axis=1");
    return out;
  };

  const auto inception_block = [&](int input) {
    const int b0 = w.QConv(input, C(options, 64), 1, 1, 0, false, true);
    int b1 = w.QConv(input, C(options, 48), 1, 1, 0, false, true);
    b1 = w.QConv(b1, C(options, 64), 5, 1, 2, false, true);
    int b2 = w.QConv(input, C(options, 64), 1, 1, 0, false, true);
    b2 = w.QConv(b2, C(options, 96), 3, 1, 1, false, true);
    b2 = w.QConv(b2, C(options, 96), 3, 1, 1, false, true);
    const int b3 = w.QConv(input, C(options, 64), 1, 1, 0, false, true);
    return concat4({b0, b1, b2, b3});
  };
  const auto reduction = [&](int input) {
    const int b0 = w.QConv(input, C(options, 384), 3, 2, 1, false, true);
    int b1 = w.QConv(input, C(options, 96), 1, 1, 0, false, true);
    b1 = w.QConv(b1, C(options, 96), 3, 2, 1, false, true);
    const std::vector<std::int64_t> s = w.Desc(input).shape;
    const int pooled = w.TempS8({1, s[1], OutDim(s[2], 3, 2, 1), OutDim(s[3], 3, 2, 1)},
                                w.ScaleOf(input), w.ZpOf(input));
    w.Op("MAX_POOL_2D", {input}, pooled, "filter=3x3 strides=2x2 padding=1x1");
    return concat4({b0, b1, pooled});
  };

  for (int i = 0; i < Rep(options, 3); ++i) x = inception_block(x);
  x = reduction(x);
  for (int i = 0; i < Rep(options, 4); ++i) x = inception_block(x);
  x = reduction(x);
  for (int i = 0; i < Rep(options, 2); ++i) x = inception_block(x);

  const std::vector<std::int64_t> shape = w.Desc(x).shape;
  const int pooled = w.TempS8({1, shape[1], 1, 1}, w.ScaleOf(x), w.ZpOf(x));
  std::ostringstream extra;
  extra << "filter=" << shape[2] << "x" << shape[3] << " strides=1x1";
  w.Op("AVERAGE_POOL_2D", {x}, pooled, extra.str());
  int flat = w.Reshape(pooled, {1, shape[1]});
  const int weight = w.ConstS8({C(options, 1000), shape[1]}, 0.02f);
  const int bias = w.ConstS32({C(options, 1000)});
  const int logits = w.TempS8({1, C(options, 1000)}, 0.1f, 0);
  w.Op("FULLY_CONNECTED", {flat, weight, bias}, logits);
  const int logits_f32 = w.Dequantize(logits);
  const int probs = w.TempF32({1, C(options, 1000)});
  w.Op("SOFTMAX", {logits_f32}, probs);
  w.Outputs({probs});
  return w.Source();
}

namespace {

std::string EmitSsd(const std::string& name, const ZooOptions& options, bool quantized) {
  // Mobilenet-SSD: a mobilenet-v1 backbone tapped at strides 16 and 32,
  // one extra stride-64 feature layer, and per-feature-map box/class conv
  // heads flattened and concatenated. The class tail (sigmoid) stays float
  // — sigmoid has no Neuron lowering, so the SSD graph always keeps a TVM
  // host portion (and NeuroPilot-only compilation of this model fails).
  const int size = ScaledSize(options, 300);
  const int num_anchors = 3;
  const std::int64_t num_classes = 21;  // VOC-style: 20 + background
  TfliteWriter w(name, options);
  int x = w.InputF32({1, 3, size, size});

  std::vector<int> taps;
  if (quantized) {
    x = w.Quantize(x, 1.0f / 128.0f, 0);
    x = MobilenetV1QuantBackbone(w, options, x, &taps);
    // Extra stride-64 feature layer.
    int extra = w.QConv(x, C(options, 256), 1, 1, 0, false, true);
    extra = w.QConv(extra, C(options, 512), 3, 2, 1, false, true);
    taps.push_back(extra);
  } else {
    x = w.FConv(x, C(options, 32), 3, 2, 1, true);
    const auto dw_block = [&](int input, std::int64_t filters, int stride) {
      // Float backbone uses plain 3x3 convs (keeps the float emitter small).
      return w.FConv(input, filters, 3, stride, 1, true);
    };
    x = dw_block(x, C(options, 64), 1);
    x = dw_block(x, C(options, 128), 2);
    x = dw_block(x, C(options, 256), 2);
    x = dw_block(x, C(options, 512), 2);
    for (int i = 0; i < Rep(options, 3); ++i) x = dw_block(x, C(options, 512), 1);
    taps.push_back(x);  // stride 16
    x = dw_block(x, C(options, 1024), 2);
    taps.push_back(x);  // stride 32
    int extra = w.FConv(x, C(options, 256), 1, 1, 0, true);
    extra = w.FConv(extra, C(options, 512), 3, 2, 1, true);
    taps.push_back(extra);
  }

  // Heads: box regressors (4 per anchor) and class logits per feature map.
  std::vector<int> box_parts;
  std::vector<int> cls_parts;
  for (const int tap : taps) {
    const std::vector<std::int64_t> shape = w.Desc(tap).shape;
    const std::int64_t cells = shape[2] * shape[3];
    int box;
    int cls;
    if (quantized) {
      box = w.QConv(tap, num_anchors * 4, 3, 1, 1, false, false);
      cls = w.QConv(tap, num_anchors * num_classes, 3, 1, 1, false, false);
      box = w.Dequantize(box);
      cls = w.Dequantize(cls);
    } else {
      box = w.FConv(tap, num_anchors * 4, 3, 1, 1, false);
      cls = w.FConv(tap, num_anchors * num_classes, 3, 1, 1, false);
    }
    box_parts.push_back(w.Reshape(box, {1, num_anchors * 4 * cells}));
    cls_parts.push_back(w.Reshape(cls, {1, num_anchors * num_classes * cells}));
  }

  const auto concat_flat = [&](const std::vector<int>& parts) {
    std::int64_t total = 0;
    for (const int part : parts) total += w.Desc(part).shape[1];
    const int out = w.TempF32({1, total});
    w.Op("CONCATENATION", parts, out, "axis=1");
    return out;
  };
  const int boxes = concat_flat(box_parts);
  int scores = concat_flat(cls_parts);
  const int scores_sig = w.TempF32(w.Desc(scores).shape);
  w.Op("LOGISTIC", {scores}, scores_sig);

  w.Outputs({boxes, scores_sig});
  return w.Source();
}

}  // namespace

std::string EmitMobilenetSsd(const ZooOptions& options) {
  return EmitSsd("mobilenet_ssd", options, /*quantized=*/false);
}

std::string EmitMobilenetSsdQuant(const ZooOptions& options) {
  return EmitSsd("mobilenet_ssd_quant", options, /*quantized=*/true);
}

}  // namespace zoo
}  // namespace tnp
