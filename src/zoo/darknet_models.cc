// Darknet-format emitter: YOLOv3-tiny (paper Section 4.2 / Listing 3).
#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

std::string EmitYolov3Tiny(const ZooOptions& options) {
  const int size = ScaledSize(options, 416);
  SeedGen seeds("yolov3_tiny", options.seed);
  std::ostringstream os;

  const auto conv = [&](std::int64_t filters, int kernel, int stride,
                        const char* activation) {
    os << "\n[convolutional]\n";
    os << "batch_normalize=1\n";
    os << "filters=" << filters << "\n";
    os << "size=" << kernel << "\n";
    os << "stride=" << stride << "\n";
    os << "pad=1\n";
    os << "activation=" << activation << "\n";
    os << "seed=" << seeds.Next() << "\n";
  };
  const auto maxpool = [&](int pool_size, int stride) {
    os << "\n[maxpool]\n";
    os << "size=" << pool_size << "\n";
    os << "stride=" << stride << "\n";
  };

  os << "DARKNET_CFG v1\n";
  os << "[net]\n";
  os << "width=" << size << "\n";
  os << "height=" << size << "\n";
  os << "channels=3\n";

  conv(C(options, 16), 3, 1, "leaky");   // 0
  maxpool(2, 2);                         // 1
  conv(C(options, 32), 3, 1, "leaky");   // 2
  maxpool(2, 2);                         // 3
  conv(C(options, 64), 3, 1, "leaky");   // 4
  maxpool(2, 2);                         // 5
  conv(C(options, 128), 3, 1, "leaky");  // 6
  maxpool(2, 2);                         // 7
  conv(C(options, 256), 3, 1, "leaky");  // 8  <- routed to the second head
  maxpool(2, 2);                         // 9
  conv(C(options, 512), 3, 1, "leaky");  // 10
  // Darknet's tiny-yolo uses a 2x2/1 maxpool with asymmetric right/bottom
  // padding here; a padded 3x3/1 pool preserves the extent symmetrically.
  maxpool(3, 1);                         // 11 (stride-1 pool, padded)
  conv(C(options, 1024), 3, 1, "leaky"); // 12
  conv(C(options, 256), 1, 1, "leaky");  // 13 <- routed to the upsample path
  conv(C(options, 512), 3, 1, "leaky");  // 14
  conv(255, 1, 1, "linear");             // 15: head 1 (3 anchors x 85)
  os << "\n[yolo]\n";                    // 16
  os << "\n[route]\nlayers=13\n";        // 17
  conv(C(options, 128), 1, 1, "leaky");  // 18
  os << "\n[upsample]\nstride=2\n";      // 19
  os << "\n[route]\nlayers=-1,8\n";      // 20
  conv(C(options, 256), 3, 1, "leaky");  // 21
  conv(255, 1, 1, "linear");             // 22: head 2
  os << "\n[yolo]\n";                    // 23
  return os.str();
}

std::string EmitYolov3(const ZooOptions& options) {
  // Full YOLOv3: Darknet-53 backbone (residual [shortcut] blocks) + three
  // detection heads at strides 32/16/8 connected by route/upsample — the
  // model the paper runs "on the server side" (Section 4.2, Listing 3).
  const int size = ScaledSize(options, 416);
  SeedGen seeds("yolov3", options.seed);
  std::ostringstream os;
  int layer_index = -1;  // incremented per emitted section

  const auto conv = [&](std::int64_t filters, int kernel, int stride,
                        const char* activation) {
    os << "\n[convolutional]\n";
    os << "batch_normalize=1\n";
    os << "filters=" << filters << "\n";
    os << "size=" << kernel << "\n";
    os << "stride=" << stride << "\n";
    os << "pad=1\n";
    os << "activation=" << activation << "\n";
    os << "seed=" << seeds.Next() << "\n";
    return ++layer_index;
  };
  const auto shortcut = [&](int from) {
    os << "\n[shortcut]\nfrom=" << from << "\nactivation=linear\n";
    return ++layer_index;
  };
  const auto route = [&](const std::string& layers) {
    os << "\n[route]\nlayers=" << layers << "\n";
    return ++layer_index;
  };
  const auto upsample = [&] {
    os << "\n[upsample]\nstride=2\n";
    return ++layer_index;
  };
  const auto yolo = [&] {
    os << "\n[yolo]\n";
    return ++layer_index;
  };
  /// One Darknet-53 residual block: 1x1 squeeze + 3x3 expand + shortcut.
  const auto residual = [&](std::int64_t channels) {
    conv(channels / 2, 1, 1, "leaky");
    conv(channels, 3, 1, "leaky");
    return shortcut(layer_index - 2);
  };

  os << "DARKNET_CFG v1\n";
  os << "[net]\n";
  os << "width=" << size << "\n";
  os << "height=" << size << "\n";
  os << "channels=3\n";

  // Darknet-53 backbone.
  conv(C(options, 32), 3, 1, "leaky");
  conv(C(options, 64), 3, 2, "leaky");
  for (int i = 0; i < Rep(options, 1); ++i) residual(C(options, 64));
  conv(C(options, 128), 3, 2, "leaky");
  for (int i = 0; i < Rep(options, 2); ++i) residual(C(options, 128));
  conv(C(options, 256), 3, 2, "leaky");
  int tap_stride8 = 0;
  for (int i = 0; i < Rep(options, 8); ++i) tap_stride8 = residual(C(options, 256));
  conv(C(options, 512), 3, 2, "leaky");
  int tap_stride16 = 0;
  for (int i = 0; i < Rep(options, 8); ++i) tap_stride16 = residual(C(options, 512));
  conv(C(options, 1024), 3, 2, "leaky");
  for (int i = 0; i < Rep(options, 4); ++i) residual(C(options, 1024));

  /// Detection neck: 5 alternating convs; returns the index of the 5th
  /// (the feature layer routed onward to the next scale).
  const auto neck = [&](std::int64_t narrow, std::int64_t wide) {
    conv(narrow, 1, 1, "leaky");
    conv(wide, 3, 1, "leaky");
    conv(narrow, 1, 1, "leaky");
    conv(wide, 3, 1, "leaky");
    return conv(narrow, 1, 1, "leaky");
  };
  const auto head = [&](std::int64_t wide) {
    conv(wide, 3, 1, "leaky");
    conv(255, 1, 1, "linear");
    return yolo();
  };

  const int neck32 = neck(C(options, 512), C(options, 1024));
  head(C(options, 1024));

  route(std::to_string(neck32));
  conv(C(options, 256), 1, 1, "leaky");
  upsample();
  route(std::to_string(layer_index) + "," + std::to_string(tap_stride16));
  const int neck16 = neck(C(options, 256), C(options, 512));
  head(C(options, 512));

  route(std::to_string(neck16));
  conv(C(options, 128), 1, 1, "leaky");
  upsample();
  route(std::to_string(layer_index) + "," + std::to_string(tap_stride8));
  neck(C(options, 128), C(options, 256));
  head(C(options, 256));

  return os.str();
}

}  // namespace zoo
}  // namespace tnp
