#include "zoo/zoo.h"

#include "frontend/frontend.h"
#include "support/logging.h"

namespace tnp {
namespace zoo {

const std::vector<ModelInfo>& AllModels() {
  static const std::vector<ModelInfo> models = {
      // Application showcase (Figure 4).
      {"deepixbis", "pytorch", DType::kFloat32, 224, "anti-spoofing"},
      {"mobilenet_ssd_quant", "tflite", DType::kInt8, 300, "detection"},
      {"emotion_cnn", "keras", DType::kFloat32, 48, "emotion"},
      // Wider evaluation set (Table 1 / Figure 6).
      {"densenet", "onnx", DType::kFloat32, 224, "classification"},
      {"inception_resnet_v2", "pytorch", DType::kFloat32, 299, "classification"},
      {"inception_v3", "onnx", DType::kFloat32, 299, "classification"},
      {"inception_v4", "onnx", DType::kFloat32, 299, "classification"},
      {"mobilenet_v1", "keras", DType::kFloat32, 224, "classification"},
      {"mobilenet_v2", "pytorch", DType::kFloat32, 224, "classification"},
      {"nasnet", "onnx", DType::kFloat32, 224, "classification"},
      // Quantized variants (Section 3.3 / Figure 6).
      {"inception_v3_quant", "tflite", DType::kInt8, 299, "classification"},
      {"mobilenet_v1_quant", "tflite", DType::kInt8, 224, "classification"},
      {"mobilenet_v2_quant", "tflite", DType::kInt8, 224, "classification"},
      // Additional showcase pieces.
      {"mobilenet_ssd", "tflite", DType::kFloat32, 300, "detection"},
      // Extra import-path coverage (the abstract also names MXNet).
      {"resnet18", "mxnet", DType::kFloat32, 224, "classification"},
      {"yolov3_tiny", "darknet", DType::kFloat32, 416, "detection"},
      {"yolov3", "darknet", DType::kFloat32, 416, "detection"},
  };
  return models;
}

const ModelInfo& Info(const std::string& name) {
  for (const auto& model : AllModels()) {
    if (model.name == name) return model;
  }
  TNP_THROW(kInvalidArgument) << "unknown zoo model '" << name << "'";
}

std::string EmitSource(const std::string& name, const ZooOptions& options) {
  if (name == "emotion_cnn") return EmitEmotionCnn(options);
  if (name == "mobilenet_v1") return EmitMobilenetV1(options);
  if (name == "mobilenet_v2") return EmitMobilenetV2(options);
  if (name == "deepixbis") return EmitDeePixBiS(options);
  if (name == "inception_resnet_v2") return EmitInceptionResnetV2(options);
  if (name == "densenet") return EmitDensenet121(options);
  if (name == "inception_v3") return EmitInceptionV3(options);
  if (name == "inception_v4") return EmitInceptionV4(options);
  if (name == "nasnet") return EmitNasnetMobile(options);
  if (name == "yolov3_tiny") return EmitYolov3Tiny(options);
  if (name == "yolov3") return EmitYolov3(options);
  if (name == "mobilenet_v1_quant") return EmitMobilenetV1Quant(options);
  if (name == "mobilenet_v2_quant") return EmitMobilenetV2Quant(options);
  if (name == "inception_v3_quant") return EmitInceptionV3Quant(options);
  if (name == "mobilenet_ssd") return EmitMobilenetSsd(options);
  if (name == "mobilenet_ssd_quant") return EmitMobilenetSsdQuant(options);
  if (name == "resnet18") return EmitResnet18(options);
  TNP_THROW(kInvalidArgument) << "unknown zoo model '" << name << "'";
}

relay::Module Build(const std::string& name, const ZooOptions& options) {
  const ModelInfo& info = Info(name);
  return frontend::Import(info.framework, EmitSource(name, options), name + ".model");
}

}  // namespace zoo
}  // namespace tnp
