// TorchScript-format emitters: Mobilenet v2, the DeePixBiS anti-spoofing
// model, and Inception-ResNet v2.
#include <map>
#include <vector>

#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

namespace {

/// Builds a TORCHSCRIPT_GRAPH source line by line, tracking value names and
/// channel counts so conv weight shapes come out right.
class TorchWriter {
 public:
  TorchWriter(const std::string& model_name, const ZooOptions& options)
      : seeds_(model_name, options.seed) {
    os_ << "TORCHSCRIPT_GRAPH v1\n";
    os_ << "name: " << model_name << "\n";
  }

  std::string Input(std::int64_t channels, std::int64_t height, std::int64_t width) {
    os_ << "input %x : Float(1," << channels << "," << height << "," << width << ")\n";
    channels_["x"] = channels;
    return "x";
  }

  /// conv2d + batch_norm + optional activation ("relu" | "relu6" | "").
  std::string ConvBn(const std::string& x, std::int64_t out_channels, int kernel, int stride,
                     int pad, std::int64_t groups = 1, const std::string& activation = "relu") {
    std::string y = Conv(x, out_channels, kernel, stride, pad, groups, /*bias=*/false);
    y = BatchNorm(y);
    if (activation == "relu") {
      y = Unary("aten::relu", y);
    } else if (activation == "relu6") {
      y = Unary("aten::hardtanh", y, "min_val=0, max_val=6");
    }
    return y;
  }

  std::string Conv(const std::string& x, std::int64_t out_channels, int kernel, int stride,
                   int pad, std::int64_t groups = 1, bool bias = true) {
    const std::int64_t in_channels = channels_.at(x);
    const std::string y = Fresh(out_channels);
    os_ << "%" << y << " = aten::conv2d(%" << x << ", weight<seed=" << seeds_.Next()
        << ",shape=" << out_channels << "x" << in_channels / groups << "x" << kernel << "x"
        << kernel << ">";
    if (bias) os_ << ", bias<seed=" << seeds_.Next() << ",shape=" << out_channels << ">";
    os_ << ", stride=[" << stride << "," << stride << "], padding=[" << pad << "," << pad
        << "], groups=" << groups << ")\n";
    return y;
  }

  std::string BatchNorm(const std::string& x) {
    const std::int64_t channels = channels_.at(x);
    const std::string y = Fresh(channels);
    const std::uint64_t seed = seeds_.Next();
    os_ << "%" << y << " = aten::batch_norm(%" << x
        << ", const<seed=" << seed << ",shape=" << channels << ",fill=1.0,stddev=0.1,min=0.05>"
        << ", const<seed=" << seed + 1 << ",shape=" << channels << ",stddev=0.1>"
        << ", const<seed=" << seed + 2 << ",shape=" << channels << ",stddev=0.1>"
        << ", const<seed=" << seed + 3 << ",shape=" << channels << ",fill=1.0,stddev=0.1,min=0.05>"
        << ", eps=1e-5)\n";
    return y;
  }

  std::string Unary(const std::string& aten_op, const std::string& x,
                    const std::string& extra = "") {
    const std::string y = Fresh(channels_.at(x));
    os_ << "%" << y << " = " << aten_op << "(%" << x << (extra.empty() ? "" : ", " + extra)
        << ")\n";
    return y;
  }

  std::string Binary(const std::string& aten_op, const std::string& a, const std::string& b) {
    const std::string y = Fresh(channels_.at(a));
    os_ << "%" << y << " = " << aten_op << "(%" << a << ", %" << b << ")\n";
    return y;
  }

  /// Elementwise multiply by a scalar constant (residual scaling).
  std::string ScaleBy(const std::string& x, double scale) {
    const std::string y = Fresh(channels_.at(x));
    os_ << "%" << y << " = aten::mul(%" << x << ", const<seed=" << seeds_.Next()
        << ",shape=1,fill=" << scale << ",stddev=0>)\n";
    return y;
  }

  std::string MaxPool(const std::string& x, int kernel, int stride, int pad) {
    const std::string y = Fresh(channels_.at(x));
    os_ << "%" << y << " = aten::max_pool2d(%" << x << ", kernel=[" << kernel << "," << kernel
        << "], stride=[" << stride << "," << stride << "], padding=[" << pad << "," << pad
        << "])\n";
    return y;
  }

  std::string AvgPool(const std::string& x, int kernel, int stride, int pad) {
    const std::string y = Fresh(channels_.at(x));
    os_ << "%" << y << " = aten::avg_pool2d(%" << x << ", kernel=[" << kernel << "," << kernel
        << "], stride=[" << stride << "," << stride << "], padding=[" << pad << "," << pad
        << "])\n";
    return y;
  }

  std::string Cat(const std::vector<std::string>& pieces) {
    std::int64_t channels = 0;
    for (const auto& piece : pieces) channels += channels_.at(piece);
    const std::string y = Fresh(channels);
    os_ << "%" << y << " = aten::cat([";
    for (std::size_t i = 0; i < pieces.size(); ++i) os_ << (i ? ", %" : "%") << pieces[i];
    os_ << "], dim=1)\n";
    return y;
  }

  std::string GlobalPool(const std::string& x) {
    const std::string y = Fresh(channels_.at(x));
    os_ << "%" << y << " = aten::adaptive_avg_pool2d(%" << x << ", output_size=[1,1])\n";
    return y;
  }

  std::string Flatten(const std::string& x) { return Unary("aten::flatten", x); }

  std::string Linear(const std::string& x, std::int64_t in_features, std::int64_t units) {
    const std::string y = Fresh(units);
    os_ << "%" << y << " = aten::linear(%" << x << ", weight<seed=" << seeds_.Next()
        << ",shape=" << units << "x" << in_features << ">, bias<seed=" << seeds_.Next()
        << ",shape=" << units << ">)\n";
    return y;
  }

  std::string Softmax(const std::string& x) { return Unary("aten::softmax", x, "dim=-1"); }

  std::string Mean(const std::string& x) { return Unary("aten::mean", x, "dim=[2,3]"); }

  void Return(const std::string& x) { os_ << "return %" << x << "\n"; }
  void ReturnTuple(const std::vector<std::string>& xs) {
    os_ << "return (";
    for (std::size_t i = 0; i < xs.size(); ++i) os_ << (i ? ", %" : "%") << xs[i];
    os_ << ")\n";
  }

  std::int64_t ChannelsOf(const std::string& x) const { return channels_.at(x); }
  std::string Source() const { return os_.str(); }

 private:
  std::string Fresh(std::int64_t channels) {
    const std::string name = "v" + std::to_string(next_++);
    channels_[name] = channels;
    prev_ = name;
    return name;
  }
  const std::string& Prev() const { return prev_; }

  std::ostringstream os_;
  SeedGen seeds_;
  std::map<std::string, std::int64_t> channels_;
  int next_ = 0;
  std::string prev_;
};

}  // namespace

std::string EmitMobilenetV2(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  TorchWriter w("mobilenet_v2", options);
  std::string x = w.Input(3, size, size);

  x = w.ConvBn(x, C(options, 32), 3, 2, 1, 1, "relu6");

  // (expansion t, out channels c, repeats n, first stride s)
  struct BlockSpec { int t; std::int64_t c; int n; int s; };
  const BlockSpec specs[] = {
      {1, C(options, 16), 1, 1},  {6, C(options, 24), Rep(options, 2), 2},
      {6, C(options, 32), Rep(options, 3), 2},  {6, C(options, 64), Rep(options, 4), 2},
      {6, C(options, 96), Rep(options, 3), 1},  {6, C(options, 160), Rep(options, 3), 2},
      {6, C(options, 320), 1, 1},
  };
  for (const auto& spec : specs) {
    for (int i = 0; i < spec.n; ++i) {
      const int stride = i == 0 ? spec.s : 1;
      const std::int64_t in_channels = w.ChannelsOf(x);
      std::string y = x;
      const std::int64_t hidden = in_channels * spec.t;
      if (spec.t != 1) y = w.ConvBn(y, hidden, 1, 1, 0, 1, "relu6");
      y = w.ConvBn(y, w.ChannelsOf(y), 3, stride, 1, /*groups=*/w.ChannelsOf(y), "relu6");
      y = w.ConvBn(y, spec.c, 1, 1, 0, 1, /*activation=*/"");
      if (stride == 1 && in_channels == spec.c) y = w.Binary("aten::add", y, x);
      x = y;
    }
  }

  x = w.ConvBn(x, C(options, 1280), 1, 1, 0, 1, "relu6");
  x = w.GlobalPool(x);
  x = w.Flatten(x);
  x = w.Linear(x, C(options, 1280), C(options, 1000));
  x = w.Softmax(x);
  w.Return(x);
  return w.Source();
}

std::string EmitDeePixBiS(const ZooOptions& options) {
  // Deep Pixel-wise Binary Supervision (George & Marcel, ICB'19): a dense
  // CNN trunk producing a pixel-wise liveness map at 1/16 resolution plus a
  // scalar liveness score. Our variant inserts sigmoid pixel-attention
  // gates between the dense blocks — the gates keep the pixel-wise
  // supervision signal flowing, and because sigmoid has no Neuron lowering
  // they split the BYOC graph into many NIR subgraphs, reproducing the
  // many-subgraph behaviour the paper reports for this model (Section 5.1).
  const int size = ScaledSize(options, 224);
  TorchWriter w("deepixbis", options);
  std::string x = w.Input(3, size, size);

  x = w.ConvBn(x, C(options, 64), 7, 2, 3);
  x = w.MaxPool(x, 3, 2, 1);

  const auto dense_block = [&](std::string input, int layers, std::int64_t growth) {
    std::string current = input;
    for (int i = 0; i < layers; ++i) {
      std::string y = w.ConvBn(current, growth * 2, 1, 1, 0);
      y = w.ConvBn(y, growth, 3, 1, 1);
      current = w.Cat({current, y});
    }
    return current;
  };
  const auto attention_gate = [&](const std::string& input) {
    std::string gate = w.Conv(input, w.ChannelsOf(input), 1, 1, 0);
    gate = w.Unary("aten::sigmoid", gate);
    return w.Binary("aten::mul", input, gate);
  };

  x = dense_block(x, Rep(options, 4), C(options, 32));
  x = attention_gate(x);
  x = w.ConvBn(x, w.ChannelsOf(x) / 2, 1, 1, 0);  // transition
  x = w.AvgPool(x, 2, 2, 0);

  x = dense_block(x, Rep(options, 4), C(options, 32));
  x = attention_gate(x);
  x = w.ConvBn(x, w.ChannelsOf(x) / 2, 1, 1, 0);
  x = w.AvgPool(x, 2, 2, 0);

  x = dense_block(x, Rep(options, 4), C(options, 32));
  x = attention_gate(x);

  // Pixel-wise binary map (1 channel, 1/16 resolution) + scalar score.
  std::string map = w.Conv(x, 1, 1, 1, 0);
  map = w.Unary("aten::sigmoid", map);
  const std::string score = w.Mean(map);
  w.ReturnTuple({map, score});
  return w.Source();
}

std::string EmitInceptionResnetV2(const ZooOptions& options) {
  const int size = ScaledSize(options, 299);
  TorchWriter w("inception_resnet_v2", options);
  std::string x = w.Input(3, size, size);

  // Stem.
  x = w.ConvBn(x, C(options, 32), 3, 2, 1);
  x = w.ConvBn(x, C(options, 32), 3, 1, 1);
  x = w.ConvBn(x, C(options, 64), 3, 1, 1);
  x = w.MaxPool(x, 3, 2, 1);
  x = w.ConvBn(x, C(options, 80), 1, 1, 0);
  x = w.ConvBn(x, C(options, 192), 3, 1, 1);
  x = w.MaxPool(x, 3, 2, 1);
  x = w.ConvBn(x, C(options, 320), 1, 1, 0);

  const auto resnet_block = [&](std::string input, std::int64_t b0, std::int64_t b1,
                                std::int64_t b2, double scale) {
    const std::int64_t channels = w.ChannelsOf(input);
    const std::string branch0 = w.ConvBn(input, b0, 1, 1, 0);
    std::string branch1 = w.ConvBn(input, b1, 1, 1, 0);
    branch1 = w.ConvBn(branch1, b1, 3, 1, 1);
    std::string branch2 = w.ConvBn(input, b2, 1, 1, 0);
    branch2 = w.ConvBn(branch2, b2 + b2 / 2, 3, 1, 1);
    branch2 = w.ConvBn(branch2, b2 * 2, 3, 1, 1);
    std::string mixed = w.Cat({branch0, branch1, branch2});
    mixed = w.Conv(mixed, channels, 1, 1, 0);  // linear projection
    mixed = w.ScaleBy(mixed, scale);
    std::string out = w.Binary("aten::add", input, mixed);
    return w.Unary("aten::relu", out);
  };
  const auto reduction = [&](std::string input, std::int64_t k) {
    const std::string branch0 = w.MaxPool(input, 3, 2, 1);
    const std::string branch1 = w.ConvBn(input, k, 3, 2, 1);
    std::string branch2 = w.ConvBn(input, k / 2, 1, 1, 0);
    branch2 = w.ConvBn(branch2, k / 2, 3, 1, 1);
    branch2 = w.ConvBn(branch2, k, 3, 2, 1);
    return w.Cat({branch0, branch1, branch2});
  };

  for (int i = 0; i < Rep(options, 5); ++i) {
    x = resnet_block(x, C(options, 32), C(options, 32), C(options, 32), 0.17);
  }
  x = reduction(x, C(options, 384));
  for (int i = 0; i < Rep(options, 10); ++i) {
    x = resnet_block(x, C(options, 128), C(options, 128), C(options, 96), 0.10);
  }
  x = reduction(x, C(options, 288));
  for (int i = 0; i < Rep(options, 5); ++i) {
    x = resnet_block(x, C(options, 192), C(options, 192), C(options, 128), 0.20);
  }

  x = w.ConvBn(x, C(options, 1536), 1, 1, 0);
  x = w.GlobalPool(x);
  x = w.Flatten(x);
  x = w.Linear(x, C(options, 1536), C(options, 1000));
  x = w.Softmax(x);
  w.Return(x);
  return w.Source();
}

}  // namespace zoo
}  // namespace tnp
