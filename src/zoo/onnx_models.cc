// ONNX-format emitters: DenseNet-121, Inception v3/v4 and NASNet-mobile.
#include <map>
#include <vector>

#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

namespace {

class OnnxWriter {
 public:
  OnnxWriter(const std::string& model_name, const ZooOptions& options)
      : seeds_(model_name, options.seed) {
    os_ << "ONNX_MODEL v1\n";
    os_ << "name: " << model_name << "\n";
  }

  std::string Input(std::int64_t channels, std::int64_t height, std::int64_t width) {
    os_ << "input x shape=1x" << channels << "x" << height << "x" << width
        << " dtype=float32\n";
    channels_["x"] = channels;
    return "x";
  }

  std::string Conv(const std::string& x, std::int64_t out_channels, int kernel, int stride,
                   int pad, std::int64_t groups = 1) {
    const std::int64_t in_channels = channels_.at(x);
    const std::string w = FreshInit();
    os_ << "init " << w << " shape=" << out_channels << "x" << in_channels / groups << "x"
        << kernel << "x" << kernel << " seed=" << seeds_.Next() << "\n";
    const std::string b = FreshInit();
    os_ << "init " << b << " shape=" << out_channels << " stddev=0.01 seed=" << seeds_.Next()
        << "\n";
    const std::string y = Fresh(out_channels);
    os_ << "node Conv in=" << x << "," << w << "," << b << " out=" << y << " strides="
        << stride << "," << stride << " pads=" << pad << "," << pad << " group=" << groups
        << "\n";
    return y;
  }

  std::string BatchNorm(const std::string& x) {
    const std::int64_t channels = channels_.at(x);
    std::string names[4];
    const char* styles[4] = {" fill=1.0 stddev=0.1 min=0.05", " stddev=0.1", " stddev=0.1",
                             " fill=1.0 stddev=0.1 min=0.05"};
    for (int i = 0; i < 4; ++i) {
      names[i] = FreshInit();
      os_ << "init " << names[i] << " shape=" << channels << styles[i]
          << " seed=" << seeds_.Next() << "\n";
    }
    const std::string y = Fresh(channels);
    os_ << "node BatchNormalization in=" << x << "," << names[0] << "," << names[1] << ","
        << names[2] << "," << names[3] << " out=" << y << " epsilon=1e-5\n";
    return y;
  }

  std::string ConvBnRelu(const std::string& x, std::int64_t out_channels, int kernel,
                         int stride, int pad, std::int64_t groups = 1) {
    std::string y = Conv(x, out_channels, kernel, stride, pad, groups);
    y = BatchNorm(y);
    return Relu(y);
  }

  std::string Relu(const std::string& x) { return Simple("Relu", x); }

  std::string Simple(const std::string& op, const std::string& x,
                     const std::string& extra = "") {
    const std::string y = Fresh(channels_.at(x));
    os_ << "node " << op << " in=" << x << " out=" << y << (extra.empty() ? "" : " " + extra)
        << "\n";
    return y;
  }

  std::string Pool(const std::string& op, const std::string& x, int kernel, int stride,
                   int pad) {
    std::ostringstream extra;
    extra << "kernel=" << kernel << "," << kernel << " strides=" << stride << "," << stride
          << " pads=" << pad << "," << pad;
    return Simple(op, x, extra.str());
  }

  std::string Concat(const std::vector<std::string>& pieces) {
    std::int64_t channels = 0;
    std::string in;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      channels += channels_.at(pieces[i]);
      in += (i ? "," : "") + pieces[i];
    }
    const std::string y = Fresh(channels);
    os_ << "node Concat in=" << in << " out=" << y << " axis=1\n";
    return y;
  }

  std::string Slice(const std::string& x, const std::vector<std::int64_t>& starts,
                    const std::vector<std::int64_t>& ends, std::int64_t out_channels) {
    const std::string y = Fresh(out_channels);
    os_ << "node Slice in=" << x << " out=" << y << " starts=";
    for (std::size_t i = 0; i < starts.size(); ++i) os_ << (i ? "," : "") << starts[i];
    os_ << " ends=";
    for (std::size_t i = 0; i < ends.size(); ++i) os_ << (i ? "," : "") << ends[i];
    os_ << "\n";
    return y;
  }

  std::string GlobalPool(const std::string& x) { return Simple("GlobalAveragePool", x); }
  std::string Flatten(const std::string& x) { return Simple("Flatten", x); }

  std::string Dense(const std::string& x, std::int64_t in_features, std::int64_t units) {
    const std::string w = FreshInit();
    os_ << "init " << w << " shape=" << units << "x" << in_features
        << " seed=" << seeds_.Next() << "\n";
    const std::string b = FreshInit();
    os_ << "init " << b << " shape=" << units << " stddev=0.01 seed=" << seeds_.Next() << "\n";
    const std::string y = Fresh(units);
    os_ << "node Gemm in=" << x << "," << w << "," << b << " out=" << y << "\n";
    return y;
  }

  std::string Softmax(const std::string& x) { return Simple("Softmax", x, "axis=-1"); }

  void Output(const std::string& x) { os_ << "output " << x << "\n"; }

  std::int64_t ChannelsOf(const std::string& x) const { return channels_.at(x); }
  std::string Source() const { return os_.str(); }

 private:
  std::string Fresh(std::int64_t channels) {
    const std::string name = "v" + std::to_string(next_++);
    channels_[name] = channels;
    return name;
  }
  std::string FreshInit() { return "p" + std::to_string(next_init_++); }

  std::ostringstream os_;
  SeedGen seeds_;
  std::map<std::string, std::int64_t> channels_;
  int next_ = 0;
  int next_init_ = 0;
};

}  // namespace

std::string EmitDensenet121(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  OnnxWriter w("densenet", options);
  std::string x = w.Input(3, size, size);

  const std::int64_t growth = C(options, 32);
  x = w.ConvBnRelu(x, growth * 2, 7, 2, 3);
  x = w.Pool("MaxPool", x, 3, 2, 1);

  const auto dense_layer = [&](const std::string& input) {
    // BN-ReLU-Conv1x1 (bottleneck 4k) -> BN-ReLU-Conv3x3 (k), concatenated.
    std::string y = w.BatchNorm(input);
    y = w.Relu(y);
    y = w.Conv(y, growth * 4, 1, 1, 0);
    y = w.BatchNorm(y);
    y = w.Relu(y);
    y = w.Conv(y, growth, 3, 1, 1);
    return w.Concat({input, y});
  };
  const auto transition = [&](std::string input) {
    std::string y = w.BatchNorm(input);
    y = w.Relu(y);
    y = w.Conv(y, w.ChannelsOf(y) / 2, 1, 1, 0);
    return w.Pool("AveragePool", y, 2, 2, 0);
  };

  const int block_sizes[4] = {Rep(options, 6), Rep(options, 12), Rep(options, 24),
                              Rep(options, 16)};
  for (int block = 0; block < 4; ++block) {
    for (int layer = 0; layer < block_sizes[block]; ++layer) x = dense_layer(x);
    if (block != 3) x = transition(x);
  }

  x = w.BatchNorm(x);
  x = w.Relu(x);
  x = w.GlobalPool(x);
  x = w.Flatten(x);
  x = w.Dense(x, w.ChannelsOf(x), C(options, 1000));
  x = w.Softmax(x);
  w.Output(x);
  return w.Source();
}

namespace {

/// Shared Inception building blocks (v3/v4 differ in widths and counts).
struct InceptionBlocks {
  OnnxWriter& w;
  const ZooOptions& options;

  std::string BlockA(const std::string& x, std::int64_t pool_proj) {
    const std::string b0 = w.ConvBnRelu(x, C(options, 64), 1, 1, 0);
    std::string b1 = w.ConvBnRelu(x, C(options, 48), 1, 1, 0);
    b1 = w.ConvBnRelu(b1, C(options, 64), 5, 1, 2);
    std::string b2 = w.ConvBnRelu(x, C(options, 64), 1, 1, 0);
    b2 = w.ConvBnRelu(b2, C(options, 96), 3, 1, 1);
    b2 = w.ConvBnRelu(b2, C(options, 96), 3, 1, 1);
    std::string b3 = w.Pool("AveragePool", x, 3, 1, 1);
    b3 = w.ConvBnRelu(b3, pool_proj, 1, 1, 0);
    return w.Concat({b0, b1, b2, b3});
  }

  std::string ReductionA(const std::string& x, std::int64_t k) {
    const std::string b0 = w.ConvBnRelu(x, k, 3, 2, 1);
    std::string b1 = w.ConvBnRelu(x, C(options, 64), 1, 1, 0);
    b1 = w.ConvBnRelu(b1, C(options, 96), 3, 1, 1);
    b1 = w.ConvBnRelu(b1, C(options, 96), 3, 2, 1);
    const std::string b2 = w.Pool("MaxPool", x, 3, 2, 1);
    return w.Concat({b0, b1, b2});
  }

  std::string BlockB(const std::string& x, std::int64_t mid) {
    // 7x7 factorized as 1x7/7x1 pairs; modeled with two padded 3x3 stacks
    // (same channel flow, receptive field kept by stacking).
    const std::string b0 = w.ConvBnRelu(x, C(options, 192), 1, 1, 0);
    std::string b1 = w.ConvBnRelu(x, mid, 1, 1, 0);
    b1 = w.ConvBnRelu(b1, mid, 3, 1, 1);
    b1 = w.ConvBnRelu(b1, C(options, 192), 3, 1, 1);
    std::string b2 = w.ConvBnRelu(x, mid, 1, 1, 0);
    b2 = w.ConvBnRelu(b2, mid, 3, 1, 1);
    b2 = w.ConvBnRelu(b2, mid, 3, 1, 1);
    b2 = w.ConvBnRelu(b2, mid, 3, 1, 1);
    b2 = w.ConvBnRelu(b2, C(options, 192), 3, 1, 1);
    std::string b3 = w.Pool("AveragePool", x, 3, 1, 1);
    b3 = w.ConvBnRelu(b3, C(options, 192), 1, 1, 0);
    return w.Concat({b0, b1, b2, b3});
  }

  std::string ReductionB(const std::string& x) {
    std::string b0 = w.ConvBnRelu(x, C(options, 192), 1, 1, 0);
    b0 = w.ConvBnRelu(b0, C(options, 320), 3, 2, 1);
    std::string b1 = w.ConvBnRelu(x, C(options, 192), 1, 1, 0);
    b1 = w.ConvBnRelu(b1, C(options, 192), 3, 1, 1);
    b1 = w.ConvBnRelu(b1, C(options, 192), 3, 2, 1);
    const std::string b2 = w.Pool("MaxPool", x, 3, 2, 1);
    return w.Concat({b0, b1, b2});
  }

  std::string BlockC(const std::string& x) {
    const std::string b0 = w.ConvBnRelu(x, C(options, 320), 1, 1, 0);
    std::string b1 = w.ConvBnRelu(x, C(options, 384), 1, 1, 0);
    const std::string b1a = w.ConvBnRelu(b1, C(options, 384), 3, 1, 1);
    const std::string b1b = w.ConvBnRelu(b1, C(options, 384), 3, 1, 1);
    std::string b2 = w.ConvBnRelu(x, C(options, 448), 1, 1, 0);
    b2 = w.ConvBnRelu(b2, C(options, 384), 3, 1, 1);
    const std::string b2a = w.ConvBnRelu(b2, C(options, 384), 3, 1, 1);
    const std::string b2b = w.ConvBnRelu(b2, C(options, 384), 3, 1, 1);
    std::string b3 = w.Pool("AveragePool", x, 3, 1, 1);
    b3 = w.ConvBnRelu(b3, C(options, 192), 1, 1, 0);
    return w.Concat({b0, b1a, b1b, b2a, b2b, b3});
  }
};

std::string EmitInception(const std::string& name, const ZooOptions& options, int blocks_a,
                          int blocks_b, int blocks_c) {
  const int size = ScaledSize(options, 299);
  OnnxWriter w(name, options);
  InceptionBlocks blocks{w, options};
  std::string x = w.Input(3, size, size);

  // Stem.
  x = w.ConvBnRelu(x, C(options, 32), 3, 2, 1);
  x = w.ConvBnRelu(x, C(options, 32), 3, 1, 1);
  x = w.ConvBnRelu(x, C(options, 64), 3, 1, 1);
  x = w.Pool("MaxPool", x, 3, 2, 1);
  x = w.ConvBnRelu(x, C(options, 80), 1, 1, 0);
  x = w.ConvBnRelu(x, C(options, 192), 3, 1, 1);
  x = w.Pool("MaxPool", x, 3, 2, 1);

  for (int i = 0; i < Rep(options, blocks_a); ++i) {
    x = blocks.BlockA(x, C(options, i == 0 ? 32 : 64));
  }
  x = blocks.ReductionA(x, C(options, 384));
  for (int i = 0; i < Rep(options, blocks_b); ++i) {
    x = blocks.BlockB(x, C(options, i < blocks_b / 2 ? 128 : 160));
  }
  x = blocks.ReductionB(x);
  for (int i = 0; i < Rep(options, blocks_c); ++i) {
    x = blocks.BlockC(x);
  }

  x = w.GlobalPool(x);
  x = w.Flatten(x);
  x = w.Simple("Dropout", x, "ratio=0.2");
  x = w.Dense(x, w.ChannelsOf(x), C(options, 1000));
  x = w.Softmax(x);
  w.Output(x);
  return w.Source();
}

}  // namespace

std::string EmitInceptionV3(const ZooOptions& options) {
  return EmitInception("inception_v3", options, 3, 4, 2);
}

std::string EmitInceptionV4(const ZooOptions& options) {
  return EmitInception("inception_v4", options, 4, 7, 3);
}

std::string EmitNasnetMobile(const ZooOptions& options) {
  // NASNet-mobile style cells. Separable convs are depthwise + pointwise
  // pairs; the reduction cell uses the characteristic shifted-pooling path
  // built from Slice — an operator with no Neuron lowering, so NASNet is
  // one of the models whose NeuroPilot-only bars are missing in Figure 6.
  const int size = ScaledSize(options, 224);
  OnnxWriter w("nasnet", options);
  std::string x = w.Input(3, size, size);

  const auto separable = [&](const std::string& input, std::int64_t out_channels, int kernel,
                             int stride) {
    std::string y = w.Conv(input, w.ChannelsOf(input), kernel, stride, kernel / 2,
                           /*groups=*/w.ChannelsOf(input));
    y = w.ConvBnRelu(y, out_channels, 1, 1, 0);
    return y;
  };

  const auto normal_cell = [&](const std::string& input, std::int64_t channels) {
    const std::string s0 = separable(input, channels, 5, 1);
    const std::string s1 = separable(input, channels, 3, 1);
    std::string a0 = w.Concat({s0, s1});
    a0 = w.ConvBnRelu(a0, channels, 1, 1, 0);
    std::string p = w.Pool("AveragePool", input, 3, 1, 1);
    p = w.ConvBnRelu(p, channels, 1, 1, 0);
    const std::string s2 = separable(a0, channels, 3, 1);
    return w.Concat({a0, p, s2});
  };

  const auto reduction_cell = [&](const std::string& input, std::int64_t channels) {
    const std::string s0 = separable(input, channels, 5, 2);
    const std::string s1 = separable(input, channels, 3, 2);
    const std::string mp = w.Pool("MaxPool", input, 3, 2, 1);
    std::string mp_proj = w.ConvBnRelu(mp, channels, 1, 1, 0);
    // Shifted path: drop the first spatial row/column, then pool — NASNet's
    // zero-pad/crop trick for alignment, expressed as Slice.
    const std::int64_t in_channels = w.ChannelsOf(input);
    std::string shifted =
        w.Slice(input, {0, 0, 1, 1}, {1, in_channels, 1 << 30, 1 << 30}, in_channels);
    shifted = w.Pool("AveragePool", shifted, 3, 2, 1);
    shifted = w.ConvBnRelu(shifted, channels, 1, 1, 0);
    // Align the even-pool path with the shifted path via a padded pool.
    return w.Concat({s0, s1, mp_proj, shifted});
  };

  x = w.ConvBnRelu(x, C(options, 32), 3, 2, 1);
  std::int64_t channels = C(options, 44);
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < Rep(options, 4); ++i) x = normal_cell(x, channels);
    if (stage != 2) {
      x = reduction_cell(x, channels * 2);
      channels *= 2;
    }
  }

  x = w.Relu(x);
  x = w.GlobalPool(x);
  x = w.Flatten(x);
  x = w.Dense(x, w.ChannelsOf(x), C(options, 1000));
  x = w.Softmax(x);
  w.Output(x);
  return w.Source();
}

}  // namespace zoo
}  // namespace tnp
