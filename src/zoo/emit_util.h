// Shared helpers for the zoo's model-format emitters.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "support/rng.h"
#include "zoo/zoo.h"

namespace tnp {
namespace zoo {

/// Input resolution after applying the override.
inline int ScaledSize(const ZooOptions& options, int canonical) {
  return options.image_size > 0 ? options.image_size : canonical;
}

/// Channel count after the width multiplier (minimum 4).
inline std::int64_t C(const ZooOptions& options, std::int64_t base) {
  return std::max<std::int64_t>(4, static_cast<std::int64_t>(std::lround(
                                       static_cast<double>(base) * options.width)));
}

/// Block-repeat count after the depth multiplier (minimum 1).
inline int Rep(const ZooOptions& options, int base) {
  return std::max(1, static_cast<int>(std::lround(base * options.depth)));
}

/// Deterministic per-layer seed stream derived from model name + base seed.
class SeedGen {
 public:
  SeedGen(const std::string& model, std::uint64_t base)
      : state_(support::StableHash(model) ^ (base * 0x9e3779b97f4a7c15ULL)) {}

  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 1;
  }

 private:
  std::uint64_t state_;
};

/// Conv/pool output extent with symmetric padding.
inline std::int64_t OutDim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace zoo
}  // namespace tnp
