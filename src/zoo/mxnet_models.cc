// MXNet-format emitter: ResNet-18. Not part of the paper's Table 1, but the
// abstract names MXNet among the frameworks the combined flow accepts, so
// the zoo carries one model through that import path too.
#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

std::string EmitResnet18(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  SeedGen seeds("resnet18", options.seed);
  std::ostringstream os;
  os << "MXNET_SYMBOL v1\n";
  os << "name: resnet18\n";
  os << "var data shape=1x3x" << size << "x" << size << "\n";

  int counter = 0;
  const auto fresh = [&counter](const char* prefix) {
    return std::string(prefix) + std::to_string(counter++);
  };

  // conv + BN + relu.
  const auto conv_block = [&](const std::string& input, std::int64_t filters, int kernel,
                              int stride, int pad, bool relu) {
    const std::string conv = fresh("conv");
    os << "sym " << conv << " op=Convolution in=" << input << " num_filter=" << filters
       << " kernel=" << kernel << "x" << kernel << " stride=" << stride << "x" << stride
       << " pad=" << pad << "x" << pad << " no_bias=1 seed=" << seeds.Next() << "\n";
    const std::string bn = fresh("bn");
    os << "sym " << bn << " op=BatchNorm in=" << conv << " seed=" << seeds.Next() << "\n";
    if (!relu) return bn;
    const std::string act = fresh("act");
    os << "sym " << act << " op=Activation in=" << bn << " act_type=relu\n";
    return act;
  };

  std::string x = conv_block("data", C(options, 64), 7, 2, 3, true);
  os << "sym pool0 op=Pooling in=" << x << " pool_type=max kernel=3x3 stride=2x2 pad=1x1\n";
  x = "pool0";

  // Four stages of two basic blocks each: (64, 128, 256, 512).
  const std::int64_t stage_filters[4] = {C(options, 64), C(options, 128), C(options, 256),
                                         C(options, 512)};
  std::int64_t current_channels = C(options, 64);
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t filters = stage_filters[stage];
    for (int block = 0; block < Rep(options, 2); ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string shortcut = x;
      if (stride != 1 || current_channels != filters) {
        shortcut = conv_block(x, filters, 1, stride, 0, false);  // projection
      }
      std::string y = conv_block(x, filters, 3, stride, 1, true);
      y = conv_block(y, filters, 3, 1, 1, false);
      const std::string sum = fresh("plus");
      os << "sym " << sum << " op=elemwise_add in=" << y << "," << shortcut << "\n";
      const std::string act = fresh("act");
      os << "sym " << act << " op=Activation in=" << sum << " act_type=relu\n";
      x = act;
      current_channels = filters;
    }
  }

  os << "sym gpool op=Pooling in=" << x << " global_pool=1 pool_type=avg\n";
  os << "sym flat op=Flatten in=gpool\n";
  os << "sym fc op=FullyConnected in=flat num_hidden=" << C(options, 1000)
     << " seed=" << seeds.Next() << "\n";
  os << "sym sm op=SoftmaxOutput in=fc\n";
  os << "output sm\n";
  return os.str();
}

}  // namespace zoo
}  // namespace tnp
