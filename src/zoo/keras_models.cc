// Keras-format emitters: the emotion-detection CNN (paper Listing 4) and
// Mobilenet v1 (a purely sequential architecture).
#include "zoo/emit_util.h"

namespace tnp {
namespace zoo {

std::string EmitEmotionCnn(const ZooOptions& options) {
  // The classic FER-2013 Keras model the paper's Listing 4 sketches:
  // stacked 3x3 conv/pool blocks on 48x48 grayscale, two dense layers,
  // 7-way softmax over {angry, disgusted, fearful, happy, neutral, sad,
  // surprised}.
  const int size = ScaledSize(options, 48);
  SeedGen seeds("emotion_cnn", options.seed);
  std::ostringstream os;
  os << "KERAS_MODEL v1\n";
  os << "name: emotion_cnn\n";
  os << "input: shape=1x1x" << size << "x" << size << " dtype=float32\n";
  os << "layer Conv2D filters=" << C(options, 32)
     << " kernel=3x3 activation=relu seed=" << seeds.Next() << "\n";
  os << "layer Conv2D filters=" << C(options, 64)
     << " kernel=3x3 activation=relu seed=" << seeds.Next() << "\n";
  os << "layer MaxPooling2D pool=2x2\n";
  os << "layer Dropout rate=0.25\n";
  os << "layer Conv2D filters=" << C(options, 128)
     << " kernel=3x3 activation=relu seed=" << seeds.Next() << "\n";
  os << "layer MaxPooling2D pool=2x2\n";
  os << "layer Conv2D filters=" << C(options, 128)
     << " kernel=3x3 activation=relu seed=" << seeds.Next() << "\n";
  os << "layer MaxPooling2D pool=2x2\n";
  os << "layer Dropout rate=0.25\n";
  os << "layer Flatten\n";
  os << "layer Dense units=" << C(options, 1024) << " activation=relu seed=" << seeds.Next()
     << "\n";
  os << "layer Dropout rate=0.5\n";
  os << "layer Dense units=7 activation=softmax seed=" << seeds.Next() << "\n";
  return os.str();
}

std::string EmitMobilenetV1(const ZooOptions& options) {
  const int size = ScaledSize(options, 224);
  SeedGen seeds("mobilenet_v1", options.seed);
  std::ostringstream os;
  os << "KERAS_MODEL v1\n";
  os << "name: mobilenet_v1\n";
  os << "input: shape=1x3x" << size << "x" << size << " dtype=float32\n";

  const auto conv_bn = [&](std::int64_t filters, int kernel, int stride) {
    os << "layer Conv2D filters=" << filters << " kernel=" << kernel << "x" << kernel
       << " strides=" << stride << "x" << stride << " padding=same use_bias=0 seed="
       << seeds.Next() << "\n";
    os << "layer BatchNormalization seed=" << seeds.Next() << "\n";
    os << "layer ReLU max_value=6\n";
  };
  const auto dw_separable = [&](std::int64_t filters, int stride) {
    os << "layer DepthwiseConv2D kernel=3x3 strides=" << stride << "x" << stride
       << " padding=same use_bias=0 seed=" << seeds.Next() << "\n";
    os << "layer BatchNormalization seed=" << seeds.Next() << "\n";
    os << "layer ReLU max_value=6\n";
    conv_bn(filters, 1, 1);
  };

  conv_bn(C(options, 32), 3, 2);
  dw_separable(C(options, 64), 1);
  dw_separable(C(options, 128), 2);
  dw_separable(C(options, 128), 1);
  dw_separable(C(options, 256), 2);
  dw_separable(C(options, 256), 1);
  dw_separable(C(options, 512), 2);
  for (int i = 0; i < Rep(options, 5); ++i) dw_separable(C(options, 512), 1);
  dw_separable(C(options, 1024), 2);
  dw_separable(C(options, 1024), 1);

  os << "layer GlobalAveragePooling2D\n";
  os << "layer Dropout rate=0.001\n";
  os << "layer Dense units=" << C(options, 1000) << " activation=softmax seed=" << seeds.Next()
     << "\n";
  return os.str();
}

}  // namespace zoo
}  // namespace tnp
