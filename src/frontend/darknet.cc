// Darknet-like frontend: the cfg-section format of the YOLO family
// ("relay.frontend.from_darknet" in the paper's Listing 3).
//
// Format:
//   DARKNET_CFG v1
//   [net]
//   width=416
//   height=416
//   channels=3
//
//   [convolutional]
//   batch_normalize=1
//   filters=16
//   size=3
//   stride=1
//   pad=1
//   activation=leaky
//   seed=31
//
//   [maxpool] / [upsample] / [route] / [shortcut] / [avgpool] /
//   [connected] / [softmax] / [yolo]
//
// Layers are indexed in order (the [net] section is not a layer); [route]
// and [shortcut] reference earlier layers by relative (negative) or
// absolute index, exactly like Darknet. Every [yolo] section marks its
// input as a model output head.
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDouble;
using support::ParseInt;

struct Section {
  std::string type;
  std::map<std::string, std::string> kv;
  std::string location;

  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
  std::string Str(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

ExprPtr DarknetActivation(ExprPtr x, const std::string& activation,
                          const std::string& location) {
  if (activation == "linear" || activation.empty()) return x;
  if (activation == "leaky") {
    return TypedCall("nn.leaky_relu", {std::move(x)}, Attrs().SetDouble("alpha", 0.1));
  }
  if (activation == "relu") return TypedCall("nn.relu", {std::move(x)});
  if (activation == "logistic") return TypedCall("sigmoid", {std::move(x)});
  TNP_THROW(kParseError) << location << ": unknown darknet activation '" << activation << "'";
}

}  // namespace

relay::Module FromDarknet(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("DARKNET_CFG v1");

  // Gather sections.
  std::vector<Section> sections;
  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (line->front() == '[') {
      if (line->back() != ']') {
        TNP_THROW(kParseError) << tokenizer.Location() << ": malformed section header";
      }
      Section section;
      section.type = line->substr(1, line->size() - 2);
      section.location = tokenizer.Location();
      sections.push_back(std::move(section));
      continue;
    }
    if (sections.empty()) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": key/value outside a section";
    }
    const auto [key, value] = support::ParseKeyValue(*line, tokenizer.Location());
    sections.back().kv[key] = value;
  }
  if (sections.empty() || sections.front().type != "net") {
    TNP_THROW(kParseError) << source_name << ": cfg must start with a [net] section";
  }

  const Section& net = sections.front();
  const std::int64_t width = net.Int("width", 416);
  const std::int64_t height = net.Int("height", 416);
  const std::int64_t channels = net.Int("channels", 3);
  auto input = TypedVar("data", Shape({1, channels, height, width}), DType::kFloat32);

  std::vector<ExprPtr> layers;  // output of each indexed layer
  std::vector<ExprPtr> heads;   // [yolo] outputs
  ExprPtr current = input;

  const auto layer_at = [&](std::int64_t index, const std::string& location) -> ExprPtr {
    const std::int64_t absolute =
        index < 0 ? static_cast<std::int64_t>(layers.size()) + index : index;
    if (absolute < 0 || absolute >= static_cast<std::int64_t>(layers.size())) {
      TNP_THROW(kParseError) << location << ": layer reference " << index << " out of range";
    }
    return layers[static_cast<std::size_t>(absolute)];
  };

  for (std::size_t i = 1; i < sections.size(); ++i) {
    const Section& section = sections[i];

    if (section.type == "convolutional") {
      const std::int64_t filters = section.Int("filters", 1);
      const std::int64_t size = section.Int("size", 3);
      const std::int64_t stride = section.Int("stride", 1);
      const std::int64_t pad = section.Int("pad", 0) != 0 ? size / 2 : 0;
      const auto seed = static_cast<std::uint64_t>(section.Int("seed", 0));
      const bool batch_normalize = section.Int("batch_normalize", 0) != 0;

      ExprPtr weight = WeightF32(Shape({filters, ChannelsOf(current), size, size}), seed);
      ExprPtr bias = batch_normalize ? ZeroBiasF32(filters)
                                     : WeightF32(Shape({filters}), seed + 1, 0.01f);
      current = TypedCall("nn.conv2d", {current, std::move(weight), std::move(bias)},
                          Attrs()
                              .SetInts("strides", {stride, stride})
                              .SetInts("padding", {pad, pad}));
      if (batch_normalize) {
        auto bn = BatchNormConstants(filters, seed + 2);
        current = TypedCall("nn.batch_norm", {current, bn[0], bn[1], bn[2], bn[3]},
                            Attrs().SetDouble("epsilon", 1e-5));
      }
      current = DarknetActivation(current, section.Str("activation", "linear"),
                                  section.location);
    } else if (section.type == "maxpool") {
      const std::int64_t size = section.Int("size", 2);
      const std::int64_t stride = section.Int("stride", size);
      // Darknet pads odd-sized/unit-stride maxpools to preserve extent.
      const std::int64_t pad = stride == 1 ? size / 2 : 0;
      current = TypedCall("nn.max_pool2d", {current},
                          Attrs()
                              .SetInts("pool_size", {size, size})
                              .SetInts("strides", {stride, stride})
                              .SetInts("padding", {pad, pad}));
    } else if (section.type == "avgpool") {
      current = TypedCall("nn.global_avg_pool2d", {current});
      current = TypedCall("nn.batch_flatten", {current});
    } else if (section.type == "upsample") {
      const std::int64_t stride = section.Int("stride", 2);
      current = TypedCall("nn.upsampling", {current},
                          Attrs().SetInt("scale_h", stride).SetInt("scale_w", stride));
    } else if (section.type == "route") {
      const auto refs = support::Split(section.Str("layers", ""), ',');
      if (refs.empty()) {
        TNP_THROW(kParseError) << section.location << ": route requires layers=";
      }
      std::vector<ExprPtr> pieces;
      for (const auto& ref : refs) {
        pieces.push_back(layer_at(ParseInt(ref, section.location), section.location));
      }
      current = pieces.size() == 1
                    ? pieces.front()
                    : TypedCall("concatenate", {TypedTuple(std::move(pieces))},
                                Attrs().SetInt("axis", 1));
    } else if (section.type == "shortcut") {
      const ExprPtr from = layer_at(section.Int("from", -2), section.location);
      current = TypedCall("add", {current, from});
      current = DarknetActivation(current, section.Str("activation", "linear"),
                                  section.location);
    } else if (section.type == "connected") {
      if (ShapeOf(current).rank() != 2) {
        current = TypedCall("nn.batch_flatten", {current});
      }
      const std::int64_t output = section.Int("output", 1);
      const auto seed = static_cast<std::uint64_t>(section.Int("seed", 0));
      ExprPtr weight = WeightF32(Shape({output, ShapeOf(current)[1]}), seed);
      ExprPtr bias = WeightF32(Shape({output}), seed + 1, 0.01f);
      current = TypedCall("nn.dense", {current, std::move(weight), std::move(bias)});
      current = DarknetActivation(current, section.Str("activation", "linear"),
                                  section.location);
    } else if (section.type == "softmax") {
      current = TypedCall("nn.softmax", {current}, Attrs().SetInt("axis", -1));
    } else if (section.type == "yolo") {
      heads.push_back(current);
    } else {
      TNP_THROW(kParseError) << section.location << ": unknown section [" << section.type
                             << "]";
    }
    layers.push_back(current);
  }

  ExprPtr body;
  if (heads.empty()) {
    body = current;
  } else if (heads.size() == 1) {
    body = heads.front();
  } else {
    body = TypedTuple(std::move(heads));
  }
  return FinishModule({input}, std::move(body));
}

}  // namespace frontend
}  // namespace tnp
