// MXNet-like frontend: a symbol-graph node list in the style of MXNet's
// exported symbol.json (flattened to one line per node). The paper's
// abstract names MXNet among the frameworks the combined flow accepts.
//
// Format:
//   MXNET_SYMBOL v1
//   name: resnet18
//   var data shape=1x3x224x224
//   sym conv0 op=Convolution in=data num_filter=64 kernel=7x7 stride=2x2 pad=3x3 seed=1
//   sym bn0 op=BatchNorm in=conv0 eps=1e-5 seed=2
//   sym act0 op=Activation in=bn0 act_type=relu
//   sym pool0 op=Pooling in=act0 pool_type=max kernel=3x3 stride=2x2 pad=1x1
//   sym plus0 op=elemwise_add in=a,b
//   sym fc op=FullyConnected in=flat num_hidden=1000 seed=9
//   sym out op=SoftmaxOutput in=fc
//   output out
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDims;
using support::ParseDouble;
using support::ParseInt;

struct SymLine {
  std::string name;
  std::string op;
  std::vector<std::string> in;
  std::map<std::string, std::string> kv;
  std::string location;

  std::vector<std::int64_t> Dims2(const std::string& key,
                                  std::vector<std::int64_t> fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDims(it->second, location);
  }
  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
  std::int64_t RequireInt(const std::string& key) const {
    if (kv.count(key) == 0) {
      TNP_THROW(kParseError) << location << ": " << op << " requires " << key << "=";
    }
    return ParseInt(kv.at(key), location);
  }
  double Dbl(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDouble(it->second, location);
  }
  std::string Str(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  std::uint64_t Seed() const { return static_cast<std::uint64_t>(Int("seed", 0)); }
};

}  // namespace

relay::Module FromMxnet(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("MXNET_SYMBOL v1");

  std::vector<relay::VarPtr> params;
  std::map<std::string, ExprPtr> env;
  std::vector<std::string> output_names;

  const auto lookup = [&](const std::string& name, const std::string& location) -> ExprPtr {
    const auto it = env.find(name);
    if (it == env.end()) {
      TNP_THROW(kParseError) << location << ": undefined symbol '" << name << "'";
    }
    return it->second;
  };

  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (support::StartsWith(*line, "name:")) continue;
    const auto tokens = support::SplitWhitespace(*line);
    const std::string& head = tokens.at(0);

    if (head == "var") {
      Shape shape;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = support::ParseKeyValue(tokens[i], tokenizer.Location());
        if (key == "shape") shape = Shape(ParseDims(value, tokenizer.Location()));
      }
      auto var = TypedVar(tokens.at(1), shape, DType::kFloat32);
      params.push_back(var);
      env[tokens[1]] = var;
      continue;
    }
    if (head == "output") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        for (const auto& name : support::Split(tokens[i], ',')) {
          if (!name.empty()) output_names.push_back(name);
        }
      }
      continue;
    }
    if (head != "sym") {
      TNP_THROW(kParseError) << tokenizer.Location() << ": unexpected line '" << *line << "'";
    }

    SymLine sym;
    sym.name = tokens.at(1);
    sym.location = tokenizer.Location();
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = support::ParseKeyValue(tokens[i], sym.location);
      if (key == "op") sym.op = value;
      else if (key == "in") sym.in = support::Split(value, ',');
      else sym.kv[key] = value;
    }
    const auto in = [&](std::size_t i) -> ExprPtr {
      if (i >= sym.in.size()) {
        TNP_THROW(kParseError) << sym.location << ": " << sym.op << " requires " << (i + 1)
                               << " inputs";
      }
      return lookup(sym.in[i], sym.location);
    };

    ExprPtr expr;
    if (sym.op == "Convolution") {
      const std::int64_t num_filter = sym.RequireInt("num_filter");
      const auto kernel = sym.Dims2("kernel", {3, 3});
      const std::int64_t groups = sym.Int("num_group", 1);
      const std::int64_t in_channels = ChannelsOf(in(0));
      const std::uint64_t seed = sym.Seed();
      ExprPtr weight =
          WeightF32(Shape({num_filter, in_channels / groups, kernel[0], kernel[1]}), seed);
      ExprPtr bias = sym.Int("no_bias", 0) != 0
                         ? ZeroBiasF32(num_filter)
                         : WeightF32(Shape({num_filter}), seed + 1, 0.01f);
      expr = TypedCall("nn.conv2d", {in(0), std::move(weight), std::move(bias)},
                       Attrs()
                           .SetInts("strides", sym.Dims2("stride", {1, 1}))
                           .SetInts("padding", sym.Dims2("pad", {0, 0}))
                           .SetInts("dilation", sym.Dims2("dilate", {1, 1}))
                           .SetInt("groups", groups));
    } else if (sym.op == "BatchNorm") {
      auto bn = BatchNormConstants(ChannelsOf(in(0)), sym.Seed());
      expr = TypedCall("nn.batch_norm", {in(0), bn[0], bn[1], bn[2], bn[3]},
                       Attrs().SetDouble("epsilon", sym.Dbl("eps", 1e-5)));
    } else if (sym.op == "Activation") {
      const std::string act = sym.Str("act_type", "relu");
      if (act == "relu") expr = TypedCall("nn.relu", {in(0)});
      else if (act == "sigmoid") expr = TypedCall("sigmoid", {in(0)});
      else if (act == "tanh") expr = TypedCall("tanh", {in(0)});
      else {
        TNP_THROW(kParseError) << sym.location << ": unknown act_type '" << act << "'";
      }
    } else if (sym.op == "LeakyReLU") {
      expr = TypedCall("nn.leaky_relu", {in(0)},
                       Attrs().SetDouble("alpha", sym.Dbl("slope", 0.25)));
    } else if (sym.op == "Pooling") {
      const std::string pool_type = sym.Str("pool_type", "max");
      if (sym.Int("global_pool", 0) != 0) {
        expr = TypedCall("nn.global_avg_pool2d", {in(0)});
      } else {
        const auto kernel = sym.Dims2("kernel", {2, 2});
        expr = TypedCall(pool_type == "max" ? "nn.max_pool2d" : "nn.avg_pool2d", {in(0)},
                         Attrs()
                             .SetInts("pool_size", kernel)
                             .SetInts("strides", sym.Dims2("stride", kernel))
                             .SetInts("padding", sym.Dims2("pad", {0, 0})));
      }
    } else if (sym.op == "FullyConnected") {
      ExprPtr data = in(0);
      if (ShapeOf(data).rank() != 2) data = TypedCall("nn.batch_flatten", {data});
      const std::int64_t num_hidden = sym.RequireInt("num_hidden");
      const std::uint64_t seed = sym.Seed();
      ExprPtr weight = WeightF32(Shape({num_hidden, ShapeOf(data)[1]}), seed);
      ExprPtr bias = WeightF32(Shape({num_hidden}), seed + 1, 0.01f);
      expr = TypedCall("nn.dense", {data, std::move(weight), std::move(bias)});
    } else if (sym.op == "Flatten") {
      expr = TypedCall("nn.batch_flatten", {in(0)});
    } else if (sym.op == "elemwise_add" || sym.op == "broadcast_add") {
      expr = TypedCall("add", {in(0), in(1)});
    } else if (sym.op == "elemwise_mul" || sym.op == "broadcast_mul") {
      expr = TypedCall("multiply", {in(0), in(1)});
    } else if (sym.op == "Concat") {
      std::vector<ExprPtr> fields;
      for (const auto& name : sym.in) fields.push_back(lookup(name, sym.location));
      expr = TypedCall("concatenate", {TypedTuple(std::move(fields))},
                       Attrs().SetInt("axis", sym.Int("dim", 1)));
    } else if (sym.op == "SoftmaxOutput" || sym.op == "softmax") {
      expr = TypedCall("nn.softmax", {in(0)}, Attrs().SetInt("axis", -1));
    } else if (sym.op == "Dropout") {
      expr = TypedCall("nn.dropout", {in(0)}, Attrs().SetDouble("rate", sym.Dbl("p", 0.5)));
    } else {
      TNP_THROW(kParseError) << sym.location << ": unsupported MXNet op '" << sym.op << "'";
    }
    env[sym.name] = std::move(expr);
  }

  if (params.empty() || output_names.empty()) {
    TNP_THROW(kParseError) << source_name << ": symbol graph needs a var and an output line";
  }
  ExprPtr body;
  if (output_names.size() == 1) {
    body = lookup(output_names[0], source_name);
  } else {
    std::vector<ExprPtr> fields;
    for (const auto& name : output_names) fields.push_back(lookup(name, source_name));
    body = TypedTuple(std::move(fields));
  }
  return FinishModule(std::move(params), std::move(body));
}

}  // namespace frontend
}  // namespace tnp
