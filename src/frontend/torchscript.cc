// TorchScript-like frontend: a traced graph of aten:: calls, the shape of
// what `torch.jit.trace` + `relay.frontend.from_pytorch` consume in the
// paper's Listing 2.
//
// Format:
//   TORCHSCRIPT_GRAPH v1
//   name: deepixbis
//   input %x : Float(1,3,224,224)
//   %1 = aten::conv2d(%x, weight<seed=7,shape=64x3x7x7>, bias<seed=8,shape=64>,
//                     stride=[2,2], padding=[3,3], dilation=[1,1], groups=1)
//   %2 = aten::relu(%1)
//   %3 = aten::cat([%1, %2], dim=1)
//   return %3
//
// Inline tensors: weight<seed=..,shape=..>, bias<..>, and the generic
// const<seed=..,shape=..,fill=..,stddev=..,min=..>.
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDims;
using support::ParseDouble;
using support::ParseInt;
using support::Trim;

/// One parsed argument of an aten:: call.
struct Arg {
  enum class Kind { kRef, kRefList, kInlineConst, kKeyValue };
  Kind kind = Kind::kRef;
  std::string ref;                    // kRef
  std::vector<std::string> refs;      // kRefList
  ExprPtr inline_const;               // kInlineConst
  std::string key, value;             // kKeyValue
};

/// Split "a, b, [c, d], e=[1,2]" into top-level comma-separated pieces.
std::vector<std::string> SplitTopLevel(std::string_view text) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      const auto piece = Trim(text.substr(start, i - start));
      if (!piece.empty()) parts.emplace_back(piece);
      start = i + 1;
      continue;
    }
    if (text[i] == '[' || text[i] == '(' || text[i] == '<') ++depth;
    if (text[i] == ']' || text[i] == ')' || text[i] == '>') --depth;
  }
  return parts;
}

ExprPtr ParseInlineConst(std::string_view text, const std::string& location) {
  const std::size_t open = text.find('<');
  const std::size_t close = text.rfind('>');
  if (open == std::string_view::npos || close == std::string_view::npos || close <= open) {
    TNP_THROW(kParseError) << location << ": malformed inline tensor '" << std::string(text)
                           << "'";
  }
  const std::string role(Trim(text.substr(0, open)));
  Shape shape;
  std::uint64_t seed = 0;
  double fill = 0.0;
  double stddev = role == "bias" ? 0.01 : 0.05;
  double min_value = -1e30;
  for (const auto& part : SplitTopLevel(text.substr(open + 1, close - open - 1))) {
    const auto [key, value] = support::ParseKeyValue(part, location);
    if (key == "seed") {
      seed = static_cast<std::uint64_t>(ParseInt(value, location));
    } else if (key == "shape") {
      shape = Shape(ParseDims(value, location));
    } else if (key == "fill") {
      fill = ParseDouble(value, location);
    } else if (key == "stddev") {
      stddev = ParseDouble(value, location);
    } else if (key == "min") {
      min_value = ParseDouble(value, location);
    } else {
      TNP_THROW(kParseError) << location << ": unknown inline tensor field '" << key << "'";
    }
  }
  if (shape.rank() == 0) {
    TNP_THROW(kParseError) << location << ": inline tensor requires shape=";
  }
  if (fill != 0.0 || min_value > -1e29) {
    return FilledConstant(shape, seed, static_cast<float>(fill), static_cast<float>(stddev),
                          static_cast<float>(min_value));
  }
  return WeightF32(shape, seed, static_cast<float>(stddev));
}

Arg ParseArg(std::string_view text, const std::string& location) {
  Arg arg;
  text = Trim(text);
  if (text.empty()) {
    TNP_THROW(kParseError) << location << ": empty argument";
  }
  if (text.front() == '%') {
    arg.kind = Arg::Kind::kRef;
    arg.ref = std::string(text.substr(1));
    return arg;
  }
  if (text.front() == '[') {
    if (text.back() != ']') {
      TNP_THROW(kParseError) << location << ": unterminated list argument";
    }
    arg.kind = Arg::Kind::kRefList;
    for (const auto& piece : SplitTopLevel(text.substr(1, text.size() - 2))) {
      if (piece.empty() || piece.front() != '%') {
        TNP_THROW(kParseError) << location << ": list arguments must be %refs";
      }
      arg.refs.push_back(piece.substr(1));
    }
    return arg;
  }
  const std::size_t angle = text.find('<');
  const std::size_t eq = text.find('=');
  if (angle != std::string_view::npos && (eq == std::string_view::npos || angle < eq)) {
    arg.kind = Arg::Kind::kInlineConst;
    arg.inline_const = ParseInlineConst(text, location);
    return arg;
  }
  if (eq == std::string_view::npos) {
    TNP_THROW(kParseError) << location << ": cannot parse argument '" << std::string(text)
                           << "'";
  }
  arg.kind = Arg::Kind::kKeyValue;
  arg.key = std::string(Trim(text.substr(0, eq)));
  arg.value = std::string(Trim(text.substr(eq + 1)));
  return arg;
}

/// "[2,2]" or "2" -> int vector.
std::vector<std::int64_t> IntsOf(const std::string& value, const std::string& location) {
  std::string_view text = Trim(value);
  if (!text.empty() && text.front() == '[') text = text.substr(1, text.size() - 2);
  return ParseDims(text, location);
}

struct CallCtx {
  std::vector<ExprPtr> positional;
  std::map<std::string, std::string> kv;
  std::string location;

  const ExprPtr& Pos(std::size_t index, const char* op) const {
    if (index >= positional.size()) {
      TNP_THROW(kParseError) << location << ": " << op << " expects at least " << (index + 1)
                             << " tensor arguments";
    }
    return positional[index];
  }
  std::vector<std::int64_t> Ints(const std::string& key,
                                 std::vector<std::int64_t> fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : IntsOf(it->second, location);
  }
  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
  double Dbl(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDouble(it->second, location);
  }
};

ExprPtr LowerAtenCall(const std::string& op, CallCtx& ctx,
                      const std::vector<std::vector<ExprPtr>>& list_args) {
  if (op == "aten::conv2d") {
    ExprPtr bias = ctx.positional.size() > 2 ? ctx.Pos(2, "conv2d")
                                             : ZeroBiasF32(ShapeOf(ctx.Pos(1, "conv2d"))[0]);
    return TypedCall("nn.conv2d", {ctx.Pos(0, "conv2d"), ctx.Pos(1, "conv2d"), bias},
                     Attrs()
                         .SetInts("strides", ctx.Ints("stride", {1, 1}))
                         .SetInts("padding", ctx.Ints("padding", {0, 0}))
                         .SetInts("dilation", ctx.Ints("dilation", {1, 1}))
                         .SetInt("groups", ctx.Int("groups", 1)));
  }
  if (op == "aten::linear") {
    ExprPtr bias = ctx.positional.size() > 2 ? ctx.Pos(2, "linear")
                                             : ZeroBiasF32(ShapeOf(ctx.Pos(1, "linear"))[0]);
    return TypedCall("nn.dense", {ctx.Pos(0, "linear"), ctx.Pos(1, "linear"), bias});
  }
  if (op == "aten::relu") return TypedCall("nn.relu", {ctx.Pos(0, "relu")});
  if (op == "aten::leaky_relu") {
    return TypedCall("nn.leaky_relu", {ctx.Pos(0, "leaky_relu")},
                     Attrs().SetDouble("alpha", ctx.Dbl("negative_slope", 0.01)));
  }
  if (op == "aten::sigmoid") return TypedCall("sigmoid", {ctx.Pos(0, "sigmoid")});
  if (op == "aten::tanh") return TypedCall("tanh", {ctx.Pos(0, "tanh")});
  if (op == "aten::hardtanh") {
    return TypedCall("clip", {ctx.Pos(0, "hardtanh")},
                     Attrs()
                         .SetDouble("a_min", ctx.Dbl("min_val", -1.0))
                         .SetDouble("a_max", ctx.Dbl("max_val", 1.0)));
  }
  if (op == "aten::max_pool2d" || op == "aten::avg_pool2d") {
    const auto kernel = ctx.Ints("kernel", {2, 2});
    return TypedCall(op == "aten::max_pool2d" ? "nn.max_pool2d" : "nn.avg_pool2d",
                     {ctx.Pos(0, "pool2d")},
                     Attrs()
                         .SetInts("pool_size", kernel)
                         .SetInts("strides", ctx.Ints("stride", kernel))
                         .SetInts("padding", ctx.Ints("padding", {0, 0})));
  }
  if (op == "aten::adaptive_avg_pool2d") {
    const auto out = ctx.Ints("output_size", {1, 1});
    if (out != std::vector<std::int64_t>{1, 1}) {
      TNP_THROW(kParseError) << ctx.location
                             << ": adaptive_avg_pool2d only supports output_size=[1,1]";
    }
    return TypedCall("nn.global_avg_pool2d", {ctx.Pos(0, "adaptive_avg_pool2d")});
  }
  if (op == "aten::cat") {
    if (list_args.empty()) {
      TNP_THROW(kParseError) << ctx.location << ": aten::cat requires a [..] list argument";
    }
    return TypedCall("concatenate", {TypedTuple(list_args.front())},
                     Attrs().SetInt("axis", ctx.Int("dim", 1)));
  }
  if (op == "aten::add") {
    return TypedCall("add", {ctx.Pos(0, "add"), ctx.Pos(1, "add")});
  }
  if (op == "aten::mul") {
    return TypedCall("multiply", {ctx.Pos(0, "mul"), ctx.Pos(1, "mul")});
  }
  if (op == "aten::flatten") {
    return TypedCall("nn.batch_flatten", {ctx.Pos(0, "flatten")});
  }
  if (op == "aten::softmax") {
    return TypedCall("nn.softmax", {ctx.Pos(0, "softmax")},
                     Attrs().SetInt("axis", ctx.Int("dim", -1)));
  }
  if (op == "aten::dropout") {
    return TypedCall("nn.dropout", {ctx.Pos(0, "dropout")},
                     Attrs().SetDouble("rate", ctx.Dbl("p", 0.5)));
  }
  if (op == "aten::batch_norm") {
    return TypedCall("nn.batch_norm",
                     {ctx.Pos(0, "batch_norm"), ctx.Pos(1, "batch_norm"),
                      ctx.Pos(2, "batch_norm"), ctx.Pos(3, "batch_norm"),
                      ctx.Pos(4, "batch_norm")},
                     Attrs().SetDouble("epsilon", ctx.Dbl("eps", 1e-5)));
  }
  if (op == "aten::upsample_nearest2d") {
    const std::int64_t scale = ctx.Int("scale_factor", 2);
    return TypedCall("nn.upsampling", {ctx.Pos(0, "upsample")},
                     Attrs().SetInt("scale_h", scale).SetInt("scale_w", scale));
  }
  if (op == "aten::mean") {
    return TypedCall("mean", {ctx.Pos(0, "mean")},
                     Attrs()
                         .SetInts("axis", ctx.Ints("dim", {2, 3}))
                         .SetInt("keepdims", ctx.Int("keepdim", 0)));
  }
  if (op == "aten::slice") {
    // Per-axis slice: axis/start/end/step on an otherwise full-range slice.
    const ExprPtr& data = ctx.Pos(0, "slice");
    const Shape& shape = ShapeOf(data);
    std::vector<std::int64_t> begin(static_cast<std::size_t>(shape.rank()), 0);
    std::vector<std::int64_t> end = shape.dims();
    std::vector<std::int64_t> strides(static_cast<std::size_t>(shape.rank()), 1);
    const std::int64_t axis = ctx.Int("dim", 0);
    if (axis < 0 || axis >= shape.rank()) {
      TNP_THROW(kParseError) << ctx.location << ": slice dim out of range";
    }
    begin[static_cast<std::size_t>(axis)] = ctx.Int("start", 0);
    end[static_cast<std::size_t>(axis)] = ctx.Int("end", shape[static_cast<int>(axis)]);
    strides[static_cast<std::size_t>(axis)] = ctx.Int("step", 1);
    return TypedCall("strided_slice", {data},
                     Attrs().SetInts("begin", begin).SetInts("end", end).SetInts("strides",
                                                                                 strides));
  }
  TNP_THROW(kParseError) << ctx.location << ": unsupported TorchScript op '" << op << "'";
}

}  // namespace

relay::Module FromTorchScript(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("TORCHSCRIPT_GRAPH v1");

  std::vector<relay::VarPtr> params;
  std::map<std::string, ExprPtr> env;
  ExprPtr result;

  const auto lookup = [&](const std::string& ref) -> const ExprPtr& {
    const auto it = env.find(ref);
    if (it == env.end()) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": undefined value %" << ref;
    }
    return it->second;
  };

  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (support::StartsWith(*line, "name:")) continue;

    if (support::StartsWith(*line, "input ")) {
      // input %x : Float(1,3,224,224)
      const auto colon = line->find(':');
      if (colon == std::string::npos) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": malformed input line";
      }
      std::string name(Trim(line->substr(6, colon - 6)));
      if (name.empty() || name.front() != '%') {
        TNP_THROW(kParseError) << tokenizer.Location() << ": input name must be a %ref";
      }
      name = name.substr(1);
      const std::string type_text(Trim(line->substr(colon + 1)));
      const auto open = type_text.find('(');
      const auto close = type_text.rfind(')');
      if (!support::StartsWith(type_text, "Float") || open == std::string::npos ||
          close == std::string::npos) {
        TNP_THROW(kParseError) << tokenizer.Location()
                               << ": only Float(...) inputs are supported";
      }
      const Shape shape(ParseDims(type_text.substr(open + 1, close - open - 1),
                                  tokenizer.Location()));
      auto var = TypedVar(name, shape, DType::kFloat32);
      params.push_back(var);
      env[name] = var;
      continue;
    }

    if (support::StartsWith(*line, "return")) {
      std::string rest(Trim(line->substr(6)));
      if (!rest.empty() && rest.front() == '(') {
        // Tuple return.
        std::vector<ExprPtr> fields;
        for (const auto& piece : SplitTopLevel(
                 std::string_view(rest).substr(1, rest.size() - 2))) {
          if (piece.empty() || piece.front() != '%') {
            TNP_THROW(kParseError) << tokenizer.Location() << ": return refs must be %refs";
          }
          fields.push_back(lookup(piece.substr(1)));
        }
        result = TypedTuple(std::move(fields));
      } else {
        if (rest.empty() || rest.front() != '%') {
          TNP_THROW(kParseError) << tokenizer.Location() << ": return requires a %ref";
        }
        result = lookup(rest.substr(1));
      }
      continue;
    }

    // %id = aten::op(args...)
    const auto eq = line->find('=');
    const auto open = line->find('(', eq == std::string::npos ? 0 : eq);
    const auto close = line->rfind(')');
    if (eq == std::string::npos || open == std::string::npos || close == std::string::npos ||
        line->front() != '%') {
      TNP_THROW(kParseError) << tokenizer.Location() << ": cannot parse statement '" << *line
                             << "'";
    }
    const std::string target(Trim(line->substr(1, eq - 1)));
    const std::string op(Trim(line->substr(eq + 1, open - eq - 1)));

    CallCtx ctx;
    ctx.location = tokenizer.Location();
    std::vector<std::vector<ExprPtr>> list_args;
    for (const auto& piece : SplitTopLevel(
             std::string_view(*line).substr(open + 1, close - open - 1))) {
      Arg arg = ParseArg(piece, ctx.location);
      switch (arg.kind) {
        case Arg::Kind::kRef:
          ctx.positional.push_back(lookup(arg.ref));
          break;
        case Arg::Kind::kRefList: {
          std::vector<ExprPtr> exprs;
          for (const auto& ref : arg.refs) exprs.push_back(lookup(ref));
          list_args.push_back(std::move(exprs));
          break;
        }
        case Arg::Kind::kInlineConst:
          ctx.positional.push_back(arg.inline_const);
          break;
        case Arg::Kind::kKeyValue:
          ctx.kv[arg.key] = arg.value;
          break;
      }
    }
    env[target] = LowerAtenCall(op, ctx, list_args);
  }

  if (params.empty() || result == nullptr) {
    TNP_THROW(kParseError) << source_name << ": graph needs at least one input and a return";
  }
  return FinishModule(std::move(params), std::move(result));
}

}  // namespace frontend
}  // namespace tnp
