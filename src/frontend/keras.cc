// Keras-like frontend: a Sequential model as a layer list.
//
// Format:
//   KERAS_MODEL v1
//   name: emotion_cnn
//   input: shape=1x1x48x48 dtype=float32
//   layer Conv2D filters=32 kernel=3x3 strides=1x1 padding=valid activation=relu seed=101
//   layer MaxPooling2D pool=2x2 strides=2x2
//   layer Dropout rate=0.25
//   layer Flatten
//   layer Dense units=1024 activation=relu seed=102
//   layer Dense units=7 activation=softmax seed=103
//
// Activations fold into the layer line like Keras' `activation=` argument.
// `padding=same` pads symmetrically by (kernel-1)/2 (odd kernels).
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDims;
using support::ParseDouble;
using support::ParseInt;

struct LayerSpec {
  std::string type;
  std::map<std::string, std::string> kv;
  std::string location;

  bool Has(const std::string& key) const { return kv.count(key) != 0; }
  std::string Str(const std::string& key, const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
  std::int64_t RequireInt(const std::string& key) const {
    if (!Has(key)) {
      TNP_THROW(kParseError) << location << ": layer " << type << " requires " << key << "=";
    }
    return ParseInt(kv.at(key), location);
  }
  double Dbl(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDouble(it->second, location);
  }
  std::vector<std::int64_t> Dims(const std::string& key,
                                 std::vector<std::int64_t> fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDims(it->second, location);
  }
  std::uint64_t Seed() const {
    return static_cast<std::uint64_t>(Int("seed", 0));
  }
};

ExprPtr ApplyActivation(ExprPtr x, const std::string& activation, const std::string& location) {
  if (activation.empty() || activation == "none" || activation == "linear") return x;
  if (activation == "relu") return TypedCall("nn.relu", {std::move(x)});
  if (activation == "relu6") {
    return TypedCall("clip", {std::move(x)},
                     Attrs().SetDouble("a_min", 0.0).SetDouble("a_max", 6.0));
  }
  if (activation == "sigmoid") return TypedCall("sigmoid", {std::move(x)});
  if (activation == "tanh") return TypedCall("tanh", {std::move(x)});
  if (activation == "softmax") {
    return TypedCall("nn.softmax", {std::move(x)}, Attrs().SetInt("axis", -1));
  }
  TNP_THROW(kParseError) << location << ": unknown activation '" << activation << "'";
}

std::vector<std::int64_t> SamePadding(const std::vector<std::int64_t>& kernel,
                                      const std::string& location) {
  if (kernel.size() != 2 || kernel[0] % 2 == 0 || kernel[1] % 2 == 0) {
    TNP_THROW(kParseError) << location << ": padding=same requires odd 2-D kernels";
  }
  return {(kernel[0] - 1) / 2, (kernel[1] - 1) / 2};
}

ExprPtr BuildConv(const LayerSpec& layer, ExprPtr x, bool depthwise) {
  const auto kernel = layer.Dims("kernel", {3, 3});
  const auto strides = layer.Dims("strides", {1, 1});
  const std::string padding_mode = layer.Str("padding", "valid");
  const std::vector<std::int64_t> padding =
      padding_mode == "same" ? SamePadding(kernel, layer.location)
                             : std::vector<std::int64_t>{0, 0};

  const std::int64_t in_channels = ChannelsOf(x);
  std::int64_t filters;
  std::int64_t groups;
  Shape weight_shape;
  if (depthwise) {
    const std::int64_t multiplier = layer.Int("depth_multiplier", 1);
    filters = in_channels * multiplier;
    groups = in_channels;
    weight_shape = Shape({filters, 1, kernel[0], kernel[1]});
  } else {
    filters = layer.RequireInt("filters");
    groups = 1;
    weight_shape = Shape({filters, in_channels, kernel[0], kernel[1]});
  }

  const std::uint64_t seed = layer.Seed();
  ExprPtr weight = WeightF32(weight_shape, seed);
  ExprPtr bias = layer.Int("use_bias", 1) != 0 ? WeightF32(Shape({filters}), seed + 1, 0.01f)
                                               : ZeroBiasF32(filters);
  ExprPtr conv = TypedCall("nn.conv2d", {std::move(x), std::move(weight), std::move(bias)},
                           Attrs()
                               .SetInts("strides", strides)
                               .SetInts("padding", padding)
                               .SetInt("groups", groups));
  return ApplyActivation(std::move(conv), layer.Str("activation"), layer.location);
}

ExprPtr BuildPool(const LayerSpec& layer, ExprPtr x, const char* op) {
  const auto pool = layer.Dims("pool", {2, 2});
  const auto strides = layer.Dims("strides", pool);
  return TypedCall(op, {std::move(x)},
                   Attrs().SetInts("pool_size", pool).SetInts("strides", strides).SetInts(
                       "padding", {0, 0}));
}

}  // namespace

relay::Module FromKeras(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("KERAS_MODEL v1");

  relay::VarPtr input;
  ExprPtr x;

  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (support::StartsWith(*line, "name:")) continue;

    if (support::StartsWith(*line, "input:")) {
      Shape shape;
      DType dtype = DType::kFloat32;
      for (const auto& token : support::SplitWhitespace(line->substr(6))) {
        const auto [key, value] = support::ParseKeyValue(token, tokenizer.Location());
        if (key == "shape") {
          shape = Shape(ParseDims(value, tokenizer.Location()));
        } else if (key == "dtype") {
          dtype = DTypeFromName(value);
        }
      }
      if (shape.rank() == 0) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": input requires shape=";
      }
      input = TypedVar("input", shape, dtype);
      x = input;
      continue;
    }

    if (!support::StartsWith(*line, "layer ")) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": expected 'layer ...', got '"
                             << *line << "'";
    }
    if (x == nullptr) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": layer before input declaration";
    }

    const auto tokens = support::SplitWhitespace(line->substr(6));
    if (tokens.empty()) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": empty layer line";
    }
    LayerSpec layer;
    layer.type = tokens[0];
    layer.location = tokenizer.Location();
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto [key, value] = support::ParseKeyValue(tokens[i], layer.location);
      layer.kv[key] = value;
    }

    if (layer.type == "Conv2D") {
      x = BuildConv(layer, std::move(x), /*depthwise=*/false);
    } else if (layer.type == "DepthwiseConv2D") {
      x = BuildConv(layer, std::move(x), /*depthwise=*/true);
    } else if (layer.type == "MaxPooling2D") {
      x = BuildPool(layer, std::move(x), "nn.max_pool2d");
    } else if (layer.type == "AveragePooling2D") {
      x = BuildPool(layer, std::move(x), "nn.avg_pool2d");
    } else if (layer.type == "GlobalAveragePooling2D") {
      x = TypedCall("nn.global_avg_pool2d", {std::move(x)});
      x = TypedCall("nn.batch_flatten", {std::move(x)});
    } else if (layer.type == "Dense") {
      if (ShapeOf(x).rank() != 2) {
        TNP_THROW(kParseError) << layer.location << ": Dense requires flattened input "
                               << "(insert a Flatten layer)";
      }
      const std::int64_t units = layer.RequireInt("units");
      const std::int64_t in_features = ShapeOf(x)[1];
      const std::uint64_t seed = layer.Seed();
      ExprPtr weight = WeightF32(Shape({units, in_features}), seed);
      ExprPtr bias = WeightF32(Shape({units}), seed + 1, 0.01f);
      x = TypedCall("nn.dense", {std::move(x), std::move(weight), std::move(bias)});
      x = ApplyActivation(std::move(x), layer.Str("activation"), layer.location);
    } else if (layer.type == "Dropout") {
      x = TypedCall("nn.dropout", {std::move(x)},
                    Attrs().SetDouble("rate", layer.Dbl("rate", 0.5)));
    } else if (layer.type == "Flatten") {
      x = TypedCall("nn.batch_flatten", {std::move(x)});
    } else if (layer.type == "BatchNormalization") {
      auto bn = BatchNormConstants(ChannelsOf(x), layer.Seed());
      x = TypedCall("nn.batch_norm", {std::move(x), bn[0], bn[1], bn[2], bn[3]},
                    Attrs().SetDouble("epsilon", layer.Dbl("epsilon", 1e-3)));
    } else if (layer.type == "Activation") {
      x = ApplyActivation(std::move(x), layer.Str("activation", "relu"), layer.location);
    } else if (layer.type == "ZeroPadding2D") {
      const auto pad = layer.Dims("pad", {1, 1});
      x = TypedCall("nn.pad", {std::move(x)},
                    Attrs()
                        .SetInts("pad_before", {0, 0, pad[0], pad[1]})
                        .SetInts("pad_after", {0, 0, pad[0], pad[1]}));
    } else if (layer.type == "ReLU") {
      if (layer.Has("max_value")) {
        x = TypedCall("clip", {std::move(x)},
                      Attrs()
                          .SetDouble("a_min", 0.0)
                          .SetDouble("a_max", layer.Dbl("max_value", 6.0)));
      } else {
        x = TypedCall("nn.relu", {std::move(x)});
      }
    } else {
      TNP_THROW(kParseError) << layer.location << ": unknown Keras layer '" << layer.type
                             << "'";
    }
  }

  if (input == nullptr || x == nullptr) {
    TNP_THROW(kParseError) << source_name << ": model has no input declaration";
  }
  return FinishModule({input}, x);
}

}  // namespace frontend
}  // namespace tnp
