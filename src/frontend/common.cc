#include "frontend/common.h"

#include "relay/pass.h"

namespace tnp {
namespace frontend {

relay::ExprPtr TypedCall(const std::string& op_name, std::vector<relay::ExprPtr> args,
                         relay::Attrs attrs) {
  std::vector<relay::Type> arg_types;
  arg_types.reserve(args.size());
  for (const auto& arg : args) {
    TNP_CHECK(arg->checked_type().defined()) << "frontend: untyped argument to " << op_name;
    arg_types.push_back(arg->checked_type());
  }
  auto call = relay::MakeCall(op_name, std::move(args), std::move(attrs));
  call->set_checked_type(relay::InferCallType(*call, arg_types));
  return call;
}

relay::ExprPtr TypedTuple(std::vector<relay::ExprPtr> fields) {
  std::vector<relay::Type> field_types;
  field_types.reserve(fields.size());
  for (const auto& field : fields) {
    TNP_CHECK(field->checked_type().defined());
    field_types.push_back(field->checked_type());
  }
  auto tuple = relay::MakeTuple(std::move(fields));
  tuple->set_checked_type(relay::Type::Tuple(std::move(field_types)));
  return tuple;
}

relay::VarPtr TypedVar(const std::string& name, Shape shape, DType dtype) {
  auto var = relay::MakeVar(name, relay::Type::Tensor(shape, dtype));
  var->set_checked_type(relay::Type::Tensor(std::move(shape), dtype));
  return var;
}

namespace {

relay::ExprPtr TypedConstant(NDArray data) {
  auto constant = relay::MakeConstant(std::move(data));
  constant->set_checked_type(
      relay::Type::Tensor(constant->data().shape(), constant->data().dtype()));
  return constant;
}

}  // namespace

relay::ExprPtr WeightF32(Shape shape, std::uint64_t seed, float stddev) {
  return TypedConstant(NDArray::RandomNormal(std::move(shape), seed, stddev));
}

relay::ExprPtr WeightS8(Shape shape, std::uint64_t seed) {
  return TypedConstant(NDArray::RandomInt8(std::move(shape), seed));
}

relay::ExprPtr BiasS32(Shape shape, std::uint64_t seed) {
  NDArray bias = NDArray::Empty(std::move(shape), DType::kInt32);
  support::SplitMix64 rng(seed);
  std::int32_t* data = bias.Data<std::int32_t>();
  for (std::int64_t i = 0; i < bias.NumElements(); ++i) {
    data[i] = static_cast<std::int32_t>(rng.UniformInt(-2048, 2048));
  }
  return TypedConstant(std::move(bias));
}

relay::ExprPtr ZeroBiasF32(std::int64_t channels) {
  return TypedConstant(NDArray::Zeros(Shape({channels}), DType::kFloat32));
}

relay::ExprPtr FilledConstant(Shape shape, std::uint64_t seed, float fill, float stddev,
                              float min_value) {
  NDArray data = NDArray::Empty(std::move(shape), DType::kFloat32);
  support::SplitMix64 rng(seed);
  float* p = data.Data<float>();
  for (std::int64_t i = 0; i < data.NumElements(); ++i) {
    const float value = fill + static_cast<float>(rng.Normal()) * stddev;
    p[i] = value < min_value ? min_value : value;
  }
  return TypedConstant(std::move(data));
}

std::vector<relay::ExprPtr> BatchNormConstants(std::int64_t channels, std::uint64_t seed) {
  return {
      FilledConstant(Shape({channels}), seed + 0, 1.0f, 0.1f, 0.05f),   // gamma
      FilledConstant(Shape({channels}), seed + 1, 0.0f, 0.1f, -10.0f),  // beta
      FilledConstant(Shape({channels}), seed + 2, 0.0f, 0.1f, -10.0f),  // running mean
      FilledConstant(Shape({channels}), seed + 3, 1.0f, 0.1f, 0.05f),   // running var
  };
}

const Shape& ShapeOf(const relay::ExprPtr& expr) {
  return expr->tensor_type().shape;
}

std::int64_t ChannelsOf(const relay::ExprPtr& expr) {
  const Shape& shape = ShapeOf(expr);
  TNP_CHECK_GE(shape.rank(), 2);
  return shape[1];
}

relay::Module FinishModule(std::vector<relay::VarPtr> params, relay::ExprPtr body) {
  relay::Module module(relay::MakeFunction(std::move(params), std::move(body)));
  return relay::InferType().Run(module);
}

}  // namespace frontend
}  // namespace tnp
