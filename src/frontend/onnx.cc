// ONNX-like frontend: named initializers plus a node list — the exchange
// format the wider model zoo (densenet, the inception family, nasnet)
// arrives through.
//
// Format:
//   ONNX_MODEL v1
//   name: inception_v3
//   input x shape=1x3x299x299 dtype=float32
//   init W1 shape=32x3x3x3 seed=41
//   init G1 shape=32 fill=1.0 stddev=0.1 min=0.05
//   node Conv in=x,W1 out=c1 strides=2,2 pads=0,0 group=1
//   node Relu in=c1 out=r1
//   node Concat in=a,b,c out=cat1 axis=1
//   output sm1
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "relay/pass.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDims;
using support::ParseDouble;
using support::ParseInt;

struct NodeLine {
  std::string type;
  std::vector<std::string> in;
  std::string out;
  std::map<std::string, std::string> kv;
  std::string location;

  std::vector<std::int64_t> Ints(const std::string& key,
                                 std::vector<std::int64_t> fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDims(it->second, location);
  }
  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
  double Dbl(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDouble(it->second, location);
  }
};

}  // namespace

relay::Module FromOnnx(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("ONNX_MODEL v1");

  std::vector<relay::VarPtr> params;
  std::map<std::string, ExprPtr> env;
  std::vector<std::string> output_names;

  const auto lookup = [&](const std::string& name, const std::string& location) -> ExprPtr {
    const auto it = env.find(name);
    if (it == env.end()) {
      TNP_THROW(kParseError) << location << ": undefined value '" << name << "'";
    }
    return it->second;
  };

  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (support::StartsWith(*line, "name:")) continue;

    const auto tokens = support::SplitWhitespace(*line);
    const std::string& head = tokens.at(0);

    if (head == "input") {
      if (tokens.size() < 3) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": malformed input line";
      }
      Shape shape;
      DType dtype = DType::kFloat32;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = support::ParseKeyValue(tokens[i], tokenizer.Location());
        if (key == "shape") shape = Shape(ParseDims(value, tokenizer.Location()));
        if (key == "dtype") dtype = DTypeFromName(value);
      }
      auto var = TypedVar(tokens[1], shape, dtype);
      params.push_back(var);
      env[tokens[1]] = var;
      continue;
    }

    if (head == "init") {
      if (tokens.size() < 3) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": malformed init line";
      }
      Shape shape;
      std::uint64_t seed = 0;
      double fill = 0.0;
      double stddev = 0.05;
      double min_value = -1e30;
      bool filled = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto [key, value] = support::ParseKeyValue(tokens[i], tokenizer.Location());
        if (key == "shape") shape = Shape(ParseDims(value, tokenizer.Location()));
        else if (key == "seed") seed = static_cast<std::uint64_t>(ParseInt(value, tokenizer.Location()));
        else if (key == "fill") { fill = ParseDouble(value, tokenizer.Location()); filled = true; }
        else if (key == "stddev") stddev = ParseDouble(value, tokenizer.Location());
        else if (key == "min") { min_value = ParseDouble(value, tokenizer.Location()); filled = true; }
        else if (key == "dtype") { /* float32 only */ }
        else {
          TNP_THROW(kParseError) << tokenizer.Location() << ": unknown init field '" << key
                                 << "'";
        }
      }
      env[tokens[1]] =
          filled ? FilledConstant(shape, seed, static_cast<float>(fill),
                                  static_cast<float>(stddev), static_cast<float>(min_value))
                 : WeightF32(shape, seed, static_cast<float>(stddev));
      continue;
    }

    if (head == "output") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        for (const auto& name : support::Split(tokens[i], ',')) {
          if (!name.empty()) output_names.push_back(name);
        }
      }
      continue;
    }

    if (head != "node") {
      TNP_THROW(kParseError) << tokenizer.Location() << ": unexpected line '" << *line << "'";
    }

    NodeLine node;
    node.type = tokens.at(1);
    node.location = tokenizer.Location();
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = support::ParseKeyValue(tokens[i], node.location);
      if (key == "in") node.in = support::Split(value, ',');
      else if (key == "out") node.out = value;
      else node.kv[key] = value;
    }
    if (node.out.empty()) {
      TNP_THROW(kParseError) << node.location << ": node requires out=";
    }
    const auto in = [&](std::size_t i) -> ExprPtr {
      if (i >= node.in.size()) {
        TNP_THROW(kParseError) << node.location << ": node " << node.type << " requires "
                               << (i + 1) << " inputs";
      }
      return lookup(node.in[i], node.location);
    };

    ExprPtr expr;
    if (node.type == "Conv") {
      ExprPtr bias =
          node.in.size() > 2 ? in(2) : ZeroBiasF32(ShapeOf(in(1))[0]);
      expr = TypedCall("nn.conv2d", {in(0), in(1), bias},
                       Attrs()
                           .SetInts("strides", node.Ints("strides", {1, 1}))
                           .SetInts("padding", node.Ints("pads", {0, 0}))
                           .SetInts("dilation", node.Ints("dilations", {1, 1}))
                           .SetInt("groups", node.Int("group", 1)));
    } else if (node.type == "Gemm") {
      ExprPtr bias = node.in.size() > 2 ? in(2) : ZeroBiasF32(ShapeOf(in(1))[0]);
      expr = TypedCall("nn.dense", {in(0), in(1), bias});
    } else if (node.type == "Relu") {
      expr = TypedCall("nn.relu", {in(0)});
    } else if (node.type == "LeakyRelu") {
      expr = TypedCall("nn.leaky_relu", {in(0)},
                       Attrs().SetDouble("alpha", node.Dbl("alpha", 0.01)));
    } else if (node.type == "Sigmoid") {
      expr = TypedCall("sigmoid", {in(0)});
    } else if (node.type == "Tanh") {
      expr = TypedCall("tanh", {in(0)});
    } else if (node.type == "Exp") {
      expr = TypedCall("exp", {in(0)});
    } else if (node.type == "Sqrt") {
      expr = TypedCall("sqrt", {in(0)});
    } else if (node.type == "Clip") {
      expr = TypedCall("clip", {in(0)},
                       Attrs()
                           .SetDouble("a_min", node.Dbl("min", 0.0))
                           .SetDouble("a_max", node.Dbl("max", 6.0)));
    } else if (node.type == "MaxPool" || node.type == "AveragePool") {
      const auto kernel = node.Ints("kernel", {2, 2});
      Attrs attrs;
      attrs.SetInts("pool_size", kernel)
          .SetInts("strides", node.Ints("strides", kernel))
          .SetInts("padding", node.Ints("pads", {0, 0}));
      if (node.type == "AveragePool") {
        attrs.SetInt("count_include_pad", node.Int("count_include_pad", 0));
      }
      expr = TypedCall(node.type == "MaxPool" ? "nn.max_pool2d" : "nn.avg_pool2d", {in(0)},
                       std::move(attrs));
    } else if (node.type == "GlobalAveragePool") {
      expr = TypedCall("nn.global_avg_pool2d", {in(0)});
    } else if (node.type == "Concat") {
      std::vector<ExprPtr> fields;
      for (const auto& name : node.in) fields.push_back(lookup(name, node.location));
      expr = TypedCall("concatenate", {TypedTuple(std::move(fields))},
                       Attrs().SetInt("axis", node.Int("axis", 1)));
    } else if (node.type == "Add" || node.type == "Mul" || node.type == "Sub" ||
               node.type == "Div") {
      static const std::map<std::string, std::string> kBinary = {
          {"Add", "add"}, {"Mul", "multiply"}, {"Sub", "subtract"}, {"Div", "divide"}};
      expr = TypedCall(kBinary.at(node.type), {in(0), in(1)});
    } else if (node.type == "Softmax") {
      expr = TypedCall("nn.softmax", {in(0)}, Attrs().SetInt("axis", node.Int("axis", -1)));
    } else if (node.type == "Flatten") {
      expr = TypedCall("nn.batch_flatten", {in(0)});
    } else if (node.type == "Reshape") {
      expr = TypedCall("reshape", {in(0)}, Attrs().SetInts("newshape", node.Ints("shape", {})));
    } else if (node.type == "Transpose") {
      expr = TypedCall("transpose", {in(0)}, Attrs().SetInts("axes", node.Ints("perm", {})));
    } else if (node.type == "Pad") {
      const auto pads = node.Ints("pads", {});
      const int rank = ShapeOf(in(0)).rank();
      if (static_cast<int>(pads.size()) != 2 * rank) {
        TNP_THROW(kParseError) << node.location << ": Pad needs 2*rank pads values";
      }
      std::vector<std::int64_t> before(pads.begin(), pads.begin() + rank);
      std::vector<std::int64_t> after(pads.begin() + rank, pads.end());
      expr = TypedCall("nn.pad", {in(0)},
                       Attrs()
                           .SetInts("pad_before", before)
                           .SetInts("pad_after", after)
                           .SetDouble("pad_value", node.Dbl("value", 0.0)));
    } else if (node.type == "Slice") {
      expr = TypedCall("strided_slice", {in(0)},
                       Attrs()
                           .SetInts("begin", node.Ints("starts", {}))
                           .SetInts("end", node.Ints("ends", {}))
                           .SetInts("strides",
                                    node.Ints("steps", std::vector<std::int64_t>(
                                                           node.Ints("starts", {}).size(), 1))));
    } else if (node.type == "BatchNormalization") {
      expr = TypedCall("nn.batch_norm", {in(0), in(1), in(2), in(3), in(4)},
                       Attrs().SetDouble("epsilon", node.Dbl("epsilon", 1e-5)));
    } else if (node.type == "Upsample") {
      const std::int64_t scale = node.Int("scale", 2);
      expr = TypedCall("nn.upsampling", {in(0)},
                       Attrs().SetInt("scale_h", scale).SetInt("scale_w", scale));
    } else if (node.type == "ReduceMean") {
      expr = TypedCall("mean", {in(0)},
                       Attrs()
                           .SetInts("axis", node.Ints("axes", {2, 3}))
                           .SetInt("keepdims", node.Int("keepdims", 0)));
    } else if (node.type == "Dropout") {
      expr = TypedCall("nn.dropout", {in(0)},
                       Attrs().SetDouble("rate", node.Dbl("ratio", 0.5)));
    } else {
      TNP_THROW(kParseError) << node.location << ": unsupported ONNX op '" << node.type << "'";
    }
    env[node.out] = std::move(expr);
  }

  if (params.empty() || output_names.empty()) {
    TNP_THROW(kParseError) << source_name << ": model needs inputs and an output line";
  }
  ExprPtr body;
  if (output_names.size() == 1) {
    body = lookup(output_names[0], source_name);
  } else {
    std::vector<ExprPtr> fields;
    for (const auto& name : output_names) fields.push_back(lookup(name, source_name));
    body = TypedTuple(std::move(fields));
  }
  return FinishModule(std::move(params), std::move(body));
}

relay::Module Import(const std::string& framework, const std::string& source,
                     const std::string& source_name) {
  static support::metrics::Counter& imports =
      support::metrics::Registry::Global().GetCounter("frontend/imports");
  imports.Increment();
  support::TraceScope scope;
  if (scope.armed()) {
    scope.Begin("frontend", std::string("Import:") + framework,
                support::TraceArg("source", source_name));
  }
  const auto finish = [&scope](relay::Module module) {
    if (scope.armed()) {
      scope.AddArg(support::TraceArg("nodes", relay::CountModuleNodes(module)));
    }
    return module;
  };
  if (framework == "keras") return finish(FromKeras(source, source_name));
  if (framework == "pytorch" || framework == "torchscript") {
    return finish(FromTorchScript(source, source_name));
  }
  if (framework == "tflite") return finish(FromTflite(source, source_name));
  if (framework == "darknet") return finish(FromDarknet(source, source_name));
  if (framework == "onnx") return finish(FromOnnx(source, source_name));
  if (framework == "mxnet") return finish(FromMxnet(source, source_name));
  TNP_THROW(kInvalidArgument) << "unknown framework '" << framework << "'";
}

}  // namespace frontend
}  // namespace tnp
