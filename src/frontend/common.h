// Shared helpers for the framework frontends.
//
// Every frontend parses a textual model format into Relay, assigning checked
// types incrementally (bottom-up) so layer parsers can read the running
// shape — e.g. a Keras Dense layer needs the flattened feature count, and a
// Conv2D layer needs the incoming channel count to size its weights.
//
// Weights in model files are *seeded*, not inline: `seed=123` describes a
// deterministic N(0, stddev) or uniform-int8 tensor. This keeps model files
// small while making every import bit-reproducible.
#pragma once

#include <string>
#include <vector>

#include "relay/expr.h"
#include "relay/module.h"
#include "relay/op.h"

namespace tnp {
namespace frontend {

/// Build an op call and immediately infer + cache its checked type from the
/// (already typed) arguments. Throws kTypeError / kParseError on bad graphs.
relay::ExprPtr TypedCall(const std::string& op_name, std::vector<relay::ExprPtr> args,
                         relay::Attrs attrs = relay::Attrs());

/// Typed tuple (for concatenate).
relay::ExprPtr TypedTuple(std::vector<relay::ExprPtr> fields);

/// Typed input variable.
relay::VarPtr TypedVar(const std::string& name, Shape shape, DType dtype);

/// Seeded float32 weight constant, N(0, stddev).
relay::ExprPtr WeightF32(Shape shape, std::uint64_t seed, float stddev = 0.05f);

/// Seeded int8 weight constant (uniform in [-127, 127]).
relay::ExprPtr WeightS8(Shape shape, std::uint64_t seed);

/// Seeded int32 bias constant (uniform in [-2048, 2048], typical of
/// quantized conv biases).
relay::ExprPtr BiasS32(Shape shape, std::uint64_t seed);

/// Zero bias of the given length.
relay::ExprPtr ZeroBiasF32(std::int64_t channels);

/// Seeded constant `fill + N(0, stddev)`, clamped to >= min_value.
/// Covers batch-norm parameters (gamma around 1, variance kept positive).
relay::ExprPtr FilledConstant(Shape shape, std::uint64_t seed, float fill, float stddev,
                              float min_value);

/// {gamma, beta, mean, var} constants for a batch-norm over `channels`.
std::vector<relay::ExprPtr> BatchNormConstants(std::int64_t channels, std::uint64_t seed);

/// Shape of an already-typed expression.
const Shape& ShapeOf(const relay::ExprPtr& expr);

/// Channel count (axis 1) of an already-typed NCHW expression.
std::int64_t ChannelsOf(const relay::ExprPtr& expr);

/// Wrap a typed body into a single-function module and re-infer types.
relay::Module FinishModule(std::vector<relay::VarPtr> params, relay::ExprPtr body);

}  // namespace frontend
}  // namespace tnp
