// TFLite-like frontend: flat tensor/operator tables with *per-tensor*
// quantization parameters — the representation pre-quantized models arrive
// in. Importing it into Relay QNN moves those parameters into operator
// attributes (operator-oriented), which is precisely the representation the
// paper's Section 3.3 later converts back onto Neuron tensors.
//
// Format:
//   TFLITE_MODEL v1
//   name: mobilenet_v1_quant
//   tensor 0 name=input shape=1x3x224x224 dtype=int8 scale=0.0078 zero_point=0 kind=input
//   tensor 1 name=w1 shape=32x3x3x3 dtype=int8 scale=0.02 zero_point=0 kind=const seed=11
//   tensor 2 name=b1 shape=32 dtype=int32 kind=const seed=12
//   tensor 3 name=a1 shape=1x32x112x112 dtype=int8 scale=0.05 zero_point=3 kind=temp
//   op CONV_2D inputs=0,1,2 outputs=3 strides=2x2 padding=1x1 groups=1
//   outputs 3
#include <map>

#include "frontend/common.h"
#include "frontend/frontend.h"
#include "support/string_util.h"
#include "support/tokenizer.h"

namespace tnp {
namespace frontend {

namespace {

using relay::Attrs;
using relay::ExprPtr;
using support::ParseDims;
using support::ParseDouble;
using support::ParseInt;

struct TensorEntry {
  std::string name;
  Shape shape;
  DType dtype = DType::kFloat32;
  QuantParams quant;
  std::string kind = "temp";  // input | const | temp
  std::uint64_t seed = 0;
  ExprPtr expr;  ///< materialized value (inputs/constants up front, temps by ops)
};

struct OpLine {
  std::string type;
  std::vector<int> inputs;
  std::vector<int> outputs;
  std::map<std::string, std::string> kv;
  std::string location;

  std::vector<std::int64_t> Dims2(const std::string& key,
                                  std::vector<std::int64_t> fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseDims(it->second, location);
  }
  std::int64_t Int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : ParseInt(it->second, location);
  }
};

std::vector<int> ParseIdList(const std::string& text, const std::string& location) {
  std::vector<int> ids;
  for (const auto& piece : support::Split(text, ',')) {
    ids.push_back(static_cast<int>(ParseInt(piece, location)));
  }
  return ids;
}

/// Adds the QNN quantization attributes of one tensor under a prefix
/// ("input", "weight", "output", "lhs", "rhs").
void AddQuantAttrs(Attrs& attrs, const std::string& prefix, const TensorEntry& tensor,
                   const std::string& location) {
  if (!tensor.quant.valid) {
    TNP_THROW(kParseError) << location << ": tensor '" << tensor.name
                           << "' lacks quantization parameters required by a quantized op";
  }
  attrs.SetDouble(prefix + "_scale", tensor.quant.scale);
  attrs.SetInt(prefix + "_zero_point", tensor.quant.zero_point);
}

}  // namespace

relay::Module FromTflite(const std::string& source, const std::string& source_name) {
  support::Tokenizer tokenizer(source, source_name);
  tokenizer.ExpectExact("TFLITE_MODEL v1");

  std::vector<TensorEntry> tensors;
  std::vector<relay::VarPtr> params;
  std::vector<int> model_outputs;

  const auto tensor_at = [&](int id, const std::string& location) -> TensorEntry& {
    if (id < 0 || id >= static_cast<int>(tensors.size())) {
      TNP_THROW(kParseError) << location << ": tensor id " << id << " out of range";
    }
    return tensors[static_cast<std::size_t>(id)];
  };
  const auto expr_of = [&](int id, const std::string& location) -> ExprPtr {
    TensorEntry& tensor = tensor_at(id, location);
    if (tensor.expr == nullptr) {
      TNP_THROW(kParseError) << location << ": tensor " << id << " used before it is produced";
    }
    return tensor.expr;
  };

  for (auto line = tokenizer.NextLine(); line; line = tokenizer.NextLine()) {
    if (support::StartsWith(*line, "name:")) continue;

    if (support::StartsWith(*line, "tensor ")) {
      const auto tokens = support::SplitWhitespace(line->substr(7));
      if (tokens.empty()) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": malformed tensor line";
      }
      const int id = static_cast<int>(ParseInt(tokens[0], tokenizer.Location()));
      if (id != static_cast<int>(tensors.size())) {
        TNP_THROW(kParseError) << tokenizer.Location() << ": tensor ids must be sequential";
      }
      TensorEntry tensor;
      bool has_scale = false;
      float scale = 0.0f;
      std::int32_t zero_point = 0;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto [key, value] = support::ParseKeyValue(tokens[i], tokenizer.Location());
        if (key == "name") tensor.name = value;
        else if (key == "shape") tensor.shape = Shape(ParseDims(value, tokenizer.Location()));
        else if (key == "dtype") tensor.dtype = DTypeFromName(value);
        else if (key == "scale") { scale = static_cast<float>(ParseDouble(value, tokenizer.Location())); has_scale = true; }
        else if (key == "zero_point") zero_point = static_cast<std::int32_t>(ParseInt(value, tokenizer.Location()));
        else if (key == "kind") tensor.kind = value;
        else if (key == "seed") tensor.seed = static_cast<std::uint64_t>(ParseInt(value, tokenizer.Location()));
        else {
          TNP_THROW(kParseError) << tokenizer.Location() << ": unknown tensor field '" << key
                                 << "'";
        }
      }
      if (has_scale) tensor.quant = QuantParams(scale, zero_point);

      if (tensor.kind == "input") {
        auto var = TypedVar(tensor.name.empty() ? "input" : tensor.name, tensor.shape,
                            tensor.dtype);
        params.push_back(var);
        tensor.expr = var;
      } else if (tensor.kind == "const") {
        switch (tensor.dtype) {
          case DType::kInt8: tensor.expr = WeightS8(tensor.shape, tensor.seed); break;
          case DType::kInt32: tensor.expr = BiasS32(tensor.shape, tensor.seed); break;
          case DType::kFloat32: tensor.expr = WeightF32(tensor.shape, tensor.seed); break;
          default:
            TNP_THROW(kParseError) << tokenizer.Location() << ": unsupported const dtype";
        }
      } else if (tensor.kind != "temp") {
        TNP_THROW(kParseError) << tokenizer.Location() << ": unknown tensor kind '"
                               << tensor.kind << "'";
      }
      tensors.push_back(std::move(tensor));
      continue;
    }

    if (support::StartsWith(*line, "outputs")) {
      model_outputs = ParseIdList(std::string(support::Trim(line->substr(7))),
                                  tokenizer.Location());
      continue;
    }

    if (!support::StartsWith(*line, "op ")) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": unexpected line '" << *line << "'";
    }

    const auto tokens = support::SplitWhitespace(line->substr(3));
    if (tokens.empty()) {
      TNP_THROW(kParseError) << tokenizer.Location() << ": empty op line";
    }
    OpLine op;
    op.type = tokens[0];
    op.location = tokenizer.Location();
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto [key, value] = support::ParseKeyValue(tokens[i], op.location);
      if (key == "inputs") op.inputs = ParseIdList(value, op.location);
      else if (key == "outputs") op.outputs = ParseIdList(value, op.location);
      else op.kv[key] = value;
    }
    if (op.outputs.size() != 1) {
      TNP_THROW(kParseError) << op.location << ": ops must have exactly one output";
    }
    TensorEntry& out = tensor_at(op.outputs[0], op.location);
    const bool quantized = out.dtype == DType::kInt8;

    ExprPtr expr;
    if (op.type == "CONV_2D" || op.type == "DEPTHWISE_CONV_2D") {
      const TensorEntry& data = tensor_at(op.inputs.at(0), op.location);
      const TensorEntry& weight = tensor_at(op.inputs.at(1), op.location);
      const std::int64_t groups =
          op.type == "DEPTHWISE_CONV_2D" ? data.shape[1] : op.Int("groups", 1);
      Attrs attrs;
      attrs.SetInts("strides", op.Dims2("strides", {1, 1}))
          .SetInts("padding", op.Dims2("padding", {0, 0}))
          .SetInt("groups", groups);
      if (quantized) {
        AddQuantAttrs(attrs, "input", data, op.location);
        AddQuantAttrs(attrs, "weight", weight, op.location);
        AddQuantAttrs(attrs, "output", out, op.location);
        expr = TypedCall("qnn.conv2d",
                         {expr_of(op.inputs[0], op.location), expr_of(op.inputs[1], op.location),
                          expr_of(op.inputs.at(2), op.location)},
                         std::move(attrs));
      } else {
        ExprPtr bias = op.inputs.size() > 2 ? expr_of(op.inputs[2], op.location)
                                            : ZeroBiasF32(weight.shape[0]);
        expr = TypedCall("nn.conv2d",
                         {expr_of(op.inputs[0], op.location), expr_of(op.inputs[1], op.location),
                          bias},
                         std::move(attrs));
      }
    } else if (op.type == "FULLY_CONNECTED") {
      const TensorEntry& data = tensor_at(op.inputs.at(0), op.location);
      const TensorEntry& weight = tensor_at(op.inputs.at(1), op.location);
      (void)data;
      Attrs attrs;
      if (quantized) {
        AddQuantAttrs(attrs, "input", tensor_at(op.inputs[0], op.location), op.location);
        AddQuantAttrs(attrs, "weight", weight, op.location);
        AddQuantAttrs(attrs, "output", out, op.location);
        expr = TypedCall("qnn.dense",
                         {expr_of(op.inputs[0], op.location), expr_of(op.inputs[1], op.location),
                          expr_of(op.inputs.at(2), op.location)},
                         std::move(attrs));
      } else {
        ExprPtr bias = op.inputs.size() > 2 ? expr_of(op.inputs[2], op.location)
                                            : ZeroBiasF32(weight.shape[0]);
        expr = TypedCall("nn.dense", {expr_of(op.inputs[0], op.location),
                                      expr_of(op.inputs[1], op.location), bias});
      }
    } else if (op.type == "ADD" || op.type == "MUL") {
      if (quantized) {
        Attrs attrs;
        AddQuantAttrs(attrs, "lhs", tensor_at(op.inputs.at(0), op.location), op.location);
        AddQuantAttrs(attrs, "rhs", tensor_at(op.inputs.at(1), op.location), op.location);
        AddQuantAttrs(attrs, "output", out, op.location);
        expr = TypedCall(op.type == "ADD" ? "qnn.add" : "qnn.mul",
                         {expr_of(op.inputs[0], op.location),
                          expr_of(op.inputs[1], op.location)},
                         std::move(attrs));
      } else {
        expr = TypedCall(op.type == "ADD" ? "add" : "multiply",
                         {expr_of(op.inputs.at(0), op.location),
                          expr_of(op.inputs.at(1), op.location)});
      }
    } else if (op.type == "CONCATENATION") {
      std::vector<ExprPtr> fields;
      for (const int id : op.inputs) fields.push_back(expr_of(id, op.location));
      Attrs attrs;
      attrs.SetInt("axis", op.Int("axis", 1));
      if (quantized) {
        std::vector<double> scales;
        std::vector<std::int64_t> zps;
        for (const int id : op.inputs) {
          const TensorEntry& tensor = tensor_at(id, op.location);
          if (!tensor.quant.valid) {
            TNP_THROW(kParseError) << op.location << ": concat input lacks quant params";
          }
          scales.push_back(tensor.quant.scale);
          zps.push_back(tensor.quant.zero_point);
        }
        attrs.SetDoubles("input_scales", scales).SetInts("input_zero_points", zps);
        AddQuantAttrs(attrs, "output", out, op.location);
        expr = TypedCall("qnn.concatenate", {TypedTuple(std::move(fields))}, std::move(attrs));
      } else {
        expr = TypedCall("concatenate", {TypedTuple(std::move(fields))}, std::move(attrs));
      }
    } else if (op.type == "MAX_POOL_2D" || op.type == "AVERAGE_POOL_2D") {
      const auto pool = op.Dims2("filter", {2, 2});
      expr = TypedCall(op.type == "MAX_POOL_2D" ? "nn.max_pool2d" : "nn.avg_pool2d",
                       {expr_of(op.inputs.at(0), op.location)},
                       Attrs()
                           .SetInts("pool_size", pool)
                           .SetInts("strides", op.Dims2("strides", pool))
                           .SetInts("padding", op.Dims2("padding", {0, 0})));
    } else if (op.type == "SOFTMAX") {
      expr = TypedCall("nn.softmax", {expr_of(op.inputs.at(0), op.location)},
                       Attrs().SetInt("axis", op.Int("axis", -1)));
    } else if (op.type == "LOGISTIC") {
      expr = TypedCall("sigmoid", {expr_of(op.inputs.at(0), op.location)});
    } else if (op.type == "EXP") {
      expr = TypedCall("exp", {expr_of(op.inputs.at(0), op.location)});
    } else if (op.type == "RELU") {
      if (quantized) {
        const TensorEntry& data = tensor_at(op.inputs.at(0), op.location);
        expr = TypedCall("qnn.relu", {expr_of(op.inputs[0], op.location)},
                         Attrs().SetInt("zero_point",
                                        data.quant.valid ? data.quant.zero_point : 0));
      } else {
        expr = TypedCall("nn.relu", {expr_of(op.inputs.at(0), op.location)});
      }
    } else if (op.type == "RESHAPE") {
      expr = TypedCall("reshape", {expr_of(op.inputs.at(0), op.location)},
                       Attrs().SetInts("newshape", out.shape.dims()));
    } else if (op.type == "PAD") {
      expr = TypedCall("nn.pad", {expr_of(op.inputs.at(0), op.location)},
                       Attrs()
                           .SetInts("pad_before", op.Dims2("pad_before", {}))
                           .SetInts("pad_after", op.Dims2("pad_after", {})));
    } else if (op.type == "QUANTIZE") {
      Attrs attrs;
      AddQuantAttrs(attrs, "output", out, op.location);
      expr = TypedCall("qnn.quantize", {expr_of(op.inputs.at(0), op.location)},
                       std::move(attrs));
    } else if (op.type == "DEQUANTIZE") {
      Attrs attrs;
      AddQuantAttrs(attrs, "input", tensor_at(op.inputs.at(0), op.location), op.location);
      expr = TypedCall("qnn.dequantize", {expr_of(op.inputs[0], op.location)},
                       std::move(attrs));
    } else if (op.type == "REQUANTIZE") {
      Attrs attrs;
      AddQuantAttrs(attrs, "input", tensor_at(op.inputs.at(0), op.location), op.location);
      AddQuantAttrs(attrs, "output", out, op.location);
      expr = TypedCall("qnn.requantize", {expr_of(op.inputs[0], op.location)},
                       std::move(attrs));
    } else {
      TNP_THROW(kParseError) << op.location << ": unsupported TFLite op '" << op.type << "'";
    }

    // Cross-check the declared output tensor against the inferred type.
    const relay::TensorType& inferred = expr->tensor_type();
    if (inferred.shape != out.shape || inferred.dtype != out.dtype) {
      TNP_THROW(kParseError) << op.location << ": op " << op.type << " produces "
                             << inferred.ToString() << " but tensor " << op.outputs[0]
                             << " declares " << out.shape.ToString() << ":"
                             << DTypeName(out.dtype);
    }
    out.expr = std::move(expr);
  }

  if (params.empty() || model_outputs.empty()) {
    TNP_THROW(kParseError) << source_name << ": model needs inputs and an outputs line";
  }
  ExprPtr body;
  if (model_outputs.size() == 1) {
    body = expr_of(model_outputs[0], source_name);
  } else {
    std::vector<ExprPtr> fields;
    for (const int id : model_outputs) fields.push_back(expr_of(id, source_name));
    body = TypedTuple(std::move(fields));
  }
  return FinishModule(std::move(params), std::move(body));
}

}  // namespace frontend
}  // namespace tnp
