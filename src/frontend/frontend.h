// Framework frontends — "TVM's front-end accepts a variety of machine
// learning frameworks" (paper Section 2.2). Five textual model formats with
// genuinely different structure are supported, mirroring the import paths
// the paper's application showcase uses:
//
//   * Keras-like     — sequential layer list (the emotion-detection model)
//   * TorchScript-like — traced aten:: graph (the DeePixBiS anti-spoofing model)
//   * TFLite-like    — flat tensor/op tables with per-tensor quantization
//                      (the quantized Mobilenet-SSD object detector)
//   * Darknet-like   — cfg sections (YOLOv3)
//   * ONNX-like      — named node list (the wider model zoo)
//
// All frontends lower to the same Relay module form. Weights are seeded
// rather than inline (see common.h).
#pragma once

#include <string>

#include "relay/module.h"

namespace tnp {
namespace frontend {

/// `source_name` is used in parse-error messages.
relay::Module FromKeras(const std::string& source, const std::string& source_name = "<keras>");
relay::Module FromTorchScript(const std::string& source,
                              const std::string& source_name = "<torchscript>");
relay::Module FromTflite(const std::string& source, const std::string& source_name = "<tflite>");
relay::Module FromDarknet(const std::string& source,
                          const std::string& source_name = "<darknet>");
relay::Module FromOnnx(const std::string& source, const std::string& source_name = "<onnx>");
relay::Module FromMxnet(const std::string& source, const std::string& source_name = "<mxnet>");

/// Dispatch on framework name ("keras", "pytorch", "tflite", "darknet",
/// "onnx", "mxnet"); throws kInvalidArgument for unknown frameworks.
relay::Module Import(const std::string& framework, const std::string& source,
                     const std::string& source_name = "<model>");

}  // namespace frontend
}  // namespace tnp
