// BYOC extension point: bring your *own* codegen, exactly what TVM's BYOC
// is for. This example registers a toy "mydsp" backend that only supports
// elementwise activations, partitions a graph for it, and executes through
// the same graph-runtime path the NeuroPilot backend uses — demonstrating
// that the partitioner/codegen/runtime plumbing is backend-agnostic.
//
// Build & run:  ./build/examples/custom_backend
#include <iostream>

#include "frontend/common.h"
#include "relay/build.h"
#include "relay/byoc_partition.h"
#include "relay/interpreter.h"
#include "relay/pass.h"
#include "relay/printer.h"
#include "relay/visitor.h"

using namespace tnp;
using relay::Attrs;

namespace {

/// Trivial external module: evaluates the region with the reference
/// interpreter and charges a fixed "DSP" cost.
class MyDspModule final : public relay::ExternalModule {
 public:
  MyDspModule(std::string name, relay::FunctionPtr fn)
      : name_(std::move(name)), fn_(std::move(fn)) {
    num_ops_ = relay::CountCalls(fn_->body());
  }

  relay::Value Run(const std::vector<relay::Value>& inputs, sim::SimClock* clock,
                   bool execute_numerics, relay::ExternalSession* session = nullptr) override {
    (void)session;  // stateless module: allocates its outputs every run
    if (clock != nullptr) {
      sim::OpDesc desc;
      desc.name = "mydsp-subgraph";
      desc.fused_ops = num_ops_;
      clock->AddOp(desc, sim::DeviceKind::kNeuronApu, 42.0 /*us, flat*/);
    }
    if (!execute_numerics) return relay::Value();
    relay::Environment env;
    for (std::size_t i = 0; i < inputs.size(); ++i) env[fn_->params()[i].get()] = inputs[i];
    return relay::EvalExpr(fn_->body(), env);
  }

  const std::string& name() const override { return name_; }
  int num_ops() const override { return num_ops_; }

 private:
  std::string name_;
  relay::FunctionPtr fn_;
  int num_ops_ = 0;
};

}  // namespace

int main() {
  // 1. Register the codegen under the compiler name "mydsp".
  relay::ExternalCodegenRegistry::Global().Register(
      "mydsp", [](const relay::FunctionPtr& fn, const std::string& global_name,
                  const relay::BuildOptions&) -> relay::ExternalModulePtr {
        relay::InferFunctionTypes(fn);
        std::cout << "  [mydsp codegen] compiling region '" << global_name << "' with "
                  << relay::CountCalls(fn->body()) << " ops\n";
        return std::make_shared<MyDspModule>(global_name, fn);
      });

  // 2. Build a graph mixing supported (activations) and unsupported ops.
  using frontend::TypedCall;
  auto x = frontend::TypedVar("x", Shape({1, 8}), DType::kFloat32);
  auto a = TypedCall("nn.relu", {x});
  auto b = TypedCall("tanh", {a});
  auto c = TypedCall("nn.dense",
                     {b, frontend::WeightF32(Shape({8, 8}), 5), frontend::ZeroBiasF32(8)});
  auto d = TypedCall("sigmoid", {c});
  relay::Module module(relay::MakeFunction({x}, d));
  module = relay::InferType().Run(module);

  // 3. Partition: the DSP handles elementwise activations only.
  std::cout << "partitioning for mydsp (activations only)...\n";
  const relay::Module partitioned =
      relay::PartitionGraph(module, "mydsp", [](const relay::Call& call) {
        return call.op_name() == "nn.relu" || call.op_name() == "tanh" ||
               call.op_name() == "sigmoid";
      });
  std::cout << partitioned.ExternalFunctions("mydsp").size()
            << " DSP regions extracted (dense stays on the host)\n\n";
  std::cout << relay::PrintModule(partitioned) << "\n";

  // 4. Build + run, and verify against the unpartitioned program.
  relay::GraphExecutor executor(relay::Build(partitioned));
  NDArray input = NDArray::RandomNormal(Shape({1, 8}), 3);
  executor.SetInput("x", input);
  executor.Run();

  relay::GraphExecutor reference(relay::Build(module));
  reference.SetInput("x", input);
  reference.Run();

  const bool identical = NDArray::BitEqual(executor.GetOutput(0), reference.GetOutput(0));
  std::cout << "DSP-partitioned output " << (identical ? "matches" : "DIFFERS from")
            << " the host-only output\n";
  std::cout << "simulated time with DSP: " << executor.last_clock().Summary() << "\n";
  return identical ? 0 : 1;
}
