// The full application showcase (paper Figure 1): synthetic video frames
// pass through object detection + face detection, the overlap gate, the
// anti-spoofing model, and the emotion-detection model — each model pinned
// to its scheduled target — first sequentially, then pipelined with
// exclusive resource use (Figure 5).
//
// Build & run:  ./build/examples/showcase_app [num_frames] [--frames N]
//                                             [--seed S] [--threads=N]
//                                             [--artifact-cache=DIR]
//                                             [--tuning-db=DIR]
//                                             [--cold-start]
//                                             [--trace[=path]]
//                                             [--metrics[=path]]
//                                             [--flight-record=path]
//                                             [--http-port=N]
//
// --frames N sizes the run and --seed S makes it reproducible (the seed
// feeds both the synthetic scene and the models' weights), so command lines
// can express exactly the configurations the benches hard-code. A bare
// positional number is still accepted as the frame count.
//
// --artifact-cache=DIR (default off) compiles through a content-addressed
// artifact store: the first run serializes each stage's compiled module into
// DIR, subsequent runs mmap them back without recompiling or repacking
// weights. --cold-start prints the session-construction wall time plus the
// store hit/miss counters, so a cached vs uncached launch is directly
// comparable.
//
// --tuning-db=DIR activates a tuning DB produced by tools/tune_cli: every
// model build consults it for per-shape GEMM configs (tune-then-serve).
//
// --threads=N sizes the process-wide worker pool (overrides TNP_NUM_THREADS;
// must come before any work runs — the pool is created on first use and
// publishes its size as the pool/num_threads gauge).
//
// --trace records every layer's spans (frontend import, Relay passes, the
// Neuron Execution Planner, kernel dispatch, pipeline stages) and writes a
// Chrome-trace JSON loadable in chrome://tracing / ui.perfetto.dev.
// Tracing can also be enabled with TNP_TRACE=1 in the environment.
// --metrics writes the end-of-run metrics snapshot (Prometheus text for
// .prom paths, JSON otherwise); --flight-record dumps the flight-recorder
// document (trace tail + metrics) to the given path when the run ends.
// --http-port=N serves the live debug endpoints (/metrics, /timeseries,
// /flightrecord) on 127.0.0.1:N for the run's duration.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "artifact/store.h"
#include "kernels/scratch.h"
#include "support/debug_http.h"
#include "support/error.h"
#include "support/thread_pool.h"
#include "support/flight_recorder.h"
#include "support/metrics.h"
#include "support/telemetry.h"
#include "support/trace.h"
#include "tune/db.h"
#include "vision/app.h"

using namespace tnp;
using namespace tnp::vision;

int main(int argc, char** argv) {
  int num_frames = 6;
  std::uint64_t seed = 7;
  std::string trace_path;
  std::string metrics_path;
  std::string flight_path;
  std::string artifact_cache_dir;
  std::string tuning_db_dir;
  bool cold_start = false;
  int http_port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace", 0) == 0) {
      trace_path = arg.size() > 8 && arg[7] == '=' ? arg.substr(8) : "showcase_trace.json";
      support::Tracer::Global().SetEnabled(true);
    } else if (arg.rfind("--metrics", 0) == 0) {
      metrics_path =
          arg.size() > 10 && arg[9] == '=' ? arg.substr(10) : "showcase_metrics.json";
    } else if (arg.rfind("--flight-record=", 0) == 0) {
      flight_path = arg.substr(16);
    } else if (arg.rfind("--http-port=", 0) == 0) {
      http_port = std::atoi(arg.c_str() + 12);
    } else if (arg.rfind("--artifact-cache=", 0) == 0) {
      artifact_cache_dir = arg.substr(17);
      if (artifact_cache_dir.empty()) {
        std::cerr << "showcase_app: --artifact-cache needs a directory\n";
        return 2;
      }
    } else if (arg.rfind("--tuning-db=", 0) == 0) {
      tuning_db_dir = arg.substr(12);
      if (tuning_db_dir.empty()) {
        std::cerr << "showcase_app: --tuning-db needs a directory\n";
        return 2;
      }
    } else if (arg == "--cold-start") {
      cold_start = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const int threads = std::atoi(arg.c_str() + 10);
      if (threads < 1 || !support::ThreadPool::Configure(threads)) {
        std::cerr << "showcase_app: invalid --threads value \""
                  << arg.substr(10) << "\" (expected a positive integer)\n";
        return 2;
      }
    } else if (arg == "--frames" && i + 1 < argc) {
      num_frames = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-') {
      num_frames = std::atoi(arg.c_str());
    } else {
      std::cerr << "usage: showcase_app [num_frames] [--frames N] [--seed S] "
                   "[--threads=N] [--artifact-cache=DIR] [--tuning-db=DIR] "
                   "[--cold-start] [--trace[=path]] [--metrics[=path]] "
                   "[--flight-record=path] [--http-port=N]\n";
      return 2;
    }
  }
  if (!flight_path.empty()) {
    support::FlightRecorderOptions flight;
    flight.path = flight_path;
    support::FlightRecorder::Global().Configure(flight);
  }
  if (num_frames < 1) {
    std::cerr << "showcase_app: frame count must be >= 1\n";
    return 2;
  }
  support::DebugHttpServer http;
  support::TelemetrySampler sampler;
  if (http_port >= 0) {
    support::RegisterSupportEndpoints(http);
    try {
      http.Start(http_port);
    } catch (const Error& e) {
      std::cerr << "cannot serve debug endpoints: " << e.what() << "\n";
      return 2;
    }
    std::cout << "debug endpoints on http://127.0.0.1:" << http.port()
              << " (/metrics /timeseries /flightrecord)\n";
    sampler.Start();
  }

  const Scene scene = Scene::Random(320, 240, 4, 2, seed);
  std::cout << "scene: " << scene.persons.size() << " persons ("
            << (scene.persons.size() + 1) / 2 << " real, " << scene.persons.size() / 2
            << " presentation attacks), " << scene.posters.size()
            << " wall posters (must be gated out)\n\n";

  if (!tuning_db_dir.empty()) {
    try {
      auto db = std::make_shared<tune::TuningDb>(tuning_db_dir);
      std::cout << "tuning DB: " << tuning_db_dir << " (" << db->size()
                << " records, fingerprint " << db->Fingerprint() << ")\n";
      tune::SetActiveTuningDb(std::move(db));
    } catch (const Error& e) {
      std::cerr << "showcase_app: cannot open tuning DB: " << e.what() << "\n";
      return 2;
    }
  }

  ShowcaseConfig config;  // paper Figure-5 stage->target assignment by default
  config.seed = seed;
  if (!artifact_cache_dir.empty()) {
    try {
      config.compile.artifact_cache =
          std::make_shared<artifact::ArtifactStore>(artifact_cache_dir);
    } catch (const Error& e) {
      std::cerr << "showcase_app: cannot open artifact cache: " << e.what() << "\n";
      return 2;
    }
  }
  const auto build_start = std::chrono::steady_clock::now();
  ShowcaseApp app(config);
  if (cold_start) {
    const double build_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - build_start)
                                .count();
    const auto& registry = support::metrics::Registry::Global();
    const auto* hits = registry.FindCounter("artifact/cache_hits");
    const auto* misses = registry.FindCounter("artifact/cache_misses");
    std::cout << "cold start: sessions built in " << build_ms << " ms (artifact cache "
              << (artifact_cache_dir.empty() ? "off" : artifact_cache_dir) << ", "
              << (hits != nullptr ? hits->value() : 0) << " hits, "
              << (misses != nullptr ? misses->value() : 0) << " misses)\n\n";
  }
  std::cout << "stage latencies (simulated, per inference):\n";
  std::cout << "  object detection  (" << core::FlowName(app.config().detection_flow)
            << "): " << app.DetectionStageUs() / 1000.0 << " ms\n";
  std::cout << "  anti-spoofing     (" << core::FlowName(app.config().antispoof_flow)
            << "): " << app.AntiSpoofStageUs() / 1000.0 << " ms\n";
  std::cout << "  emotion detection (" << core::FlowName(app.config().emotion_flow)
            << "): " << app.EmotionStageUs() / 1000.0 << " ms\n\n";

  std::cout << "--- sequential run ---\n";
  const RunSummary sequential = app.RunSequential(scene, num_frames);
  for (const auto& frame : sequential.frames) {
    std::cout << "frame " << frame.frame_index << ": " << frame.faces.size()
              << " faces, " << frame.bodies.size() << " bodies, " << frame.num_candidates
              << " candidates\n";
    for (const auto& face : frame.results) {
      std::cout << "  face @ (" << static_cast<int>(face.box.x) << ","
                << static_cast<int>(face.box.y) << ") liveness=" << face.antispoof_score;
      if (face.spoof) {
        std::cout << " -> PRESENTATION ATTACK (skipped)\n";
      } else {
        std::cout << " -> real, emotion=" << EmotionName(static_cast<Emotion>(face.emotion))
                  << "\n";
      }
    }
  }
  std::cout << "sequential: wall " << sequential.wall_ms << " ms | simulated "
            << sequential.SimTotalMs() << " ms (det " << sequential.sim_detection_ms
            << " + anti " << sequential.sim_antispoof_ms << " + emo "
            << sequential.sim_emotion_ms << ")\n\n";

  std::cout << "--- pipelined run (exclusive CPU/APU, stages overlap across frames) ---\n";
  const RunSummary pipelined = app.RunPipelined(scene, num_frames);
  std::cout << "pipelined: wall " << pipelined.wall_ms << " ms, " << pipelined.frames.size()
            << " frames processed, results identical to sequential: ";
  bool identical = pipelined.frames.size() == sequential.frames.size();
  for (std::size_t f = 0; identical && f < pipelined.frames.size(); ++f) {
    identical = pipelined.frames[f].results.size() == sequential.frames[f].results.size();
    for (std::size_t i = 0; identical && i < pipelined.frames[f].results.size(); ++i) {
      identical = pipelined.frames[f].results[i].spoof == sequential.frames[f].results[i].spoof &&
                  pipelined.frames[f].results[i].emotion ==
                      sequential.frames[f].results[i].emotion;
    }
  }
  std::cout << (identical ? "yes" : "NO") << "\n";

  if (!trace_path.empty()) {
    support::Tracer::Global().Export(trace_path);
    std::cout << "\ntrace: " << support::Tracer::Global().Snapshot().size()
              << " events written to " << trace_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    kernels::PublishScratchWorkerGauges();  // per-worker arena peaks
    const bool prometheus = metrics_path.size() >= 5 &&
                            metrics_path.compare(metrics_path.size() - 5, 5, ".prom") == 0;
    std::ofstream out(metrics_path);
    if (out.good()) {
      out << (prometheus ? support::metrics::ExportPrometheus()
                         : support::metrics::ExportJson());
      std::cout << "metrics: " << (prometheus ? "Prometheus" : "JSON")
                << " snapshot written to " << metrics_path << "\n";
    } else {
      std::cerr << "cannot write metrics snapshot to " << metrics_path << "\n";
    }
  }
  if (!flight_path.empty()) {
    support::FlightRecorder::Global().Dump("end-of-run");
    std::cout << "flight record written to " << flight_path << "\n";
  }
  if (http_port >= 0) {
    sampler.Stop();
    http.Stop();  // joins the listener thread and in-flight connections
  }
  return identical ? 0 : 1;
}
