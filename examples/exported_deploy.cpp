// The paper's Section 4.5 deployment flow, end to end:
//
//   server side:  import (PyTorch frontend) -> partition_for_nir ->
//                 lib.export_library(dylib_path)
//   device side:  load the exported artifact (no frontends, no model
//                 sources) -> build the runtime module -> set input ->
//                 run -> get output
//
// Build & run:  ./build/examples/exported_deploy [artifact_path]
#include <iostream>

#include "core/flows.h"
#include "core/nir.h"
#include "relay/serializer.h"
#include "relay/visitor.h"
#include "zoo/zoo.h"

using namespace tnp;

namespace {

/// "Server side": everything that needs the compiler + frontends.
void ServerSideExport(const std::string& artifact_path) {
  std::cout << "--- server side ---\n";
  zoo::ZooOptions options;
  options.image_size = 64;
  options.width = 0.25;
  options.depth = 0.3;
  // The anti-spoofing model arrives from PyTorch, exactly as in Listing 2.
  const std::string torch_source = zoo::EmitSource("deepixbis", options);
  std::cout << "traced TorchScript model: " << torch_source.size() << " bytes\n";

  relay::Module module = zoo::Build("deepixbis", options);
  core::NirOptions nir_options;  // mobile CPU + APU
  const relay::Module partitioned = core::PartitionForNir(module, nir_options);
  std::cout << "partitioned into " << partitioned.ExternalFunctions("nir").size()
            << " NIR regions + host graph\n";

  relay::SaveModuleToFile(partitioned, artifact_path);
  std::cout << "exported library to " << artifact_path << "\n\n";
}

/// "Device side": only the runtime; no frontends, no model definitions.
int DeviceSideRun(const std::string& artifact_path) {
  std::cout << "--- device side (runtime only) ---\n";
  const relay::Module loaded = relay::LoadModuleFromFile(artifact_path);
  std::cout << "loaded artifact: " << loaded.functions().size() << " functions\n";

  core::NirOptions nir_options;
  relay::GraphExecutor executor(
      relay::Build(loaded, core::MakeBuildOptions(nir_options)));

  NDArray face_region = NDArray::RandomNormal(Shape({1, 3, 64, 64}), 77, 0.4f);
  executor.SetInput("x", face_region);
  executor.Run();
  const NDArray pixel_map = executor.GetOutput(0);
  const NDArray score = executor.GetOutput(1);
  std::cout << "pixel-wise map: " << pixel_map.shape().ToString()
            << ", liveness score: " << score.Data<float>()[0] << "\n";
  std::cout << "simulated latency: " << executor.last_clock().Summary() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string artifact_path =
      argc > 1 ? argv[1] : "/tmp/deepixbis_partitioned.tnpm";
  ServerSideExport(artifact_path);
  return DeviceSideRun(artifact_path);
}
