// Quickstart: the paper's Listing-2 flow end to end.
//
//   1. import a model from a framework frontend (Keras here),
//   2. partition it for the NeuroPilot backend (nir.partition_for_nir),
//   3. build the execution library,
//   4. set inputs, run, read outputs — and compare against the TVM-only
//      flow to verify the BYOC path computes the same result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/flows.h"
#include "core/nir.h"
#include "frontend/frontend.h"
#include "relay/printer.h"
#include "relay/visitor.h"

using namespace tnp;

int main() {
  // A small Keras-style model, as the emotion-detection model arrives.
  const std::string source = R"(KERAS_MODEL v1
name: quickstart
input: shape=1x1x32x32 dtype=float32
layer Conv2D filters=16 kernel=3x3 padding=same activation=relu seed=11
layer MaxPooling2D pool=2x2
layer Conv2D filters=32 kernel=3x3 padding=same activation=relu seed=12
layer GlobalAveragePooling2D
layer Dense units=10 activation=softmax seed=13
)";

  std::cout << "--- importing Keras model ---\n";
  relay::Module module = frontend::FromKeras(source, "quickstart.keras");
  std::cout << "imported " << relay::CountCalls(module.main()->body())
            << " Relay operators\n\n";

  std::cout << "--- partitioning for NeuroPilot (nir.partition_for_nir) ---\n";
  core::NirOptions options;  // CPU+APU targets by default
  const relay::Module partitioned = core::PartitionForNir(module, options);
  const auto regions = partitioned.ExternalFunctions("nir");
  std::cout << regions.size() << " NIR region(s):\n";
  for (const auto& name : regions) {
    std::cout << "  @" << name << " with "
              << relay::CountCalls(partitioned.Get(name)->body()) << " ops\n";
  }

  std::cout << "\n--- building and running ---\n";
  relay::GraphExecutor executor(
      relay::Build(partitioned, core::MakeBuildOptions(options)));
  NDArray input = NDArray::RandomNormal(Shape({1, 1, 32, 32}), 42, 0.5f);
  executor.SetInput("input", input);
  executor.Run();
  const NDArray probabilities = executor.GetOutput(0);
  std::cout << "output: " << probabilities.ToString(10) << "\n";
  std::cout << "simulated latency: " << executor.last_clock().Summary() << "\n\n";

  std::cout << "--- verifying against the TVM-only flow ---\n";
  const auto tvm_only = core::CompileFlow(module, core::FlowKind::kTvmOnly);
  tvm_only->SetInput("input", input);
  tvm_only->Run();
  const bool identical = NDArray::BitEqual(tvm_only->GetOutput(0), probabilities);
  std::cout << "BYOC output " << (identical ? "bit-identical to" : "DIFFERS from")
            << " TVM-only output\n";
  std::cout << "TVM-only simulated latency: " << tvm_only->last_clock().Summary() << "\n";
  return identical ? 0 : 1;
}
