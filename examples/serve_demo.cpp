// Serving demo: many simulated camera streams hitting the in-process
// inference server concurrently.
//
// The server offers the three showcase-style stages (CPU-resident detector,
// CPU+APU anti-spoofing, APU-resident emotion model), keeps warm compiled
// sessions per model x flow, micro-batches same-model requests, and applies
// admission control: when a bounded queue fills, eligible requests degrade
// to their next-best CPU-only flow and the rest are shed explicitly.
//
// Build & run:  ./build/examples/serve_demo [--streams N] [--requests M]
//                                           [--capacity Q] [--overload]
//                                           [--threads=N]
//                                           [--artifact-cache=DIR]
//                                           [--cold-start]
//                                           [--trace[=path]] [--metrics[=path]]
//                                           [--flight-record=path]
//                                           [--http-port=N] [--profile]
//
// --artifact-cache=DIR (default off) points the session pool at a
// content-addressed artifact store: warm-up maps previously compiled
// sessions from disk instead of rebuilding them. --cold-start prints the
// server-construction wall time and the store hit/miss counters.
//
// --threads=N sizes the process-wide worker pool every layer (kernels, batch
// pumps, pipeline stages) schedules on; it overrides TNP_NUM_THREADS and is
// published as the pool/num_threads gauge.
//
// The run ends with the serving metrics: per-model latency percentiles,
// queue-depth high-watermarks, and the shed/fallback/expired counters (see
// README "Serving" for how to read them). `--trace` writes the Chrome-trace
// export (every span tagged with its request's req_id), `--metrics` a
// metrics snapshot (Prometheus text for .prom paths, JSON otherwise), and
// `--flight-record` arms the flight recorder: an overload shed-storm dumps
// the last moments of trace + metrics to the given path automatically.
// `--http-port=N` serves the live debug endpoints (/metrics, /healthz,
// /timeseries, /flightrecord, /profilez, /attribution) on 127.0.0.1:N for
// the run's duration, and the run self-probes them at the end, writing
// healthz_capture.json and metrics_capture.prom next to the binary (CI
// archives both). `--profile` keeps the continuous profiler sampling during
// the load and writes profile_capture.folded (collapsed stacks, feed to
// flamegraph.pl) plus attribution_capture.json (per-phase tail-latency
// decomposition) at the end of the run.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "artifact/store.h"
#include "frontend/common.h"
#include "serve/attribution.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "support/debug_http.h"
#include "support/error.h"
#include "support/flight_recorder.h"
#include "support/profiler.h"
#include "support/string_util.h"
#include "support/table.h"
#include "support/telemetry.h"
#include "support/trace.h"
#include "tune/db.h"

using namespace tnp;
using support::metrics::Registry;

namespace {

relay::Module DemoModel(int channels) {
  using frontend::TypedCall;
  using frontend::TypedVar;
  using frontend::WeightF32;
  using frontend::ZeroBiasF32;
  auto x = TypedVar("data", Shape({1, 3, 32, 32}), DType::kFloat32);
  auto conv = TypedCall(
      "nn.conv2d", {x, WeightF32(Shape({channels, 3, 3, 3}), 1), ZeroBiasF32(channels)},
      relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense =
      TypedCall("nn.dense", {flat, WeightF32(Shape({7, channels}), 2), ZeroBiasF32(7)});
  return relay::Module(relay::MakeFunction({x}, TypedCall("nn.softmax", {dense})));
}

serve::ServedModel Stage(const std::string& name, int channels, core::FlowKind primary,
                         std::optional<core::FlowKind> fallback,
                         const core::FlowCompileSettings& settings) {
  serve::ServedModel model;
  model.name = name;
  model.module = DemoModel(channels);
  model.plan.primary = core::Assignment{primary, 0.0};
  if (fallback.has_value()) model.plan.cpu_fallback = core::Assignment{*fallback, 0.0};
  model.settings = settings;
  return model;
}

/// Write a metrics snapshot: Prometheus text exposition when `path` ends in
/// ".prom", the JSON document otherwise.
void WriteMetricsSnapshot(const std::string& path) {
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write metrics snapshot to " << path << "\n";
    return;
  }
  out << (prometheus ? support::metrics::ExportPrometheus()
                     : support::metrics::ExportJson());
  std::cout << "  wrote " << (prometheus ? "Prometheus" : "JSON")
            << " metrics snapshot to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int streams = 6;
  int requests = 40;
  std::size_t capacity = 8;
  bool overload = false;
  std::string trace_path;
  std::string metrics_path;
  std::string flight_path;
  std::string artifact_cache_dir;
  std::string tuning_db_dir;
  bool cold_start = false;
  int http_port = -1;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> int { return i + 1 < argc ? std::atoi(argv[++i]) : 0; };
    if (arg == "--streams") streams = next();
    else if (arg == "--requests") requests = next();
    else if (arg == "--capacity") capacity = static_cast<std::size_t>(next());
    else if (arg == "--overload") overload = true;
    else if (arg.rfind("--artifact-cache=", 0) == 0) artifact_cache_dir = arg.substr(17);
    else if (arg.rfind("--tuning-db=", 0) == 0) tuning_db_dir = arg.substr(12);
    else if (arg == "--cold-start") cold_start = true;
    else if (arg == "--trace") trace_path = "serve_trace.json";
    else if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    else if (arg == "--metrics") metrics_path = "serve_metrics.json";
    else if (arg.rfind("--metrics=", 0) == 0) metrics_path = arg.substr(10);
    else if (arg.rfind("--flight-record=", 0) == 0) flight_path = arg.substr(16);
    else if (arg.rfind("--http-port=", 0) == 0) http_port = std::atoi(arg.c_str() + 12);
    else if (arg == "--profile") profile = true;
    else if (arg.rfind("--threads=", 0) == 0) {
      const int threads = std::atoi(arg.c_str() + 10);
      if (threads < 1 || !support::ThreadPool::Configure(threads)) {
        std::cerr << "serve_demo: invalid --threads value \"" << arg.substr(10)
                  << "\" (expected a positive integer)\n";
        return 2;
      }
    }
  }
  if (streams < 1 || requests < 1 || capacity < 1) {
    std::cerr << "usage: serve_demo [--streams N] [--requests M] [--capacity Q]"
                 " [--overload] [--threads=N] [--artifact-cache=DIR]"
                 " [--tuning-db=DIR] [--cold-start]"
                 " [--trace[=path]] [--metrics[=path]]"
                 " [--flight-record=path] [--http-port=N] [--profile]\n";
    return 2;
  }

  if (!trace_path.empty()) {
    support::Tracer::Global().SetCapacity(1 << 16);
    support::Tracer::Global().SetEnabled(true);
  }
  if (!flight_path.empty()) {
    // Armed flight recorder: a shed-storm (overload) automatically preserves
    // the trace tail + metrics snapshot of the moments before the incident.
    support::FlightRecorderOptions flight;
    flight.path = flight_path;
    flight.shed_storm_threshold = 16;
    flight.shed_storm_window_ms = 500.0;
    support::FlightRecorder::Global().Configure(flight);
  }

  if (!tuning_db_dir.empty()) {
    try {
      auto db = std::make_shared<tune::TuningDb>(tuning_db_dir);
      std::cout << "tuning DB: " << tuning_db_dir << " (" << db->size()
                << " records, fingerprint " << db->Fingerprint() << ")\n";
      tune::SetActiveTuningDb(std::move(db));
    } catch (const Error& e) {
      std::cerr << "serve_demo: cannot open tuning DB: " << e.what() << "\n";
      return 2;
    }
  }

  core::FlowCompileSettings compile_settings;
  if (!artifact_cache_dir.empty()) {
    try {
      compile_settings.artifact_cache =
          std::make_shared<artifact::ArtifactStore>(artifact_cache_dir);
    } catch (const Error& e) {
      std::cerr << "serve_demo: cannot open artifact cache: " << e.what() << "\n";
      return 2;
    }
  }

  std::cout << "starting server: 3 models, queue capacity " << capacity
            << ", warm sessions per model x flow\n";
  serve::ServerOptions options;
  options.queue_capacity = capacity;
  options.max_batch = 4;
  const auto warm_start = std::chrono::steady_clock::now();
  serve::InferenceServer server(
      {Stage("detector", 8, core::FlowKind::kByocCpu, std::nullopt, compile_settings),
       Stage("anti-spoof", 12, core::FlowKind::kByocCpuApu, core::FlowKind::kByocCpu,
             compile_settings),
       Stage("emotion", 8, core::FlowKind::kNpApu, core::FlowKind::kNpCpu,
             compile_settings)},
      options);
  if (cold_start) {
    const double warm_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - warm_start)
                               .count();
    const auto* hits = Registry::Global().FindCounter("artifact/cache_hits");
    const auto* misses = Registry::Global().FindCounter("artifact/cache_misses");
    std::cout << "cold start: server warmed in " << warm_ms << " ms (artifact cache "
              << (artifact_cache_dir.empty() ? "off" : artifact_cache_dir) << ", "
              << (hits != nullptr ? hits->value() : 0) << " hits, "
              << (misses != nullptr ? misses->value() : 0) << " misses)\n";
  }

  support::DebugHttpServer http;
  support::TelemetrySampler sampler;
  if (http_port >= 0) {
    support::RegisterSupportEndpoints(http);
    server.health().RegisterWith(http);
    serve::attribution::RegisterAttributionEndpoints(http);
    try {
      http.Start(http_port);
    } catch (const Error& e) {
      std::cerr << "cannot serve debug endpoints: " << e.what() << "\n";
      return 2;
    }
    std::cout << "debug endpoints on http://127.0.0.1:" << http.port()
              << " (/metrics /healthz /timeseries /flightrecord /profilez"
                 " /attribution)\n";
  }
  if (http_port >= 0 || profile) {
    // Keep the time-series collector advancing while the load runs so the
    // /timeseries windows carry live data; each tick also takes one
    // continuous-profiler sample of every pool worker.
    sampler.Start();
  }

  const char* model_names[] = {"detector", "anti-spoof", "emotion"};
  std::vector<serve::ClientStream> clients;
  for (int c = 0; c < streams; ++c) {
    serve::ClientStream stream;
    stream.model = model_names[c % 3];
    stream.inputs = {{"data", NDArray::Full(Shape({1, 3, 32, 32}), DType::kFloat32, 0.5)}};
    stream.priority = c % 3 == 0 ? 1 : 0;  // detector frames preempt
    clients.push_back(std::move(stream));
  }

  serve::LoadResult result;
  if (overload) {
    std::cout << "open-loop overload: " << streams << " streams, " << requests * streams
              << " requests at a saturating rate\n\n";
    result = serve::RunOpenLoop(server, clients, requests * streams, /*rate_rps=*/5000.0);
  } else {
    std::cout << "closed-loop: " << streams << " camera streams x " << requests
              << " frames\n\n";
    result = serve::RunClosedLoop(server, clients, requests);
  }

  support::Table outcome({"submitted", "ok", "shed", "fell back", "expired", "errors",
                          "throughput rps"});
  outcome.AddRow({std::to_string(result.submitted), std::to_string(result.ok),
                  std::to_string(result.shed), std::to_string(result.fell_back),
                  std::to_string(result.expired), std::to_string(result.errors),
                  support::FormatDouble(result.throughput_rps, 1)});
  outcome.Print(std::cout, "  outcome:");

  support::Table latency({"model", "requests", "p50 ms", "p95 ms", "p99 ms"});
  for (const char* name : model_names) {
    const auto* histogram =
        Registry::Global().FindHistogram("serve/model/" + std::string(name) + "/us");
    if (histogram == nullptr) continue;
    const auto summary = histogram->Summarize();
    latency.AddRow({name, std::to_string(summary.count),
                    support::FormatDouble(summary.p50 / 1000.0, 2),
                    support::FormatDouble(summary.p95 / 1000.0, 2),
                    support::FormatDouble(summary.p99 / 1000.0, 2)});
  }
  std::cout << "\n";
  latency.Print(std::cout, "  end-to-end latency (from the metrics registry):");

  support::Table queues({"queue", "peak depth", "bound"});
  for (const char* name : {"cpu", "apu"}) {
    const auto* gauge =
        Registry::Global().FindGauge("serve/queue/" + std::string(name) + "/depth");
    if (gauge == nullptr) continue;
    queues.AddRow({name, support::FormatDouble(gauge->max(), 0), std::to_string(capacity)});
  }
  std::cout << "\n";
  queues.Print(std::cout, "  queue high-watermarks:");

  const auto batch = Registry::Global().GetHistogram("serve/batch/size").Summarize();
  std::cout << "\n  micro-batches: mean " << support::FormatDouble(batch.mean, 2) << ", max "
            << support::FormatDouble(batch.max, 0) << " (cap "
            << options.max_batch << ")\n";
  std::cout << "  session pool: "
            << Registry::Global().GetCounter("serve/pool/compiles").value()
            << " compiles, " << Registry::Global().GetCounter("serve/pool/reuse").value()
            << " warm reuses\n";

  std::cout << "\n";
  if (!trace_path.empty()) {
    support::Tracer::Global().Export(trace_path);
    std::cout << "  wrote Chrome trace to " << trace_path
              << " (chrome://tracing or ui.perfetto.dev; spans carry req_id)\n";
  }
  if (!metrics_path.empty()) WriteMetricsSnapshot(metrics_path);
  if (http_port >= 0) {
    // Self-probe over real loopback HTTP — the same path an external
    // prober exercises — and keep the captures on disk for CI to archive.
    const auto healthz = support::HttpGet(http.port(), "/healthz");
    const auto metrics = support::HttpGet(http.port(), "/metrics");
    if (healthz.status != 0) {
      std::ofstream("healthz_capture.json") << healthz.body;
      std::cout << "  /healthz -> " << healthz.status
                << " (wrote healthz_capture.json)\n";
    } else {
      std::cerr << "  /healthz probe failed: " << healthz.error << "\n";
    }
    if (metrics.status != 0) {
      std::ofstream("metrics_capture.prom") << metrics.body;
      std::cout << "  /metrics -> " << metrics.status
                << " (wrote metrics_capture.prom)\n";
    } else {
      std::cerr << "  /metrics probe failed: " << metrics.error << "\n";
    }
    if (profile) {
      // Short runs can finish inside one sampler cadence; take one
      // synchronous sample so the capture is never empty.
      support::profiler::Profiler::Global().SampleOnce();
      // Prefer the HTTP surface for the profile captures too — same bytes an
      // external scraper would get.
      const auto folded = support::HttpGet(http.port(), "/profilez?format=folded");
      if (folded.status != 0) std::ofstream("profile_capture.folded") << folded.body;
      const auto attribution = support::HttpGet(http.port(), "/attribution");
      if (attribution.status != 0) {
        std::ofstream("attribution_capture.json") << attribution.body;
      }
      std::cout << "  wrote profile_capture.folded and attribution_capture.json\n";
    }
    sampler.Stop();
    http.Stop();
  } else if (profile) {
    sampler.Stop();
    support::profiler::Profiler::Global().SampleOnce();
    std::ofstream("profile_capture.folded")
        << support::profiler::Profiler::Global().ExportFolded();
    std::ofstream("attribution_capture.json")
        << serve::attribution::Ledger::Global().ExportJson();
    std::cout << "  wrote profile_capture.folded and attribution_capture.json\n";
  }
  if (!flight_path.empty() &&
      support::FlightRecorder::Global().dumps() == 0) {
    // No storm fired: dump manually so the run still leaves a record.
    support::FlightRecorder::Global().Dump("end-of-run");
    std::cout << "  wrote flight record to " << flight_path << "\n";
  }

  // A served request either completed or was explicitly refused — nothing
  // may vanish inside the server.
  const bool accounted =
      result.ok + result.shed + result.expired + result.errors == result.submitted;
  std::cout << "\n" << (accounted ? "all requests accounted for" : "REQUESTS LOST") << "\n";
  return accounted ? 0 : 1;
}
