// Model-zoo tour: imports every model through its framework frontend,
// prints graph statistics, partitions for NeuroPilot and reports which of
// the seven flow permutations each model supports — a miniature of the
// paper's Figure 6 evaluation loop.
//
// Build & run:  ./build/examples/model_zoo_tour
#include <iostream>

#include "core/scheduler.h"
#include "relay/visitor.h"
#include "support/string_util.h"
#include "support/table.h"
#include "zoo/zoo.h"

using namespace tnp;

int main() {
  zoo::ZooOptions options;
  options.depth = 0.5;  // representative graphs, quick compiles

  support::Table table({"model", "framework", "dtype", "relay ops", "NIR regions",
                        "supported flows", "best flow", "best ms"});
  for (const auto& info : zoo::AllModels()) {
    const std::string source = zoo::EmitSource(info.name, options);
    const relay::Module module = zoo::Build(info.name, options);
    const int ops = relay::CountCalls(module.main()->body());

    const core::ModelProfile profile = core::ProfileModel(module, info.name);
    std::string regions = "--";
    std::string error;
    const auto byoc = core::TryCompileFlow(module, core::FlowKind::kByocCpuApu, &error);
    if (byoc != nullptr) regions = std::to_string(byoc->NumPartitions());

    const core::Assignment best = core::ComputationScheduler::BestFlow(profile);
    table.AddRow({info.name, info.framework, DTypeName(info.data_type), std::to_string(ops),
                  regions, std::to_string(profile.latency_us.size()) + "/7",
                  core::FlowName(best.flow),
                  support::FormatDouble(best.latency_us / 1000.0, 2)});
    std::cout << info.name << ": " << source.size() << "-byte " << info.framework
              << " model file imported\n";
  }
  std::cout << "\n";
  table.Print(std::cout, "model zoo summary:");
  return 0;
}
