// Table 2 reproduction: the experiment environment. Prints the simulated
// OPPO Reno4 Z 5G / Dimensity 800 specification alongside the analytic
// device-model parameters standing in for the physical silicon.
#include <iostream>

#include "sim/device.h"
#include "support/string_util.h"
#include "support/table.h"

using namespace tnp;

int main() {
  std::cout << "=== Table 2: specifications of the (simulated) experiment environment ===\n\n";

  const sim::PhoneSpec& phone = sim::PhoneSpec::OppoReno4Z();
  support::Table table({"component", "value"});
  table.AddRow({"OS", phone.os});
  table.AddRow({"Chipset", phone.chipset});
  table.AddRow({"CPU", phone.cpu});
  table.AddRow({"GPU", phone.gpu});
  table.AddRow({"APU", phone.apu});
  table.Print(std::cout);

  std::cout << "\n=== analytic device model (stands in for the physical testbed) ===\n\n";
  const sim::Testbed& testbed = sim::Testbed::Dimensity800();
  support::Table model({"device", "fp32 GFLOPS", "int8 GOPS", "mem GB/s", "launch us",
                        "half-peak MACs"});
  for (const sim::DeviceKind kind :
       {sim::DeviceKind::kTvmCpu, sim::DeviceKind::kNeuronCpu, sim::DeviceKind::kNeuronApu}) {
    const sim::DeviceSpec& spec = testbed.Spec(kind);
    model.AddRow({spec.name, support::FormatDouble(spec.fp32_gflops, 0),
                  support::FormatDouble(spec.int8_gops, 0),
                  support::FormatDouble(spec.mem_bandwidth_gbps, 0),
                  support::FormatDouble(spec.launch_overhead_us, 0),
                  support::FormatDouble(spec.half_peak_macs, 0)});
  }
  model.Print(std::cout);
  std::cout << "\nCPU<->APU DMA: " << support::FormatDouble(testbed.transfer_gbps, 1)
            << " GB/s + " << support::FormatDouble(testbed.transfer_latency_us, 0)
            << " us per transfer\n";
  return 0;
}
