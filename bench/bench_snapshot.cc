// Benchmark snapshot for the CI regression gate.
//
// Serializes the repo's key performance numbers to a JSON document
// (`BENCH_pr4.json` at the repo root is the committed baseline) which
// tools/bench_compare diffs against a fresh run, failing on >10% movement of
// any gated metric.
//
// Gated metrics are *deterministic*: static-simulator latency estimates
// (EstimateLatency walks the compiled program against the fixed Dimensity-800
// cost model; no kernel executes) and planned arena footprints. They move
// only when compiler/planner/cost-model behaviour changes — exactly the
// regressions the gate exists to catch — and never from CI machine noise.
// Wall-clock numbers (serving throughput) are recorded too, but with
// `"gate": false`: informational trend data, excluded from pass/fail.
//
// Schema (consumed by tools/bench_compare.cc):
//   {"schema": 1, "metrics": {"<name>": {"value": <num>,
//                                        "better": "lower"|"higher",
//                                        "gate": true|false}, ...}}
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <chrono>
#include <filesystem>

#include "artifact/store.h"
#include "bench/bench_util.h"
#include "core/flows.h"
#include "frontend/common.h"
#include "kernels/dense.h"
#include "kernels/pack.h"
#include "kernels/scratch.h"
#include "serve/attribution.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "relay/build.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/thread_pool.h"
#include "tune/tuner.h"
#include "zoo/zoo.h"

namespace tnp {
namespace {

struct Metric {
  double value = 0.0;
  bool lower_is_better = true;
  bool gate = true;
};

std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void WriteSnapshot(const std::map<std::string, Metric>& metrics,
                   const std::string& path) {
  std::ofstream out(path);
  TNP_CHECK(out.good()) << "cannot open " << path;
  out << "{\n  \"schema\": 1,\n  \"metrics\": {\n";
  bool first = true;
  for (const auto& [name, metric] : metrics) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << name << "\": {\"value\": " << JsonNumber(metric.value)
        << ", \"better\": \"" << (metric.lower_is_better ? "lower" : "higher")
        << "\", \"gate\": " << (metric.gate ? "true" : "false") << "}";
  }
  out << "\n  }\n}\n";
}

// Deterministic serving-stand-in model (mirrors bench/serve_throughput.cc).
relay::Module ConvNet(int channels) {
  using frontend::TypedCall;
  using frontend::TypedVar;
  using frontend::WeightF32;
  using frontend::ZeroBiasF32;
  auto x = TypedVar("data", Shape({1, 3, 32, 32}), DType::kFloat32);
  auto conv = TypedCall(
      "nn.conv2d", {x, WeightF32(Shape({channels, 3, 3, 3}), 1), ZeroBiasF32(channels)},
      relay::Attrs().SetInts("padding", {1, 1}));
  auto relu = TypedCall("nn.relu", {conv});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense =
      TypedCall("nn.dense", {flat, WeightF32(Shape({8, channels}), 2), ZeroBiasF32(8)});
  return relay::Module(relay::MakeFunction({x}, TypedCall("nn.softmax", {dense})));
}

}  // namespace
}  // namespace tnp

int main(int argc, char** argv) {
  using namespace tnp;
  const std::string path = argc > 1 ? argv[1] : "BENCH_pr4.json";

  std::map<std::string, Metric> metrics;

  // ---- 1) static latency estimates: model x flow -------------------------
  // Three models spanning the zoo's frameworks/sizes, three flows spanning
  // TVM-only, BYOC offload, and hybrid placement. TryCompileFlow: a flow
  // that stops compiling simply drops its metric, which bench_compare
  // reports as a missing-key failure — also a regression signal.
  const std::vector<std::string> model_names = {"emotion_cnn", "mobilenet_v2",
                                                "yolov3_tiny"};
  const std::vector<core::FlowKind> flows = {
      core::FlowKind::kTvmOnly, core::FlowKind::kByocApu,
      core::FlowKind::kByocCpuApu};
  for (const std::string& name : model_names) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    bench::ResetArenaWatermark();
    double arena_peak = 0.0;
    for (const core::FlowKind flow : flows) {
      std::string error;
      const core::InferenceSessionPtr session =
          core::TryCompileFlow(module, flow, &error);
      if (session == nullptr) {
        std::cout << "skip " << name << " @ " << core::FlowName(flow) << ": "
                  << error << "\n";
        continue;
      }
      const double sim_us = session->EstimateLatency().total_us();
      metrics["latency/" + name + "/" + core::FlowName(flow) + "/sim_us"] =
          {sim_us, /*lower_is_better=*/true, /*gate=*/true};
      const support::metrics::Gauge* arena =
          support::metrics::Registry::Global().FindGauge("memory/arena/bytes");
      if (arena != nullptr) arena_peak = std::max(arena_peak, arena->max());
    }
    // Peak planned arena across this model's flows: the static memory
    // planner's footprint, deterministic per compiler version.
    metrics["memory/" + name + "/arena_peak_bytes"] =
        {arena_peak, /*lower_is_better=*/true, /*gate=*/true};
  }

  // ---- 2) kernel engine: packed weights + scratch (deterministic) --------
  // Pack sizes depend only on weight shapes and panel geometry; the scratch
  // high-watermark only on kernel shapes. Steady-state packs must stay at
  // zero — compile-time pre-packing means sessions never repack.
  {
    const relay::Module module = zoo::Build("mobilenet_v2", bench::BenchOptions());
    const support::metrics::Counter* pack_bytes =
        support::metrics::Registry::Global().FindCounter("kernels/pack/weight_bytes");
    const double bytes_before = pack_bytes != nullptr
                                    ? static_cast<double>(pack_bytes->value())
                                    : 0.0;
    const core::InferenceSessionPtr session =
        core::CompileFlow(module, core::FlowKind::kTvmOnly);
    pack_bytes =
        support::metrics::Registry::Global().FindCounter("kernels/pack/weight_bytes");
    metrics["kernels/mobilenet_v2/packed_weight_bytes"] =
        {(pack_bytes != nullptr ? static_cast<double>(pack_bytes->value()) : 0.0) -
             bytes_before,
         /*lower_is_better=*/true, /*gate=*/true};

    const NDArray input =
        NDArray::Full(Shape({1, 3, 224, 224}), DType::kFloat32, 0.25);
    session->SetInput("x", input);
    session->Run();  // warmup: scratch arena grown, every packable weight packed
    const std::int64_t packs_before = kernels::TotalWeightPacks();
    for (int run = 0; run < 3; ++run) {
      session->SetInput("x", input);
      session->Run();
    }
    metrics["kernels/mobilenet_v2/steady_packs_per_run"] =
        {static_cast<double>(kernels::TotalWeightPacks() - packs_before) / 3.0,
         /*lower_is_better=*/true, /*gate=*/true};
    metrics["kernels/scratch_high_watermark_bytes"] =
        {static_cast<double>(kernels::ThisThreadScratchHighWatermark()),
         /*lower_is_better=*/true, /*gate=*/true};
    // Fold per-worker arena peaks into the registry gauges
    // (kernels/scratch/w<i>/peak_bytes) for the exported snapshot.
    kernels::PublishScratchWorkerGauges();
  }

  // ---- 3) work-stealing pool: scaling structure (deterministic) ----------
  // The same 256x256x256 GEMM dispatched on isolated pools of fixed size.
  // Gated metrics are *structural*, not timed: the ParallelFor chunk fan-out
  // is a pure function of (shape, grain, pool size) — it collapsing means a
  // layer stopped parallelizing — and the overflow/heap-task deltas pin the
  // zero-allocation steady-state submit path. Wall-clock speedups over the
  // 1-thread pool are recorded gate:false (CI cores vary; a one-core runner
  // legitimately shows ~1x).
  {
    const std::int64_t m = 256;
    const NDArray input = NDArray::Full(Shape({m, 256}), DType::kFloat32, 0.25);
    const NDArray weight = NDArray::Full(Shape({256, 256}), DType::kFloat32, 0.5);
    NDArray out = NDArray::Empty(Shape({m, 256}), DType::kFloat32);
    constexpr int kReps = 10;
    double base_us = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      const std::string pool_name = "bench_pool_" + std::to_string(threads);
      support::ThreadPool pool(threads, {/*queue_capacity=*/256, /*max_spares=*/8,
                                         pool_name});
      support::ScopedPool scope(pool);
      auto& registry = support::metrics::Registry::Global();
      kernels::DenseF32(input, weight, NDArray(), out);  // warm: rings, scratch
      const std::int64_t chunks_before =
          registry.GetCounter(pool_name + "/parallel_for/chunks").value();
      const std::int64_t overflow_before =
          registry.GetCounter(pool_name + "/overflow").value();
      const std::int64_t heap_before =
          registry.GetCounter(pool_name + "/heap_tasks").value();
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        kernels::DenseF32(input, weight, NDArray(), out);
      }
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        kReps;
      const std::string suffix = std::to_string(threads) + "t";
      metrics["pool/chunks_per_gemm/" + suffix] = {
          static_cast<double>(
              registry.GetCounter(pool_name + "/parallel_for/chunks").value() -
              chunks_before) /
              kReps,
          /*lower_is_better=*/false, /*gate=*/true};
      metrics["pool/steady_submit_allocs/" + suffix] = {
          static_cast<double>(
              (registry.GetCounter(pool_name + "/overflow").value() -
               overflow_before) +
              (registry.GetCounter(pool_name + "/heap_tasks").value() -
               heap_before)),
          /*lower_is_better=*/true, /*gate=*/true};
      if (threads == 1) base_us = us;
      metrics["pool/gemm_speedup/" + suffix] = {
          base_us > 0.0 ? base_us / us : 0.0, /*lower_is_better=*/false,
          /*gate=*/false};
    }
  }

  // ---- 4) artifact store: cold start + zero-copy load --------------------
  // Build-vs-map wall clocks are informational (machine dependent); the
  // zero-copy invariants are gated and deterministic: a mapped module must
  // perform no weight repacks in steady state and no tensor heap
  // allocations per mapped megabyte (payloads are views into the mapping).
  {
    const relay::Module module = zoo::Build("mobilenet_v2", bench::BenchOptions());
    const std::string store_dir = path + ".artifact_store";
    std::filesystem::remove_all(store_dir);  // stale entries would fake the cold build
    core::FlowCompileSettings cached;
    cached.artifact_cache = std::make_shared<artifact::ArtifactStore>(store_dir);
    auto& registry = support::metrics::Registry::Global();

    const std::int64_t saved_before = registry.GetCounter("artifact/save_bytes").value();
    const auto build_start = std::chrono::steady_clock::now();
    core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);  // build + publish
    const double build_us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - build_start)
                                .count();
    const double saved_bytes = static_cast<double>(
        registry.GetCounter("artifact/save_bytes").value() - saved_before);

    const std::int64_t load_allocs_before = NDArray::TotalAllocations();
    const auto load_start = std::chrono::steady_clock::now();
    const core::InferenceSessionPtr loaded =
        core::CompileFlow(module, core::FlowKind::kTvmOnly, cached);  // mmap hit
    const double load_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - load_start)
                               .count();
    const double load_allocs =
        static_cast<double>(NDArray::TotalAllocations() - load_allocs_before);

    const NDArray input =
        NDArray::Full(Shape({1, 3, 224, 224}), DType::kFloat32, 0.25);
    loaded->SetInput("x", input);
    loaded->Run();  // warmup: arena views materialized
    const std::int64_t repacks_before = kernels::TotalWeightPacks();
    for (int run = 0; run < 3; ++run) {
      loaded->SetInput("x", input);
      loaded->Run();
    }
    metrics["artifact/steady_repacks_after_load"] =
        {static_cast<double>(kernels::TotalWeightPacks() - repacks_before),
         /*lower_is_better=*/true, /*gate=*/true};
    metrics["artifact/load_allocs_per_mb"] =
        {saved_bytes > 0.0 ? load_allocs / (saved_bytes / (1024.0 * 1024.0)) : 0.0,
         /*lower_is_better=*/true, /*gate=*/true};
    metrics["artifact/save_bytes"] =
        {saved_bytes, /*lower_is_better=*/true, /*gate=*/false};
    metrics["artifact/cold_start_build_us"] =
        {build_us, /*lower_is_better=*/true, /*gate=*/false};
    metrics["artifact/cold_start_load_us"] =
        {load_us, /*lower_is_better=*/true, /*gate=*/false};
  }

  // ---- 5) serving throughput (wall clock, informational) -----------------
  {
    std::vector<serve::ServedModel> models;
    {
      serve::ServedModel model;
      model.name = "snapshot-cpu";
      model.module = ConvNet(8);
      model.plan.primary = core::Assignment{core::FlowKind::kByocCpu, 0.0};
      models.push_back(std::move(model));
    }
    serve::ServerOptions options;
    options.queue_capacity = 32;
    options.max_batch = 4;
    serve::InferenceServer server(models, options);

    std::vector<serve::ClientStream> streams(4);
    for (auto& stream : streams) {
      stream.model = "snapshot-cpu";
      stream.inputs = {{"data", NDArray::Full(Shape({1, 3, 32, 32}),
                                              DType::kFloat32, 0.25)}};
    }
    const serve::LoadResult result = serve::RunClosedLoop(server, streams, 16);
    metrics["serve/closed_loop/throughput_rps"] =
        {result.throughput_rps, /*lower_is_better=*/false, /*gate=*/false};
    metrics["serve/closed_loop/ok"] =
        {static_cast<double>(result.ok), /*lower_is_better=*/false,
         /*gate=*/false};

    // Health snapshot after the run: the state-machine level (0 = healthy)
    // and the worst SLO burn rate seen by the monitor's evaluation. Wall
    // clock dependent, so informational like the throughput numbers.
    server.health().Evaluate();
    metrics["serve/health/state"] =
        {static_cast<double>(static_cast<int>(server.health().state())),
         /*lower_is_better=*/true, /*gate=*/false};
    metrics["serve/health/worst_burn"] =
        {server.health().last_signals().worst_burn, /*lower_is_better=*/true,
         /*gate=*/false};
  }

  // ---- 6) continuous profiler + attribution: alloc-free steady state -----
  // The observability hot paths must cost nothing at steady state: the
  // sampler's fold pass and the ledger's Complete() fold both count every
  // heap excursion in their own alloc_events counters (the only allocating
  // branch — tail-based trace retention — is disabled here by an
  // unreachable threshold). Gated at exactly zero allocations per sample.
  {
    serve::attribution::LedgerOptions ledger_options;
    ledger_options.tail_slow_us = 1e15;  // steady state: no tail retention
    serve::attribution::Ledger::Global().Configure(ledger_options);
    support::profiler::Profiler::Global().Reset();
    constexpr int kSamples = 256;
    {
      support::profiler::LabelScope bench_label("bench:prof_gate");
      for (int i = 0; i < kSamples; ++i) {
        support::profiler::Profiler::Global().SampleOnce();
        serve::attribution::PhaseStamps stamps;
        stamps.req_id = static_cast<std::uint64_t>(i + 1);
        stamps.submit_us = 1000.0 * i;
        stamps.queued_us = stamps.submit_us + 5.0;
        stamps.pop_begin_us = stamps.submit_us + 10.0;
        stamps.popped_us = stamps.submit_us + 20.0;
        stamps.session_us = stamps.submit_us + 30.0;
        stamps.run_begin_us = stamps.submit_us + 40.0;
        stamps.run_end_us = stamps.submit_us + 140.0;
        serve::attribution::Ledger::Global().Complete(
            stamps, serve::ServeStatus::kOk, stamps.submit_us + 150.0);
      }
    }
    const double allocs = static_cast<double>(
        support::profiler::Profiler::Global().stats().alloc_events +
        serve::attribution::Ledger::Global().alloc_events());
    metrics["prof/steady_allocs_per_sample"] = {allocs / kSamples,
                                                /*lower_is_better=*/true,
                                                /*gate=*/true};
    metrics["prof/distinct_stacks"] = {
        static_cast<double>(
            support::profiler::Profiler::Global().stats().distinct_stacks),
        /*lower_is_better=*/false, /*gate=*/false};
  }

  // ---- 7) tuning DB consultation + tuned kernel speedup ------------------
  // A small sweep tunes the stand-in model's GEMM workloads into an
  // in-memory DB, then the model is rebuilt with the DB active. The hit/miss
  // deltas during that rebuild are *structural* (one lookup per prepack-
  // eligible site, a pure function of the model) and gated; the measured
  // default-vs-winner speedup geomean is wall clock and informational.
  {
    const relay::Module module = ConvNet(8);
    const relay::CompiledModulePtr untuned = relay::Build(module);
    const std::vector<tune::Workload> workloads =
        relay::CollectGemmWorkloads(*untuned);
    auto db = std::make_shared<tune::TuningDb>();
    tune::TuneOptions tune_options;
    tune_options.budget_ms = 500.0;
    tune_options.repetitions = 3;
    tune::TuneAll(workloads, db.get(), tune_options);

    auto& registry = support::metrics::Registry::Global();
    const std::int64_t hits_before = registry.GetCounter("tune/db_hits").value();
    const std::int64_t misses_before = registry.GetCounter("tune/db_misses").value();
    tune::SetActiveTuningDb(db);
    relay::Build(module);  // every prepack site consults the DB
    tune::SetActiveTuningDb(nullptr);
    metrics["tune/db_hits"] = {
        static_cast<double>(registry.GetCounter("tune/db_hits").value() -
                            hits_before),
        /*lower_is_better=*/false, /*gate=*/true};
    metrics["tune/db_misses"] = {
        static_cast<double>(registry.GetCounter("tune/db_misses").value() -
                            misses_before),
        /*lower_is_better=*/true, /*gate=*/true};

    double log_sum = 0.0;
    int measured = 0;
    for (const tune::TuningRecord& record : db->Records()) {
      if (record.best_us > 0.0 && record.baseline_us > 0.0) {
        log_sum += std::log(record.baseline_us / record.best_us);
        ++measured;
      }
    }
    metrics["kernels/tuned_speedup_geomean"] = {
        measured > 0 ? std::exp(log_sum / measured) : 1.0,
        /*lower_is_better=*/false, /*gate=*/false};
  }

  WriteSnapshot(metrics, path);
  std::cout << "\nwrote " << metrics.size() << " metrics to " << path << "\n";
  return 0;
}
