// Serving-runtime load bench (and acceptance test, wired into CTest):
//
//   1. closed-loop scaling — aggregate throughput must increase from 1 to N
//      concurrent camera-style streams (each with an inter-frame think
//      time): a single stream leaves the device idle between frames, and
//      the server must fill that idle time by multiplexing more streams;
//   2. request-latency percentiles (p50/p95/p99) read back from the metrics
//      registry's "serve/request/us" histogram;
//   3. open-loop overload — at a submission rate beyond capacity the server
//      must shed or CPU-fall-back requests (nonzero serve/shed or
//      serve/fallback) while every queue stays within its configured bound,
//      and the per-priority shed counters (serve/shed/p<N>) must account
//      for every shed request;
//   4. steady-state memory — a warm serving loop with caller-provided
//      buffers performs zero tensor heap allocations.
//
// The closed-loop phase also runs a TelemetrySampler so the windowed
// time-series collector fills, and reports the steady-window (last 10s)
// p50/p95/p99 alongside the whole-run registry percentiles.
//
// Any violated property prints FAIL and the process exits nonzero.
// `--quick` shrinks request counts (the CTest configuration).
#include <cstring>
#include <iostream>

#include "bench/bench_util.h"
#include "frontend/common.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "support/telemetry.h"
#include "support/timeseries.h"

using namespace tnp;
using support::metrics::Registry;

namespace {

/// Conv net sized by `width`; every flow supports it.
relay::Module ConvNet(int channels) {
  using frontend::TypedCall;
  using frontend::TypedVar;
  using frontend::WeightF32;
  using frontend::ZeroBiasF32;
  auto x = TypedVar("data", Shape({1, 3, 32, 32}), DType::kFloat32);
  auto conv1 = TypedCall(
      "nn.conv2d", {x, WeightF32(Shape({channels, 3, 3, 3}), 1), ZeroBiasF32(channels)},
      relay::Attrs().SetInts("padding", {1, 1}));
  auto relu1 = TypedCall("nn.relu", {conv1});
  auto conv2 = TypedCall(
      "nn.conv2d",
      {relu1, WeightF32(Shape({channels, channels, 3, 3}), 2), ZeroBiasF32(channels)},
      relay::Attrs().SetInts("padding", {1, 1}));
  auto relu2 = TypedCall("nn.relu", {conv2});
  auto pool = TypedCall("nn.global_avg_pool2d", {relu2});
  auto flat = TypedCall("nn.batch_flatten", {pool});
  auto dense =
      TypedCall("nn.dense", {flat, WeightF32(Shape({8, channels}), 3), ZeroBiasF32(8)});
  return relay::Module(relay::MakeFunction({x}, TypedCall("nn.softmax", {dense})));
}

serve::ServedModel Served(const std::string& name, int channels, core::FlowKind primary,
                          std::optional<core::FlowKind> fallback = std::nullopt) {
  serve::ServedModel model;
  model.name = name;
  model.module = ConvNet(channels);
  model.plan.primary = core::Assignment{primary, 0.0};
  if (fallback.has_value()) model.plan.cpu_fallback = core::Assignment{*fallback, 0.0};
  return model;
}

NDArray Input() { return NDArray::Full(Shape({1, 3, 32, 32}), DType::kFloat32, 0.25); }

std::vector<serve::ClientStream> MakeStreams(int count, bool with_buffers,
                                             double think_time_us = 0.0) {
  // Round-robin over the served models: even streams hit the CPU-resident
  // detector stand-in, odd streams the APU-resident one. Closed-loop
  // streams model cameras with an inter-frame gap (`think_time_us`): one
  // such stream leaves the device idle most of the time, so aggregate
  // throughput grows with the number of multiplexed streams until the
  // device saturates — the property phase 1 asserts.
  std::vector<serve::ClientStream> streams;
  for (int c = 0; c < count; ++c) {
    serve::ClientStream stream;
    stream.model = c % 2 == 0 ? "det-cpu" : "emo-apu";
    stream.inputs = {{"data", Input()}};
    stream.priority = c % 2 == 0 ? 1 : 0;  // detector-style streams preempt
    stream.think_time_us = think_time_us;
    if (with_buffers) {
      stream.output_buffers = {NDArray::Zeros(Shape({1, 8}), DType::kFloat32)};
    }
    streams.push_back(std::move(stream));
  }
  return streams;
}

int failures = 0;

void Check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int per_client = quick ? 24 : 100;

  std::cout << "=== serve_throughput: concurrent multi-client serving ===\n\n";

  std::vector<serve::ServedModel> models;
  models.push_back(Served("det-cpu", 8, core::FlowKind::kByocCpu));
  models.push_back(Served("emo-apu", 8, core::FlowKind::kNpApu, core::FlowKind::kNpCpu));

  // ---- 1) closed-loop scaling -------------------------------------------
  double thr_one = 0.0;
  double thr_max = 0.0;
  {
    serve::ServerOptions options;
    options.queue_capacity = 32;
    options.max_batch = 4;
    serve::InferenceServer server(models, options);

    // Camera-style streams: ~3ms between frames per stream. One stream
    // leaves the server mostly idle; throughput must grow as more streams
    // multiplex onto it.
    const double think_us = 3000.0;
    auto& steady_window =
        support::timeseries::Collector::Global().TrackHistogram("serve/request/us");
    support::TelemetrySampler sampler;
    sampler.Start();
    support::Table table({"client streams", "ok", "shed", "throughput rps",
                          "p50 ms", "p95 ms", "p99 ms"});
    for (const int clients : {1, 2, 4, 8}) {
      auto& request_us = Registry::Global().GetHistogram("serve/request/us");
      request_us.Reset();
      const serve::LoadResult result =
          serve::RunClosedLoop(server, MakeStreams(clients, false, think_us), per_client);
      const auto summary = request_us.Summarize();
      table.AddRow({std::to_string(clients), std::to_string(result.ok),
                    std::to_string(result.shed),
                    support::FormatDouble(result.throughput_rps, 1),
                    bench::Ms(summary.p50), bench::Ms(summary.p95), bench::Ms(summary.p99)});
      if (clients == 1) thr_one = result.throughput_rps;
      thr_max = std::max(thr_max, result.throughput_rps);
    }
    table.Print(std::cout, "  closed-loop scaling (" + std::to_string(per_client) +
                               " requests/client):");
    std::cout << "\n";
    sampler.Stop();
    support::timeseries::Collector::Global().Tick();  // pull the final samples
    const auto steady = steady_window.Summarize(10);
    std::cout << "  steady-window (last 10s, via time-series collector): "
              << steady.count << " samples, p50 " << bench::Ms(steady.p50) << " ms, p95 "
              << bench::Ms(steady.p95) << " ms, p99 " << bench::Ms(steady.p99) << " ms\n";
    Check(steady.count > 0 && steady.p50 <= steady.p99,
          "windowed time-series percentiles populated and ordered");
    Check(thr_max > thr_one * 1.15,
          "aggregate throughput scales with concurrent streams (1 -> N: " +
              support::FormatDouble(thr_one, 1) + " -> " + support::FormatDouble(thr_max, 1) +
              " rps)");
    const auto batch_summary = Registry::Global().GetHistogram("serve/batch/size").Summarize();
    std::cout << "  micro-batch size: mean " << support::FormatDouble(batch_summary.mean, 2)
              << ", max " << support::FormatDouble(batch_summary.max, 0) << "\n\n";
  }

  // ---- 2) open-loop overload --------------------------------------------
  {
    const std::size_t capacity = 4;
    Registry::Global().GetGauge("serve/queue/cpu/depth").Reset();
    Registry::Global().GetGauge("serve/queue/apu/depth").Reset();
    const std::int64_t shed_before =
        Registry::Global().GetCounter("serve/shed").value();
    const std::int64_t fallback_before =
        Registry::Global().GetCounter("serve/fallback").value();

    serve::ServerOptions options;
    options.queue_capacity = capacity;
    serve::InferenceServer server(models, options);

    // Saturating schedule: at least 3x the closed-loop capacity measured
    // above (and never below 2k rps even if the measurement came in low).
    const double rate = std::max(2000.0, 3.0 * thr_max);
    const int total = quick ? 300 : 1200;
    const serve::LoadResult result =
        serve::RunOpenLoop(server, MakeStreams(4, false), total, rate);

    support::Table table({"submitted", "ok", "shed", "fell back", "expired"});
    table.AddRow({std::to_string(result.submitted), std::to_string(result.ok),
                  std::to_string(result.shed), std::to_string(result.fell_back),
                  std::to_string(result.expired)});
    table.Print(std::cout, "  open-loop overload @ " +
                               support::FormatDouble(rate, 0) + " rps:");
    std::cout << "\n";

    const std::int64_t shed_delta =
        Registry::Global().GetCounter("serve/shed").value() - shed_before;
    const std::int64_t fallback_delta =
        Registry::Global().GetCounter("serve/fallback").value() - fallback_before;
    Check(shed_delta + fallback_delta > 0,
          "overload sheds or falls back (serve/shed " + std::to_string(shed_delta) +
              ", serve/fallback " + std::to_string(fallback_delta) + ")");
    const double cpu_peak = Registry::Global().GetGauge("serve/queue/cpu/depth").max();
    const double apu_peak = Registry::Global().GetGauge("serve/queue/apu/depth").max();
    Check(cpu_peak <= static_cast<double>(capacity) &&
              apu_peak <= static_cast<double>(capacity),
          "queue depth stays within its bound (cpu peak " +
              support::FormatDouble(cpu_peak, 0) + ", apu peak " +
              support::FormatDouble(apu_peak, 0) + ", bound " + std::to_string(capacity) +
              ")");
    Check(result.ok > 0, "served useful work under overload");
  }

  // ---- 3) steady-state zero-allocation serving --------------------------
  {
    serve::InferenceServer server(models, {});
    const auto streams = MakeStreams(2, /*with_buffers=*/true);
    serve::RunClosedLoop(server, streams, 4);  // warm every session
    const std::int64_t allocs_before = NDArray::TotalAllocations();
    const serve::LoadResult result = serve::RunClosedLoop(server, streams, quick ? 8 : 32);
    const std::int64_t alloc_delta = NDArray::TotalAllocations() - allocs_before;
    std::cout << "\n  steady-state: " << result.ok << " requests, tensor allocations delta "
              << alloc_delta << "\n";
    Check(alloc_delta == 0, "warm serving performs zero tensor heap allocations");
  }

  std::cout << "\n"
            << (failures == 0 ? "all serving properties hold"
                              : std::to_string(failures) + " propertie(s) violated")
            << "\n";
  return failures == 0 ? 0 : 1;
}
