// Table 1 reproduction (standalone): every zoo model with its source
// framework, task, data type, canonical input size and graph statistics,
// plus the static memory plan's footprint (peak arena bytes and tensor
// allocations per steady-state run — zero with pre-planned sessions).
#include <iostream>

#include "bench/bench_util.h"
#include "relay/visitor.h"

using namespace tnp;

int main() {
  std::cout << "=== Table 1: models used for testing and their data types ===\n\n";

  support::Table table({"Model", "Data Type", "Framework", "Task", "Input", "Relay ops",
                        "NIR subgraphs", "Arena KiB", "Allocs/run"});
  for (const auto& info : zoo::AllModels()) {
    zoo::ZooOptions options = bench::BenchOptions();
    const relay::Module module = zoo::Build(info.name, options);
    const int ops = relay::CountCalls(module.main()->body());
    std::string partitions = "--";
    bool byoc_ok = false;
    std::string error;
    {
      const auto byoc_session =
          core::TryCompileFlow(module, core::FlowKind::kByocCpuApu, &error);
      if (byoc_session != nullptr) {
        partitions = std::to_string(byoc_session->NumPartitions());
        byoc_ok = true;
      }
    }

    // Steady-state memory of the best-supported flow (BYOC when it compiles,
    // TVM-only otherwise). The watermark resets while no session is alive so
    // each model reports its own peak.
    std::string arena_kib = "--";
    std::string allocs = "--";
    {
      bench::ResetArenaWatermark();
      const auto session = core::TryCompileFlow(
          module, byoc_ok ? core::FlowKind::kByocCpuApu : core::FlowKind::kTvmOnly, &error);
      if (session != nullptr) {
        bench::BindZeroInputs(session, module);
        const bench::MemoryStats stats =
            bench::MeasureRunMemory([&session] { session->Run(); });
        arena_kib = bench::Kib(stats.peak_arena_bytes);
        allocs = std::to_string(stats.allocs_per_run);
      }
    }

    table.AddRow({info.name, DTypeName(info.data_type), info.framework, info.task,
                  std::to_string(info.canonical_size) + "x" +
                      std::to_string(info.canonical_size),
                  std::to_string(ops), partitions, arena_kib, allocs});
  }
  table.Print(std::cout);
  std::cout << "\n  Arena KiB: peak of the pre-planned per-session arenas during one run\n"
               "  Allocs/run: tensor heap allocations in one steady-state inference\n";
  return 0;
}
