// Table 1 reproduction (standalone): every zoo model with its source
// framework, task, data type, canonical input size and graph statistics.
#include <iostream>

#include "bench/bench_util.h"
#include "relay/visitor.h"

using namespace tnp;

int main() {
  std::cout << "=== Table 1: models used for testing and their data types ===\n\n";

  support::Table table({"Model", "Data Type", "Framework", "Task", "Input", "Relay ops",
                        "NIR subgraphs"});
  for (const auto& info : zoo::AllModels()) {
    zoo::ZooOptions options = bench::BenchOptions();
    const relay::Module module = zoo::Build(info.name, options);
    const int ops = relay::CountCalls(module.main()->body());
    std::string partitions = "--";
    std::string error;
    const auto session =
        core::TryCompileFlow(module, core::FlowKind::kByocCpuApu, &error);
    if (session != nullptr) partitions = std::to_string(session->NumPartitions());
    table.AddRow({info.name, DTypeName(info.data_type), info.framework, info.task,
                  std::to_string(info.canonical_size) + "x" +
                      std::to_string(info.canonical_size),
                  std::to_string(ops), partitions});
  }
  table.Print(std::cout);
  return 0;
}
