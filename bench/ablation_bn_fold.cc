// Ablation: batch-norm folding (TVM's SimplifyInference analogue). Folding
// the per-channel scale/shift into conv weights removes one memory-bound op
// per conv+BN pair. TVM-only flow, so the effect is isolated from BYOC.
#include <iostream>

#include "bench/bench_util.h"
#include "relay/build.h"
#include "relay/pass.h"
#include "relay/visitor.h"

using namespace tnp;

int main() {
  std::cout << "=== Ablation: batch-norm folding (TVM-only flow) ===\n\n";

  const char* models[] = {"mobilenet_v1", "mobilenet_v2", "densenet", "inception_v3",
                          "yolov3_tiny"};
  support::Table table({"model", "BN ops", "unfused ms", "unfused+fold ms", "fold speedup",
                        "fused ms", "fused+fold ms"});
  for (const char* name : models) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    const int bn_ops = relay::CountCalls(module.main()->body(), "nn.batch_norm");

    const auto latency = [&module](bool fuse, bool fold) {
      relay::BuildOptions options;
      options.enable_fusion = fuse;
      options.fold_batch_norm = fold;
      return relay::Build(module, options)->EstimateLatency().total_us();
    };
    const double unfused = latency(false, false);
    const double unfused_fold = latency(false, true);
    const double fused = latency(true, false);
    const double fused_fold = latency(true, true);
    table.AddRow({name, std::to_string(bn_ops), bench::Ms(unfused), bench::Ms(unfused_fold),
                  support::FormatDouble(unfused / unfused_fold, 2), bench::Ms(fused),
                  bench::Ms(fused_fold)});
  }
  table.Print(std::cout);
  std::cout << "\n  BN folding pays on per-op dispatch paths (unfused columns). With\n"
            << "  operator fusion enabled the BN is already absorbed into its conv's\n"
            << "  fused group, so folding is latency-neutral there — the two\n"
            << "  optimizations are substitutes for this cost, not complements.\n"
            << "  Numerics are preserved to float rounding\n"
            << "  (tests/test_relay_passes.cc, FoldBatchNormPass suite).\n";
  return 0;
}
