// Figure 6 + Table 1 reproduction: inference time of the wider model zoo
// (densenet, inception-resnet v2, inception v3/v4, mobilenet v1/v2, nasnet,
// plus the quantized inception v3 and mobilenet v1/v2) across the seven
// target permutations. "Results show the same pattern": TVM-only slowest,
// NeuroPilot-only bars missing where ops are unsupported.
#include <iostream>

#include "bench/bench_util.h"

using namespace tnp;

int main() {
  const char* models[] = {
      "densenet",        "inception_resnet_v2", "inception_v3",
      "inception_v4",    "mobilenet_v1",        "mobilenet_v2",
      "nasnet",          "inception_v3_quant",  "mobilenet_v1_quant",
      "mobilenet_v2_quant",
  };

  std::cout << "=== Figure 6: model-zoo inference time per target permutation"
            << " (simulated ms) ===\n\n";

  support::Table table(bench::FlowHeader("model"));
  std::vector<core::ModelProfile> profiles;
  for (const char* name : models) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    core::ModelProfile profile = core::ProfileModel(module, name);
    table.AddRow(bench::FlowRow(name, profile));
    profiles.push_back(std::move(profile));
  }
  table.Print(std::cout);

  std::cout << "\n  missing entries (NeuroPilot op-support gaps):\n";
  for (const auto& profile : profiles) bench::PrintUnsupportedReasons(std::cout, profile);

  // Pattern checks the paper's prose makes for this figure.
  int tvm_slowest = 0;
  int byoc_beats_tvm = 0;
  int apu_helps_quant = 0;
  int quant_models = 0;
  for (const auto& profile : profiles) {
    const double tvm = profile.latency_us.at(core::FlowKind::kTvmOnly);
    bool slowest = true;
    for (const auto& [flow, us] : profile.latency_us) {
      if (flow != core::FlowKind::kTvmOnly && us > tvm) slowest = false;
    }
    tvm_slowest += slowest ? 1 : 0;
    byoc_beats_tvm += profile.latency_us.at(core::FlowKind::kByocCpuApu) < tvm ? 1 : 0;
    if (profile.model.find("quant") != std::string::npos) {
      ++quant_models;
      const auto cpu = profile.latency_us.find(core::FlowKind::kNpCpu);
      const auto both = profile.latency_us.find(core::FlowKind::kNpCpuApu);
      if (cpu != profile.latency_us.end() && both != profile.latency_us.end() &&
          both->second < cpu->second) {
        ++apu_helps_quant;
      }
    }
  }
  std::cout << "\n  checks:\n";
  std::cout << "    TVM-only slowest: " << tvm_slowest << "/" << profiles.size()
            << " models\n";
  std::cout << "    BYOC(CPU+APU) beats TVM-only: " << byoc_beats_tvm << "/"
            << profiles.size() << " models\n";
  std::cout << "    APU offload helps quantized models: " << apu_helps_quant << "/"
            << quant_models << "\n";

  // ---- Table 1 (models and data types) ----
  std::cout << "\n=== Table 1: models used for testing and their data types ===\n\n";
  support::Table table1({"Model", "Data Type"});
  for (const char* name : models) {
    const zoo::ModelInfo& info = zoo::Info(name);
    table1.AddRow({name, DTypeName(info.data_type)});
  }
  table1.Print(std::cout);
  return 0;
}
