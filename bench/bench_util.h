// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "relay/pass.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/table.h"
#include "zoo/zoo.h"

namespace tnp {
namespace bench {

/// Build options used by the latency benches: canonical input resolution,
/// full width, reduced block-repeat depth (keeps graphs representative while
/// bounding compile time; the static simulator never executes numerics).
inline zoo::ZooOptions BenchOptions() {
  zoo::ZooOptions options;
  options.depth = 0.5;
  return options;
}

/// Format microseconds as "12.34" (milliseconds, 2 decimals).
inline std::string Ms(double us) { return support::FormatDouble(us / 1000.0, 2); }

/// Format a byte count as "123.4" KiB.
inline std::string Kib(double bytes) { return support::FormatDouble(bytes / 1024.0, 1); }

/// Memory behaviour of one steady-state inference run.
struct MemoryStats {
  std::int64_t allocs_per_run = 0;       ///< tensor heap allocations in one run
  std::int64_t alloc_bytes_per_run = 0;  ///< bytes those allocations requested
  double peak_arena_bytes = 0.0;         ///< high watermark of live arena bytes
};

/// Measure the memory behaviour of `run` in steady state: one warmup call
/// (first runs may bind buffers lazily), then one call bracketed by the
/// process-wide tensor allocation counters. Pre-planned sessions report
/// allocs_per_run == 0 — every intermediate lives in an arena reserved at
/// session creation.
inline MemoryStats MeasureRunMemory(const std::function<void()>& run) {
  run();  // warmup
  const std::int64_t allocs_before = NDArray::TotalAllocations();
  const std::int64_t bytes_before = NDArray::TotalAllocatedBytes();
  run();
  MemoryStats stats;
  stats.allocs_per_run = NDArray::TotalAllocations() - allocs_before;
  stats.alloc_bytes_per_run = NDArray::TotalAllocatedBytes() - bytes_before;
  const support::metrics::Gauge* arena =
      support::metrics::Registry::Global().FindGauge("memory/arena/bytes");
  stats.peak_arena_bytes = arena != nullptr ? arena->max() : 0.0;
  return stats;
}

/// Reset the arena high-watermark gauge. Call between measurements, while no
/// session is alive, so each model reports its own peak.
inline void ResetArenaWatermark() {
  support::metrics::Registry::Global().GetGauge("memory/arena/bytes").Reset();
}

/// Bind an all-zero tensor of each declared input's shape/dtype (numerics
/// are irrelevant to memory measurements).
inline void BindZeroInputs(const core::InferenceSessionPtr& session,
                           const relay::Module& module) {
  const relay::Module typed =
      relay::Sequential({relay::InferType()}).Run(module);
  for (const auto& param : typed.main()->params()) {
    const auto& type = param->checked_type().AsTensor();
    session->SetInput(param->name(), NDArray::Zeros(type.shape, type.dtype));
  }
}

/// One row of a Figure-4/6 style table: model x 7 flow permutations, with
/// "--" where compilation fails (the paper's missing bars). Latencies come
/// from the metrics registry (the gauges the trace-driven ProfileModel
/// published); hand-built profiles without a metrics_prefix fall back to
/// the latency map.
inline std::vector<std::string> FlowRow(const std::string& label,
                                        const core::ModelProfile& profile) {
  std::vector<std::string> row = {label};
  for (const core::FlowKind flow : core::kAllFlows) {
    const support::metrics::Gauge* gauge =
        profile.metrics_prefix.empty()
            ? nullptr
            : support::metrics::Registry::Global().FindGauge(
                  profile.metrics_prefix + "/" + core::FlowName(flow) + "/us");
    if (gauge != nullptr) {
      row.push_back(Ms(gauge->value()));
      continue;
    }
    const auto it = profile.latency_us.find(flow);
    row.push_back(it == profile.latency_us.end() ? "--" : Ms(it->second));
  }
  return row;
}

/// Run `fn` `repetitions` times, routing every wall-clock latency through
/// the registry histogram "bench/<name>/us" (reset first so back-to-back
/// measurements don't mix); returns that histogram's summary.
inline support::metrics::HistogramSummary MeasureRepetitions(
    const std::string& name, int repetitions, const std::function<void()>& fn) {
  support::metrics::Histogram& histogram =
      support::metrics::Registry::Global().GetHistogram("bench/" + name + "/us");
  histogram.Reset();
  for (int i = 0; i < repetitions; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    histogram.Record(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count());
  }
  return histogram.Summarize();
}

/// "min / median / stddev" table cells (milliseconds) for a measurement.
inline std::vector<std::string> RepetitionCells(
    const support::metrics::HistogramSummary& summary) {
  return {Ms(summary.min), Ms(summary.p50), Ms(summary.stddev)};
}

inline std::vector<std::string> FlowHeader(const std::string& first) {
  std::vector<std::string> header = {first};
  for (const core::FlowKind flow : core::kAllFlows) header.push_back(core::FlowName(flow));
  return header;
}

/// Print the per-flow failure reasons below a table (what the paper's prose
/// explains: NeuroPilot does not support as many AI operations as TVM).
inline void PrintUnsupportedReasons(std::ostream& os, const core::ModelProfile& profile) {
  for (const auto& [flow, error] : profile.errors) {
    // Keep only the first line of the error.
    std::string reason = error;
    const auto newline = reason.find('\n');
    if (newline != std::string::npos) reason = reason.substr(0, newline);
    os << "    " << profile.model << " @ " << core::FlowName(flow) << ": " << reason << "\n";
  }
}

}  // namespace bench
}  // namespace tnp
