// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "support/string_util.h"
#include "support/table.h"
#include "zoo/zoo.h"

namespace tnp {
namespace bench {

/// Build options used by the latency benches: canonical input resolution,
/// full width, reduced block-repeat depth (keeps graphs representative while
/// bounding compile time; the static simulator never executes numerics).
inline zoo::ZooOptions BenchOptions() {
  zoo::ZooOptions options;
  options.depth = 0.5;
  return options;
}

/// Format microseconds as "12.34" (milliseconds, 2 decimals).
inline std::string Ms(double us) { return support::FormatDouble(us / 1000.0, 2); }

/// One row of a Figure-4/6 style table: model x 7 flow permutations, with
/// "--" where compilation fails (the paper's missing bars).
inline std::vector<std::string> FlowRow(const std::string& label,
                                        const core::ModelProfile& profile) {
  std::vector<std::string> row = {label};
  for (const core::FlowKind flow : core::kAllFlows) {
    const auto it = profile.latency_us.find(flow);
    row.push_back(it == profile.latency_us.end() ? "--" : Ms(it->second));
  }
  return row;
}

inline std::vector<std::string> FlowHeader(const std::string& first) {
  std::vector<std::string> header = {first};
  for (const core::FlowKind flow : core::kAllFlows) header.push_back(core::FlowName(flow));
  return header;
}

/// Print the per-flow failure reasons below a table (what the paper's prose
/// explains: NeuroPilot does not support as many AI operations as TVM).
inline void PrintUnsupportedReasons(std::ostream& os, const core::ModelProfile& profile) {
  for (const auto& [flow, error] : profile.errors) {
    // Keep only the first line of the error.
    std::string reason = error;
    const auto newline = reason.find('\n');
    if (newline != std::string::npos) reason = reason.substr(0, newline);
    os << "    " << profile.model << " @ " << core::FlowName(flow) << ": " << reason << "\n";
  }
}

}  // namespace bench
}  // namespace tnp
