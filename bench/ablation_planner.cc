// Ablation: Execution Planner policy. The cost-aware greedy planner
// (default) vs a naive first-eligible-device policy, NeuroPilot-only with
// CPU+APU enabled.
#include <iostream>

#include "bench/bench_util.h"

using namespace tnp;

int main() {
  std::cout << "=== Ablation: Execution Planner policy (NP-only, CPU+APU) ===\n\n";

  const char* models[] = {"mobilenet_v1", "mobilenet_v2", "inception_v3",
                          "mobilenet_v1_quant", "inception_v3_quant", "emotion_cnn"};
  support::Table table({"model", "first-device ms", "greedy ms", "dynamic ms",
                        "greedy gain", "dynamic gain"});
  for (const char* name : models) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    core::FlowCompileSettings greedy;
    core::FlowCompileSettings naive;
    naive.policy = neuron::PlannerPolicy::kFirstDevice;
    core::FlowCompileSettings dynamic;
    dynamic.policy = neuron::PlannerPolicy::kDynamic;
    std::string error;
    const auto greedy_session =
        core::TryCompileFlow(module, core::FlowKind::kNpCpuApu, &error, greedy);
    const auto naive_session =
        core::TryCompileFlow(module, core::FlowKind::kNpCpuApu, &error, naive);
    const auto dynamic_session =
        core::TryCompileFlow(module, core::FlowKind::kNpCpuApu, &error, dynamic);
    if (!greedy_session || !naive_session || !dynamic_session) {
      table.AddRow({name, "--", "--", "--", "--", "--"});
      continue;
    }
    const double greedy_us = greedy_session->EstimateLatency().total_us();
    const double naive_us = naive_session->EstimateLatency().total_us();
    const double dynamic_us = dynamic_session->EstimateLatency().total_us();
    table.AddRow({name, bench::Ms(naive_us), bench::Ms(greedy_us), bench::Ms(dynamic_us),
                  support::FormatDouble(naive_us / greedy_us, 2),
                  support::FormatDouble(naive_us / dynamic_us, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n  first-device pins every op to the CPU; greedy is the one-pass\n"
            << "  cost-aware planner; dynamic adds downstream-I/O-aware refinement\n"
            << "  sweeps (the paper's future-work operation-level scheduling).\n";
  return 0;
}
