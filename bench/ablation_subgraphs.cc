// Ablation for the Section 5.1 observation: "the inference time of the
// anti-spoofing model is longer than the other two ... caused by the large
// number of subgraphs in the model".
//
// A family of synthetic models with identical MAC counts but k "breaker"
// ops (sigmoid, which has no Neuron lowering) interleaved between conv
// blocks: each breaker splits the BYOC graph into one more NIR subgraph,
// adding runtime dispatch + CPU<->APU transfer overhead.
#include <iostream>

#include "bench/bench_util.h"
#include "frontend/common.h"

using namespace tnp;

namespace {

relay::Module BreakerModel(int num_blocks, int num_breakers) {
  using frontend::TypedCall;
  auto x = frontend::TypedVar("data", Shape({1, 16, 56, 56}), DType::kFloat32);
  relay::ExprPtr body = x;
  for (int block = 0; block < num_blocks; ++block) {
    body = TypedCall("nn.conv2d",
                     {body, frontend::WeightF32(Shape({16, 16, 3, 3}),
                                                100 + static_cast<std::uint64_t>(block)),
                      frontend::ZeroBiasF32(16)},
                     relay::Attrs().SetInts("padding", {1, 1}));
    body = TypedCall("nn.relu", {body});
    if (block < num_breakers) {
      body = TypedCall("sigmoid", {body});  // no Neuron lowering: breaks the region
    }
  }
  return relay::Module(relay::MakeFunction({x}, body));
}

}  // namespace

int main() {
  std::cout << "=== Ablation: NIR subgraph count vs inference time (Section 5.1) ===\n\n";

  const int kBlocks = 8;
  support::Table table({"breakers", "NIR subgraphs", "BYOC(CPU+APU) ms", "overhead vs 0"});
  double baseline_us = 0.0;
  for (int breakers = 0; breakers <= kBlocks; breakers += 1) {
    const relay::Module module = BreakerModel(kBlocks, breakers);
    const auto session = core::CompileFlow(module, core::FlowKind::kByocCpuApu);
    const double us = session->EstimateLatency().total_us();
    if (breakers == 0) baseline_us = us;
    table.AddRow({std::to_string(breakers), std::to_string(session->NumPartitions()),
                  bench::Ms(us),
                  "+" + support::FormatDouble((us / baseline_us - 1.0) * 100.0, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\n  identical MAC counts in every row; the latency growth is pure\n"
            << "  per-subgraph dispatch + boundary-transfer overhead, reproducing why\n"
            << "  the heavily partitioned anti-spoofing model is slow (Section 5.1).\n";
  return 0;
}
