// Figure 5 reproduction: the pipeline-scheduling prototype. Profiles the
// three showcase models, applies the paper's stage->target policy (object
// detection moved from CPU+APU to CPU-only for exclusive resource use),
// and renders the resulting resource timeline, comparing sequential vs
// pipelined execution and the exhaustive "future work" scheduler.
#include <iostream>

#include "bench/bench_util.h"

using namespace tnp;

int main() {
  std::cout << "=== Figure 5: pipeline scheduling among the showcase models ===\n\n";

  const char* names[] = {"mobilenet_ssd_quant", "deepixbis", "emotion_cnn"};
  const char* labels[] = {"obj-det", "anti-spoof", "emotion"};

  std::vector<relay::Module> modules;
  std::vector<core::ModelProfile> profiles;
  for (int i = 0; i < 3; ++i) {
    relay::Module module = zoo::Build(names[i], bench::BenchOptions());
    core::ModelProfile profile = core::ProfileModel(module, labels[i]);
    modules.push_back(std::move(module));
    profiles.push_back(std::move(profile));
  }

  // Section 5.1: each model's individually best target.
  std::cout << "  computation scheduling (best flow per model):\n";
  for (const auto& profile : profiles) {
    const core::Assignment best = core::ComputationScheduler::BestFlow(profile);
    std::cout << "    " << profile.model << ": " << core::FlowName(best.flow) << " ("
              << bench::Ms(best.latency_us) << " ms)\n";
  }

  const int kFrames = 8;

  // Baseline: every model on its own best flow, executed sequentially.
  std::vector<core::PipelineStage> greedy_stages;
  for (const auto& profile : profiles) {
    const core::Assignment best = core::ComputationScheduler::BestFlow(profile);
    greedy_stages.push_back(core::PipelineStage{profile.model, best.flow, best.latency_us});
  }
  const core::PipelineResult greedy = core::SchedulePipeline(greedy_stages, kFrames);

  // The paper's prototype: first stage pinned to CPU-only.
  const auto prototype_stages = core::PaperPrototypeAssignment(profiles);
  const core::PipelineResult prototype = core::SchedulePipeline(prototype_stages, kFrames);

  // "Future work": exhaustive assignment search.
  const auto exhaustive_stages = core::ChoosePipelineAssignment(profiles, kFrames);
  const core::PipelineResult exhaustive = core::SchedulePipeline(exhaustive_stages, kFrames);

  std::cout << "\n  prototype stage assignment (Figure 5 colours):\n";
  for (const auto& stage : prototype_stages) {
    std::cout << "    " << stage.name << " -> " << core::FlowName(stage.flow) << " ("
              << bench::Ms(stage.latency_us) << " ms/frame)\n";
  }

  support::Table table({"schedule", "makespan ms", "sequential ms", "speedup",
                        "throughput fps"});
  const auto add = [&table, kFrames](const char* label, const core::PipelineResult& result) {
    table.AddRow({label, bench::Ms(result.makespan_us), bench::Ms(result.sequential_us),
                  support::FormatDouble(result.speedup, 2),
                  support::FormatDouble(result.throughput_fps, 1)});
    (void)kFrames;
  };
  std::cout << "\n";
  add("all-best (no exclusivity benefit)", greedy);
  add("paper prototype (det->CPU-only)", prototype);
  add("exhaustive search (future work)", exhaustive);
  table.Print(std::cout, "  " + std::to_string(kFrames) + "-frame schedules:");

  std::cout << "\n  prototype timeline (" << kFrames << " frames):\n"
            << prototype.timeline.RenderAscii(96) << "\n";

  // Pipeline depth sweep: throughput saturates once the pipeline is full.
  support::Table sweep({"frames", "makespan ms", "throughput fps"});
  for (const int frames : {1, 2, 4, 8, 16, 32}) {
    const core::PipelineResult result = core::SchedulePipeline(prototype_stages, frames);
    sweep.AddRow({std::to_string(frames), bench::Ms(result.makespan_us),
                  support::FormatDouble(result.throughput_fps, 1)});
  }
  std::cout << "\n";
  sweep.Print(std::cout, "  pipeline depth sweep (prototype assignment):");

  // Scheduling cost itself, measured over repetitions through the metrics
  // registry's latency histogram (min/median/stddev).
  support::Table cost({"scheduler", "min ms", "median ms", "stddev ms"});
  const auto measure = [&cost, &profiles, kFrames](const char* label,
                                                   const std::function<void()>& fn) {
    const auto summary = bench::MeasureRepetitions(label, 16, fn);
    std::vector<std::string> row = {label};
    for (const auto& cell : bench::RepetitionCells(summary)) row.push_back(cell);
    cost.AddRow(row);
    (void)profiles;
    (void)kFrames;
  };
  measure("prototype", [&] { core::SchedulePipeline(prototype_stages, kFrames); });
  measure("exhaustive", [&] { core::ChoosePipelineAssignment(profiles, kFrames); });
  std::cout << "\n";
  cost.Print(std::cout, "  scheduling cost over 16 repetitions:");

  // Steady-state memory per pipeline stage: each stage holds one pre-planned
  // session whose arena is reused across frames, so a warm pipeline performs
  // zero tensor allocations per frame.
  support::Table memory({"stage", "flow", "peak arena KiB", "allocs/run"});
  for (int i = 0; i < 3; ++i) {
    const core::Assignment best = core::ComputationScheduler::BestFlow(profiles[i]);
    bench::ResetArenaWatermark();
    std::string error;
    const auto session = core::TryCompileFlow(modules[i], best.flow, &error);
    if (session == nullptr) {
      memory.AddRow({labels[i], core::FlowName(best.flow), "--", "--"});
      continue;
    }
    bench::BindZeroInputs(session, modules[i]);
    const bench::MemoryStats stats =
        bench::MeasureRunMemory([&session] { session->Run(); });
    memory.AddRow({labels[i], core::FlowName(best.flow), bench::Kib(stats.peak_arena_bytes),
                   std::to_string(stats.allocs_per_run)});
  }
  std::cout << "\n";
  memory.Print(std::cout, "  per-stage steady-state memory (pre-planned arenas):");
  return 0;
}
