// Observability demo, wired into CTest: runs the showcase pipeline with
// tracing enabled, exports the Chrome-trace JSON, and fails if the export
// is empty, malformed, or missing spans from any of the major layers
// (Relay passes, the Neuron Execution Planner, kernel dispatch, pipeline
// stages). Load the written file in chrome://tracing or ui.perfetto.dev.
#include <iostream>
#include <set>
#include <string>

#include "support/metrics.h"
#include "support/trace.h"
#include "vision/app.h"

using namespace tnp;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "trace_demo.json";
  support::Tracer::Global().SetEnabled(true);

  vision::ShowcaseApp app;  // compiles all three models (passes + planner)
  const vision::Scene scene = vision::Scene::Random(320, 240, 3, 1, /*seed=*/11);
  const vision::RunSummary summary = app.RunPipelined(scene, /*num_frames=*/4);
  if (summary.frames.size() != 4) {
    std::cerr << "pipelined run lost frames: " << summary.frames.size() << " of 4\n";
    return 1;
  }

  const std::string json = support::Tracer::Global().ExportChromeTrace();
  if (json.empty()) {
    std::cerr << "exported trace is empty\n";
    return 1;
  }
  std::string error;
  if (!support::ValidateTraceJson(json, &error)) {
    std::cerr << "exported trace JSON is malformed: " << error << "\n";
    return 1;
  }

  std::set<std::string> categories;
  for (const auto& event : support::Tracer::Global().Snapshot()) {
    categories.insert(event.category);
  }
  bool ok = true;
  for (const char* layer : {"relay.pass", "neuron.planner", "kernel", "pipeline"}) {
    if (categories.count(layer) == 0) {
      std::cerr << "no spans recorded for layer '" << layer << "'\n";
      ok = false;
    }
  }
  if (!ok) return 1;

  support::Tracer::Global().Export(path);
  std::cout << "wrote " << path << " (" << json.size() << " bytes, "
            << support::Tracer::Global().Snapshot().size() << " events, "
            << categories.size() << " categories)\n\ncategories:";
  for (const auto& category : categories) std::cout << " " << category;
  std::cout << "\n\n=== metrics registry ===\n"
            << support::metrics::Registry::Global().DumpText();
  return 0;
}
