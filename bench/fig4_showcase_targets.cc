// Figure 4 reproduction: inference time of the three application-showcase
// models (face anti-spoofing / object detection / emotion detection) across
// the seven target permutations. NeuroPilot-only entries are missing ("--")
// exactly where NeuroPilot lacks operator support, and TVM-only is the
// slowest column — the paper's two headline observations.
#include <iostream>

#include "bench/bench_util.h"

using namespace tnp;

int main() {
  struct ShowcaseModel {
    const char* zoo_name;
    const char* label;
  };
  const ShowcaseModel models[] = {
      {"deepixbis", "anti-spoofing (PyTorch)"},
      {"mobilenet_ssd_quant", "object detection (TFLite, int8)"},
      {"emotion_cnn", "emotion detection (Keras)"},
  };

  std::cout << "=== Figure 4: showcase-model inference time per target permutation"
            << " (simulated ms) ===\n\n";

  support::Table table(bench::FlowHeader("model"));
  std::vector<core::ModelProfile> profiles;
  for (const auto& model : models) {
    const relay::Module module = zoo::Build(model.zoo_name, bench::BenchOptions());
    core::ModelProfile profile = core::ProfileModel(module, model.zoo_name);
    table.AddRow(bench::FlowRow(model.label, profile));
    profiles.push_back(std::move(profile));
  }
  table.Print(std::cout);

  std::cout << "\n  missing entries (NeuroPilot op-support gaps):\n";
  for (const auto& profile : profiles) bench::PrintUnsupportedReasons(std::cout, profile);

  // Verify the paper's qualitative claims and report them.
  std::cout << "\n  checks:\n";
  bool tvm_slowest = true;
  for (const auto& profile : profiles) {
    const double tvm = profile.latency_us.at(core::FlowKind::kTvmOnly);
    for (const auto& [flow, us] : profile.latency_us) {
      if (flow != core::FlowKind::kTvmOnly && us > tvm) tvm_slowest = false;
    }
  }
  std::cout << "    TVM-only slowest for every model: " << (tvm_slowest ? "yes" : "NO")
            << "\n";

  const auto best = [](const core::ModelProfile& profile) {
    return core::ComputationScheduler::BestFlow(profile).flow;
  };
  std::cout << "    best target per model (Section 5.1 computation scheduling):\n";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::cout << "      " << models[i].label << " -> " << core::FlowName(best(profiles[i]))
              << "\n";
  }

  // Subgraph-count note (Section 5.1's anti-spoofing observation).
  const auto anti = core::CompileFlow(zoo::Build("deepixbis", bench::BenchOptions()),
                                      core::FlowKind::kByocCpuApu);
  const auto emo = core::CompileFlow(zoo::Build("emotion_cnn", bench::BenchOptions()),
                                     core::FlowKind::kByocCpuApu);
  std::cout << "    NIR subgraphs: anti-spoofing=" << anti->NumPartitions()
            << ", emotion=" << emo->NumPartitions()
            << " (many subgraphs -> extra dispatch/transfer overhead)\n";
  return 0;
}
