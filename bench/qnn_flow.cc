// Section 4.2 / 3.3 claim: the augmented QNN flow performs comparably to
// the float flow through BYOC ("we found that the performance was similar
// to the original flow") while the quantized model is smaller and runs far
// faster on the APU.
#include <iostream>

#include "bench/bench_util.h"
#include "relay/visitor.h"

using namespace tnp;

namespace {

struct Pair {
  const char* float_model;
  const char* quant_model;
};

double FlowUs(const char* name, core::FlowKind flow) {
  const relay::Module module = zoo::Build(name, bench::BenchOptions());
  std::string error;
  const auto session = core::TryCompileFlow(module, flow, &error);
  return session ? session->EstimateLatency().total_us() : -1.0;
}

std::int64_t WeightBytes(const char* name) {
  const relay::Module module = zoo::Build(name, bench::BenchOptions());
  std::int64_t bytes = 0;
  for (const auto& node : relay::PostOrder(module.main()->body())) {
    if (node->kind() == relay::ExprKind::kConstant) {
      bytes += static_cast<std::int64_t>(
          relay::As<relay::Constant>(node)->data().SizeBytes());
    }
  }
  return bytes;
}

}  // namespace

int main() {
  std::cout << "=== QNN flow effectiveness (Sections 3.3 / 4.2) ===\n\n";

  const Pair pairs[] = {
      {"mobilenet_ssd", "mobilenet_ssd_quant"},
      {"mobilenet_v1", "mobilenet_v1_quant"},
      {"mobilenet_v2", "mobilenet_v2_quant"},
      {"inception_v3", "inception_v3_quant"},
  };

  support::Table table({"model pair", "float BYOC ms", "quant BYOC ms", "quant speedup",
                        "float MB", "quant MB", "size ratio"});
  for (const auto& pair : pairs) {
    const double float_us = FlowUs(pair.float_model, core::FlowKind::kByocCpuApu);
    const double quant_us = FlowUs(pair.quant_model, core::FlowKind::kByocCpuApu);
    const double float_mb = static_cast<double>(WeightBytes(pair.float_model)) / (1 << 20);
    const double quant_mb = static_cast<double>(WeightBytes(pair.quant_model)) / (1 << 20);
    table.AddRow({pair.float_model, bench::Ms(float_us), bench::Ms(quant_us),
                  support::FormatDouble(float_us / quant_us, 2),
                  support::FormatDouble(float_mb, 1), support::FormatDouble(quant_mb, 1),
                  support::FormatDouble(float_mb / quant_mb, 1)});
  }
  table.Print(std::cout);

  std::cout << "\n  note: the QNN flow carries tensor-oriented quantization parameters\n"
            << "  through the Relay->Neuron conversion (Section 3.3); the comparison\n"
            << "  above runs both models through the identical BYOC(CPU+APU) flow.\n";
  return 0;
}
