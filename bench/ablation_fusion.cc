// Ablation: TVM-side operator fusion on/off. Fused groups pay the per-op
// launch overhead once; on mobile-class cores with high dispatch cost this
// is a significant share of small models' latency.
#include <iostream>

#include "bench/bench_util.h"

using namespace tnp;

int main() {
  std::cout << "=== Ablation: operator fusion (TVM-only flow) ===\n\n";

  const char* models[] = {"emotion_cnn", "mobilenet_v1", "mobilenet_v2", "densenet",
                          "inception_v3"};
  support::Table table({"model", "fused ms", "unfused ms", "fusion speedup"});
  for (const char* name : models) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    core::FlowCompileSettings fused;
    core::FlowCompileSettings unfused;
    unfused.enable_tvm_fusion = false;
    const double fused_us = core::CompileFlow(module, core::FlowKind::kTvmOnly, fused)
                                ->EstimateLatency()
                                .total_us();
    const double unfused_us = core::CompileFlow(module, core::FlowKind::kTvmOnly, unfused)
                                  ->EstimateLatency()
                                  .total_us();
    table.AddRow({name, bench::Ms(fused_us), bench::Ms(unfused_us),
                  support::FormatDouble(unfused_us / fused_us, 2)});
  }
  table.Print(std::cout);
  return 0;
}
