// Google-benchmark microbenchmarks of the real CPU kernels (wall-clock
// time, unlike the simulated-latency harnesses). Useful for validating that
// the host kernels behind the numerics are not pathological.
#include <benchmark/benchmark.h>

#include <iterator>
#include <string>
#include <vector>

#include "kernels/conv.h"
#include "kernels/dense.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/quantize.h"
#include "support/thread_pool.h"
#include "tune/tuner.h"

namespace {

using namespace tnp;
using namespace tnp::kernels;

void BM_Conv2DF32(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  NDArray input = NDArray::RandomNormal(Shape({1, channels, 28, 28}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({channels, channels, 3, 3}), 2);
  NDArray bias = NDArray::RandomNormal(Shape({channels}), 3);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  NDArray out = NDArray::Empty(Conv2DOutShape(input.shape(), weight.shape(), p),
                               DType::kFloat32);
  for (auto _ : state) {
    Conv2DF32(input, weight, bias, out, p);
    benchmark::DoNotOptimize(out.RawData());
  }
  state.SetItemsProcessed(state.iterations() * out.NumElements() * channels * 9);
}
BENCHMARK(BM_Conv2DF32)->Arg(16)->Arg(32)->Arg(64);

void BM_QConv2DS8(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  NDArray input = NDArray::RandomInt8(Shape({1, channels, 28, 28}), 1);
  NDArray weight = NDArray::RandomInt8(Shape({channels, channels, 3, 3}), 2);
  NDArray bias = NDArray::Zeros(Shape({channels}), DType::kInt32);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  NDArray out = NDArray::Empty(Conv2DOutShape(input.shape(), weight.shape(), p), DType::kInt8);
  const QuantParams q(0.05f, 0);
  for (auto _ : state) {
    QConv2DS8(input, weight, bias, out, p, q, q, QuantParams(0.2f, 0));
    benchmark::DoNotOptimize(out.RawData());
  }
  state.SetItemsProcessed(state.iterations() * out.NumElements() * channels * 9);
}
BENCHMARK(BM_QConv2DS8)->Arg(16)->Arg(32);

void BM_DepthwiseConv(benchmark::State& state) {
  const std::int64_t channels = 64;
  NDArray input = NDArray::RandomNormal(Shape({1, channels, 28, 28}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({channels, 1, 3, 3}), 2);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  p.groups = channels;
  NDArray out = NDArray::Empty(Conv2DOutShape(input.shape(), weight.shape(), p),
                               DType::kFloat32);
  for (auto _ : state) {
    Conv2DF32(input, weight, NDArray(), out, p);
    benchmark::DoNotOptimize(out.RawData());
  }
}
BENCHMARK(BM_DepthwiseConv);

void BM_DenseF32(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  NDArray input = NDArray::RandomNormal(Shape({1, k}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({1000, k}), 2);
  NDArray bias = NDArray::RandomNormal(Shape({1000}), 3);
  NDArray out = NDArray::Empty(Shape({1, 1000}), DType::kFloat32);
  for (auto _ : state) {
    DenseF32(input, weight, bias, out);
    benchmark::DoNotOptimize(out.RawData());
  }
}
BENCHMARK(BM_DenseF32)->Arg(512)->Arg(2048);

void BM_Softmax(benchmark::State& state) {
  NDArray input = NDArray::RandomNormal(Shape({8, 1000}), 1);
  NDArray out = NDArray::Empty(input.shape(), DType::kFloat32);
  for (auto _ : state) {
    SoftmaxF32(input, out, -1);
    benchmark::DoNotOptimize(out.RawData());
  }
}
BENCHMARK(BM_Softmax);

void BM_QuantizeRoundTrip(benchmark::State& state) {
  NDArray real = NDArray::RandomNormal(Shape({1 << 16}), 1);
  NDArray quantized = NDArray::Empty(real.shape(), DType::kInt8);
  NDArray back = NDArray::Empty(real.shape(), DType::kFloat32);
  const QuantParams q(0.05f, 0);
  for (auto _ : state) {
    QuantizeF32ToS8(real, quantized, q);
    DequantizeS8ToF32(quantized, back, q);
    benchmark::DoNotOptimize(back.RawData());
  }
  state.SetBytesProcessed(state.iterations() * real.SizeBytes() * 2);
}
BENCHMARK(BM_QuantizeRoundTrip);

// Thread-scaling benchmarks: the same kernel run on isolated pools of fixed
// size (ScopedPool routes the kernels' ParallelFor there), so `--threads`
// scaling is measurable regardless of the machine's TNP_NUM_THREADS.

void BM_GemmF32Threads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::ThreadPool pool(
      threads, {/*queue_capacity=*/256, /*max_spares=*/8,
                "bench_gemm_pool_" + std::to_string(threads)});
  support::ScopedPool scope(pool);
  const std::int64_t m = 256;
  NDArray input = NDArray::RandomNormal(Shape({m, 256}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({256, 256}), 2);
  NDArray out = NDArray::Empty(Shape({m, 256}), DType::kFloat32);
  for (auto _ : state) {
    DenseF32(input, weight, NDArray(), out);
    benchmark::DoNotOptimize(out.RawData());
  }
  state.SetItemsProcessed(state.iterations() * m * 256 * 256 * 2);
}
BENCHMARK(BM_GemmF32Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Conv2DF32Threads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  support::ThreadPool pool(
      threads, {/*queue_capacity=*/256, /*max_spares=*/8,
                "bench_conv_pool_" + std::to_string(threads)});
  support::ScopedPool scope(pool);
  const std::int64_t channels = 64;
  NDArray input = NDArray::RandomNormal(Shape({1, channels, 28, 28}), 1);
  NDArray weight = NDArray::RandomNormal(Shape({channels, channels, 3, 3}), 2);
  NDArray bias = NDArray::RandomNormal(Shape({channels}), 3);
  Conv2DParams p;
  p.pad_h = p.pad_w = 1;
  NDArray out = NDArray::Empty(Conv2DOutShape(input.shape(), weight.shape(), p),
                               DType::kFloat32);
  for (auto _ : state) {
    Conv2DF32(input, weight, bias, out, p);
    benchmark::DoNotOptimize(out.RawData());
  }
  state.SetItemsProcessed(state.iterations() * out.NumElements() * channels * 9);
}
BENCHMARK(BM_Conv2DF32Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Tuned-vs-fixed GEMM on real model-zoo shapes: each shape runs the packed
// f32 core twice, once at the fixed default config (4x8/kc256/nc192) and
// once at the config the auto-tuner picks on this machine (tuned lazily,
// memoized across iterations). Compare the paired rows for the per-shape
// tuning win; EXPERIMENTS.md records a reference run.
struct ZooGemmShape {
  const char* label;
  std::int64_t m, k, n;
};

constexpr ZooGemmShape kZooGemmShapes[] = {
    {"mobilenet_v1_pw1", 64, 32, 12544},   // early pointwise conv
    {"mobilenet_v1_pw11", 512, 256, 196},  // late pointwise conv
    {"mobilenet_v1_fc", 1, 1024, 1000},    // classifier dense (GEMV-shaped)
    {"emotion_cnn_conv2", 64, 288, 1936},  // showcase-model 3x3 conv
};

const GemmConfig& TunedConfigForShape(int index) {
  static GemmConfig cache[std::size(kZooGemmShapes)];
  static bool ready[std::size(kZooGemmShapes)] = {};
  if (!ready[index]) {
    tune::Workload workload;
    workload.op = "conv2d";
    workload.m = kZooGemmShapes[index].m;
    workload.k = kZooGemmShapes[index].k;
    workload.n = kZooGemmShapes[index].n;
    tune::TuneOptions options;
    options.budget_ms = 4000.0;
    options.repetitions = 3;
    cache[index] =
        tune::TuneWorkload(workload, options, options.budget_ms * 1000.0).record.config;
    ready[index] = true;
  }
  return cache[index];
}

void BM_GemmZooShapeF32(benchmark::State& state) {
  const int index = static_cast<int>(state.range(0));
  const bool tuned = state.range(1) != 0;
  const ZooGemmShape& shape = kZooGemmShapes[index];
  const GemmConfig config =
      tuned ? TunedConfigForShape(index) : GemmConfig::DefaultF32();
  NDArray a = NDArray::RandomNormal(Shape({shape.m, shape.k}), 1);
  NDArray b = NDArray::RandomNormal(Shape({shape.k, shape.n}), 2);
  std::vector<float> ap(
      static_cast<std::size_t>(PackedExtent(shape.m, config.mr) * shape.k));
  std::vector<float> bp(
      static_cast<std::size_t>(PackedExtent(shape.n, config.nr) * shape.k));
  PackPanelsAF32(a.Data<float>(), shape.m, shape.k, shape.k, ap.data(), config.mr);
  PackPanelsBF32(b.Data<float>(), shape.k, shape.n, shape.n, bp.data(), config.nr);
  std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n));
  for (auto _ : state) {
    GemmPackedF32(ap.data(), bp.data(), c.data(), shape.m, shape.k, shape.n,
                  shape.n, /*parallel=*/false, config);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(shape.label) + "/" +
                 (tuned ? "tuned:" + config.ToString() : "fixed:" + config.ToString()));
  state.SetItemsProcessed(state.iterations() * shape.m * shape.k * shape.n * 2);
}
BENCHMARK(BM_GemmZooShapeF32)
    ->Args({0, 0})->Args({0, 1})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({3, 0})->Args({3, 1});

void BM_BroadcastAdd(benchmark::State& state) {
  NDArray a = NDArray::RandomNormal(Shape({1, 64, 56, 56}), 1);
  NDArray b = NDArray::RandomNormal(Shape({1, 64, 1, 1}), 2);
  NDArray out = NDArray::Empty(a.shape(), DType::kFloat32);
  for (auto _ : state) {
    BroadcastBinaryF32(BinaryOp::kAdd, a, b, out);
    benchmark::DoNotOptimize(out.RawData());
  }
}
BENCHMARK(BM_BroadcastAdd);

}  // namespace

BENCHMARK_MAIN();
