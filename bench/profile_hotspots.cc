// Per-operator hotspot report (the debug-executor style profile) for the
// three showcase models under the BYOC(CPU+APU) flow — makes the Figure-4
// totals inspectable op by op.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "core/nir.h"
#include "relay/build.h"

using namespace tnp;

int main() {
  std::cout << "=== Per-operator hotspots, BYOC(CPU+APU) ===\n";

  for (const char* name : {"deepixbis", "mobilenet_ssd_quant", "emotion_cnn"}) {
    const relay::Module module = zoo::Build(name, bench::BenchOptions());
    core::NirOptions options;
    const relay::Module partitioned = core::PartitionForNir(module, options);
    const relay::CompiledModulePtr compiled =
        relay::Build(partitioned, core::MakeBuildOptions(options));

    std::vector<relay::ProfileEntry> profile = compiled->Profile();
    double total_us = 0.0;
    for (const auto& entry : profile) total_us += entry.us;
    std::sort(profile.begin(), profile.end(),
              [](const relay::ProfileEntry& a, const relay::ProfileEntry& b) {
                return a.us > b.us;
              });

    std::cout << "\n--- " << name << " (" << profile.size() << " ops, "
              << bench::Ms(total_us) << " ms op time) ---\n";
    support::Table table({"op", "device", "ms", "MMACs", "% of total"});
    const std::size_t top = std::min<std::size_t>(10, profile.size());
    for (std::size_t i = 0; i < top; ++i) {
      const auto& entry = profile[i];
      table.AddRow({entry.name, sim::DeviceKindName(entry.device), bench::Ms(entry.us),
                    support::FormatDouble(static_cast<double>(entry.macs) / 1e6, 1),
                    support::FormatDouble(100.0 * entry.us / total_us, 1)});
    }
    table.Print(std::cout);
  }
  return 0;
}
